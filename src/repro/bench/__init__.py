"""Perf-regression harness: ``python -m repro bench``.

The simulator is the research instrument: every figure's cost is event
loop + tracer + profile-then-replay wall-clock.  This package measures
that cost and gates it, so a speedup landed once cannot silently rot:

* **Microbenchmarks** — event-loop throughput (the dominant
  Timeout-resume-process cycle) across three deadline distributions
  (uniform singleton-bucket, bursty same-tick, bimodal near/far),
  batched gang wake-ups (``timeout_chain`` + ``succeed_many``), tracer
  record throughput, and Store/Resource churn.
* **End-to-end** — the Fig 16 complex-workload replication (profile
  build timed separately from the scheduled runs, so the persistent
  profile cache shows up as a cold/warm `profile_build_s` delta).
* **Determinism table** — `trace_digest` for every scheduler kind plus
  the Fig 16 runs; an optimisation that changes any digest is a bug,
  however fast.
* **Telemetry A/B** — the fair Fig 16 run with telemetry off vs
  ``verbosity="full"``: the wall-clock ratio is gated
  (``telemetry_overhead_ratio``) and the telemetry-on digest is pinned
  to the telemetry-off value, so observation can neither slow the
  simulator past budget nor perturb a single scheduling decision.

``bench`` writes ``BENCH_current.json``; ``bench --check`` compares it
against the committed ``BENCH_BASELINE.json`` (pre-optimisation
numbers plus per-metric thresholds) and exits nonzero on regression.
Digest comparisons are exact and machine-independent; wall-clock
comparisons carry generous floor ratios because absolute throughput
varies across hosts — refresh the baseline with ``--update-baseline``
when re-basing on a new machine.

This module intentionally reads the host clock (it measures wall
time); the ``DET001`` suppressions below are the documented exception,
not a loophole — no simulated quantity ever depends on these reads.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..telemetry.logs import ConsoleSink, configure_logging, get_logger

_log = get_logger("bench")

__all__ = [
    "BASELINE_FILENAME",
    "OUTPUT_FILENAME",
    "run_benchmarks",
    "blame_profile",
    "check_against_baseline",
    "main",
]

BASELINE_FILENAME = "BENCH_BASELINE.json"
OUTPUT_FILENAME = "BENCH_current.json"

# Scheduler-kind digest table settings (kept cheap: 2 batches/client,
# fixed quantum so no Overhead-Q sweep is needed).
_DIGEST_SEED = 3
_DIGEST_QUANTUM = 1.2e-3
_DIGEST_BATCHES = 2
# The spatial kinds are additionally pinned on a multi-stream device
# (the serial-path pins above already cover them at streams=1).
_DIGEST_STREAMS = 4


def _now() -> float:
    return time.perf_counter()  # lint: disable=DET001


def _timed(fn: Callable[[], Any]) -> Tuple[float, Any]:
    start = _now()
    value = fn()
    return _now() - start, value


# ----------------------------------------------------------------------
# Microbenchmarks
# ----------------------------------------------------------------------


def bench_event_loop(num_procs: int = 10, events_per_proc: int = 6000) -> float:
    """Events/second through the Timeout-resume-process fast path."""
    from ..sim.core import Simulator

    sim = Simulator()

    def ping(n):
        timeout = sim.timeout
        for _ in range(n):
            yield timeout(1e-6)

    for i in range(num_procs):
        sim.process(ping(events_per_proc), name=f"bench-{i}")
    elapsed, _ = _timed(sim.run)
    return num_procs * events_per_proc / elapsed


def bench_event_loop_uniform(
    num_procs: int = 10, events_per_proc: int = 6000
) -> float:
    """Events/s with near-unique deadlines (singleton-bucket worst case).

    Each process advances by a slightly different delay, so deadlines
    almost never coincide: every event pays a full calendar insert and
    bucket pop instead of riding a shared same-tick bucket.  This is
    the distribution the calendar queue is *weakest* on; gating it
    keeps the batch-advancement fast path honest.
    """
    from ..sim.core import Simulator

    sim = Simulator()

    def ping(n, delay):
        timeout = sim.timeout
        for _ in range(n):
            yield timeout(delay)

    for i in range(num_procs):
        sim.process(ping(events_per_proc, 1e-6 + i * 7e-9), name=f"bench-{i}")
    elapsed, _ = _timed(sim.run)
    return num_procs * events_per_proc / elapsed


def bench_event_loop_bursty(bursts: int = 1500, burst_size: int = 40) -> float:
    """Events/s when whole gangs share one tick (batch-advance best case).

    ``burst_size`` processes advance in lock-step, so every tick is one
    calendar bucket of ``burst_size`` events: one heap operation per
    burst, vectorised dispatch of the whole gang.
    """
    from ..sim.core import Simulator

    sim = Simulator()

    def ping(n):
        timeout = sim.timeout
        for _ in range(n):
            yield timeout(1e-6)

    for i in range(burst_size):
        sim.process(ping(bursts), name=f"bench-{i}")
    elapsed, _ = _timed(sim.run)
    return bursts * burst_size / elapsed


def bench_event_loop_bimodal(
    num_procs: int = 10, events_per_proc: int = 5000
) -> float:
    """Events/s with a steadily *receding* block of far-future deadlines.

    Every iteration schedules one fire-and-forget far timeout alongside
    the near tick, accumulating thousands of pending far deadlines.
    The far frontier recedes quadratically, so soon after the horizon
    activates (window = 4x the pending-deadline midpoint) new far
    deadlines land beyond it: the workload genuinely drives the
    far-list insert *and* flush paths, not just a bloated near heap
    (``tests/sim/test_differential.py`` pins this with kernel stats).
    Without the adaptive far-list every near insert would pay
    O(log far_block) heap traffic; with it the far inserts append to an
    unsorted overflow list and the near heap stays small.
    """
    from ..sim.core import Simulator

    sim = Simulator()

    def mixed(n, jitter):
        timeout = sim.timeout
        for i in range(n):
            timeout(50.0 + i * i * 1e-3 + jitter)
            yield timeout(1e-6)

    for i in range(num_procs):
        sim.process(mixed(events_per_proc, i * 1e-6), name=f"bench-{i}")
    elapsed, _ = _timed(sim.run)
    # The far block drains as no-op dispatches after the near phase;
    # both halves count.
    return 2 * num_procs * events_per_proc / elapsed


def bench_batch_advance(rounds: int = 1500, gang: int = 32) -> float:
    """Gang wake-ups/s through ``timeout_chain`` + ``succeed_many``.

    A conductor walks a precomputed (vectorised-cumsum) timeout chain
    and wakes a condition-variable gang each tick; the whole gang lands
    in one calendar bucket per round.  This is the simulated analogue
    of Olympian resuming a DNN job's CPU thread gang on a condvar.
    """
    from ..sim.core import Simulator
    from ..sim.resources import ConditionVariable

    sim = Simulator()
    cv = ConditionVariable(sim)

    def member():
        # No predicate re-check on purpose: the conductor wakes the
        # gang exactly once per round, and the benchmark counts rounds.
        for _ in range(rounds):
            yield cv.wait()  # lint: disable=CON001

    def conductor():
        for tick in sim.timeout_chain([1e-6] * rounds):
            yield tick
            cv.notify_all()

    for i in range(gang):
        sim.process(member(), name=f"bench-member-{i}")
    sim.process(conductor(), name="bench-conductor")
    elapsed, _ = _timed(sim.run)
    return rounds * gang / elapsed


def bench_tracer(records: int = 200000) -> float:
    """Interval records/second (two of these per executed GPU kernel)."""
    from ..sim.trace import IntervalTracer

    tracer = IntervalTracer()

    def fill():
        record = tracer.record
        for i in range(records):
            start = i * 1e-6
            record("job", start, start + 5e-7, i & 7)
        # Analyses read back through the lazy views; include one merge.
        return tracer.duration("job")

    elapsed, _ = _timed(fill)
    return records / elapsed


def bench_resources(ops: int = 30000) -> float:
    """Store put/get + Resource request/release cycles per second."""
    from ..sim.core import Simulator
    from ..sim.resources import Resource, Store

    sim = Simulator()
    resource = Resource(sim, capacity=2)
    store = Store(sim)

    def producer():
        timeout = sim.timeout
        for i in range(ops):
            store.put(i)
            yield timeout(1e-6)

    def consumer():
        for _ in range(ops):
            yield store.get()
            request = resource.request()
            yield request
            resource.release(request)

    sim.process(producer(), name="bench-producer")
    sim.process(consumer(), name="bench-consumer")
    elapsed, _ = _timed(sim.run)
    return ops / elapsed


# ----------------------------------------------------------------------
# End-to-end + determinism table
# ----------------------------------------------------------------------


def bench_fig16(
    num_batches: int, repeat: int = 2
) -> Tuple[float, float, Dict[str, str]]:
    """(profile_build_s, e2e_best_s, digests) for the Fig 16 workload.

    The profile build is timed separately: cold it runs the solo +
    Overhead-Q sweeps, warm it is a cache hit
    (:mod:`repro.experiments.profile_cache`), so the delta between two
    invocations shows the cache working.  The scheduled fair and
    tf-serving runs are timed together, best of ``repeat``.
    """
    from ..experiments.runner import (
        ExperimentConfig,
        get_profiler_output,
        run_workload,
    )
    from ..workloads.scenarios import complex_workload

    specs = complex_workload(num_batches=num_batches)
    config = ExperimentConfig(seed=3, tolerance=0.02)
    entries = sorted({(s.model, s.batch_size) for s in specs})
    profile_s, output = _timed(lambda: get_profiler_output(entries, config))

    best = None
    digests: Dict[str, str] = {}
    for _ in range(max(1, repeat)):
        start = _now()
        fair = run_workload(
            specs, scheduler="fair", config=config, profiler_output=output
        )
        tfs = run_workload(
            specs, scheduler="tf-serving", config=config, profiler_output=output
        )
        elapsed = _now() - start
        best = elapsed if best is None else min(best, elapsed)
        # Digest keys carry the batch count: quick (2 batches) and full
        # (6 batches) runs are different workloads with different — but
        # individually deterministic — digests.
        digests[f"fig16-fair@nb{num_batches}"] = fair.trace_digest()
        digests[f"fig16-tf-serving@nb{num_batches}"] = tfs.trace_digest()
    return profile_s, best, digests


def bench_telemetry(
    num_batches: int, repeat: int = 2
) -> Tuple[float, float, Dict[str, str]]:
    """(off_best_s, on_best_s, digests): full telemetry A/B on Fig 16.

    Runs the fair-scheduler Fig 16 workload with telemetry off and at
    ``verbosity="full"`` (bus + metrics + spans + debug log per event),
    best of ``repeat`` each.  The telemetry-on digest is recorded under
    its own key; the committed baseline pins it to the telemetry-off
    value, so ``bench --check`` fails if observation ever perturbs the
    run.  The on/off wall-clock ratio is the overhead budget gated by
    ``telemetry_overhead_ratio``.
    """
    from ..experiments.runner import (
        ExperimentConfig,
        get_profiler_output,
        run_workload,
    )
    from ..telemetry import TelemetryConfig
    from ..workloads.scenarios import complex_workload

    specs = complex_workload(num_batches=num_batches)
    config = ExperimentConfig(seed=3, tolerance=0.02)
    entries = sorted({(s.model, s.batch_size) for s in specs})
    output = get_profiler_output(entries, config)
    telemetry_config = TelemetryConfig(verbosity="full")

    off_best = on_best = None
    digests: Dict[str, str] = {}
    for _ in range(max(1, repeat)):
        off_s, off = _timed(lambda: run_workload(
            specs, scheduler="fair", config=config, profiler_output=output
        ))
        on_s, on = _timed(lambda: run_workload(
            specs, scheduler="fair", config=config, profiler_output=output,
            telemetry=telemetry_config,
        ))
        off_best = off_s if off_best is None else min(off_best, off_s)
        on_best = on_s if on_best is None else min(on_best, on_s)
        digests[f"fig16-fair-telemetry@nb{num_batches}"] = on.trace_digest()
    return off_best, on_best, digests


def digest_table() -> Dict[str, str]:
    """`trace_digest` per scheduler kind on a small complex workload."""
    from ..experiments.runner import (
        SCHEDULER_KINDS,
        SPATIAL_SCHEDULER_KINDS,
        ExperimentConfig,
        run_workload,
    )
    from ..workloads.scenarios import complex_workload

    config = ExperimentConfig(quantum=_DIGEST_QUANTUM, seed=_DIGEST_SEED)
    specs = complex_workload(num_batches=_DIGEST_BATCHES)
    table = {
        kind: run_workload(specs, scheduler=kind, config=config).trace_digest()
        for kind in SCHEDULER_KINDS
    }
    spatial_config = ExperimentConfig(
        quantum=_DIGEST_QUANTUM, seed=_DIGEST_SEED, streams=_DIGEST_STREAMS
    )
    for kind in SPATIAL_SCHEDULER_KINDS:
        result = run_workload(specs, scheduler=kind, config=spatial_config)
        table[f"{kind}@s{_DIGEST_STREAMS}"] = result.trace_digest()
    return table


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


def _metric(value: float, unit: str, higher_is_better: bool) -> Dict[str, Any]:
    return {"value": value, "unit": unit, "higher_is_better": higher_is_better}


def _best_of(times: int, fn, *args, **kwargs) -> float:
    """Best (max) throughput over ``times`` runs.

    Microbenchmark runs last milliseconds; a host-contention window
    (noisy neighbour, cron, GC) during any single run understates
    throughput by 2x and trips the regression gate falsely.  The max
    over a few runs is the classic min-time estimator: external
    contention only ever *slows* a run, so the best observation is the
    least contaminated one.
    """
    return max(fn(*args, **kwargs) for _ in range(times))


def run_benchmarks(quick: bool = False, verbose: bool = True) -> Dict[str, Any]:
    """Run every benchmark; returns the report dict (also serialisable)."""

    def say(text: str) -> None:
        if verbose:
            _log.info(text)

    # Steady-state warmup.  The first seconds of a fresh process run
    # measurably slower (CPU frequency ramp, allocator and branch
    # predictor warmup) — cold samples of the gated event_loop_eps
    # come in 10-15% under steady state, which is larger than the
    # gate's headroom.  Burn the event-loop workload untimed until the
    # ramp is over so best-of-N samples the plateau, per the min-time
    # estimator's assumptions.
    warm_until = _now() + 1.5
    while _now() < warm_until:
        bench_event_loop(num_procs=10, events_per_proc=2000)

    if quick:
        # The gated headline metric gets five samples; the others three.
        loop_eps = _best_of(
            5, bench_event_loop, num_procs=10, events_per_proc=2000
        )
        uniform_eps = _best_of(
            3, bench_event_loop_uniform, num_procs=10, events_per_proc=2000
        )
        bursty_eps = _best_of(
            3, bench_event_loop_bursty, bursts=500, burst_size=40
        )
        bimodal_eps = _best_of(
            3, bench_event_loop_bimodal, num_procs=10, events_per_proc=1500
        )
        batch_eps = _best_of(3, bench_batch_advance, rounds=500, gang=32)
        tracer_rps = _best_of(3, bench_tracer, records=50000)
        resources_ops = _best_of(3, bench_resources, ops=10000)
        profile_s, e2e_s, fig_digests = bench_fig16(num_batches=2, repeat=2)
        off_s, on_s, telemetry_digests = bench_telemetry(
            num_batches=2, repeat=2
        )
    else:
        loop_eps = _best_of(5, bench_event_loop)
        uniform_eps = _best_of(3, bench_event_loop_uniform)
        bursty_eps = _best_of(3, bench_event_loop_bursty)
        bimodal_eps = _best_of(3, bench_event_loop_bimodal)
        batch_eps = _best_of(3, bench_batch_advance)
        tracer_rps = _best_of(3, bench_tracer)
        resources_ops = _best_of(3, bench_resources)
        profile_s, e2e_s, fig_digests = bench_fig16(num_batches=6, repeat=3)
        off_s, on_s, telemetry_digests = bench_telemetry(
            num_batches=6, repeat=2
        )
    telemetry_ratio = on_s / off_s
    say(f"event loop         {loop_eps:>12,.0f} events/s")
    say(f"event loop uniform {uniform_eps:>12,.0f} events/s")
    say(f"event loop bursty  {bursty_eps:>12,.0f} events/s")
    say(f"event loop bimodal {bimodal_eps:>12,.0f} events/s")
    say(f"batch advance      {batch_eps:>12,.0f} wakes/s")
    say(f"tracer             {tracer_rps:>12,.0f} records/s")
    say(f"resources          {resources_ops:>12,.0f} ops/s")
    say(f"fig16 profile      {profile_s:>12.3f} s (warm = cache hit)")
    say(f"fig16 e2e          {e2e_s:>12.3f} s")
    say(
        f"telemetry overhead {telemetry_ratio:>12.2f} x "
        f"({off_s:.3f} s off -> {on_s:.3f} s full)"
    )
    digests = digest_table()
    digests.update(fig_digests)
    digests.update(telemetry_digests)
    say(f"digest table       {len(digests)} entries")

    return {
        "schema": 1,
        "mode": "quick" if quick else "full",
        "metrics": {
            "event_loop_eps": _metric(loop_eps, "events/s", True),
            "event_loop_uniform_eps": _metric(uniform_eps, "events/s", True),
            "event_loop_bursty_eps": _metric(bursty_eps, "events/s", True),
            "event_loop_bimodal_eps": _metric(bimodal_eps, "events/s", True),
            "batch_advance_eps": _metric(batch_eps, "wakes/s", True),
            "tracer_rps": _metric(tracer_rps, "records/s", True),
            "resources_ops": _metric(resources_ops, "ops/s", True),
            "profile_build_s": _metric(profile_s, "s", False),
            "fig16_e2e_s": _metric(e2e_s, "s", False),
            "telemetry_overhead_ratio": _metric(telemetry_ratio, "x", False),
        },
        "digests": digests,
    }


def profile_fig16(out: str, num_batches: int = 2) -> str:
    """Run the Fig 16 end-to-end under cProfile and dump the stats.

    Writes the raw profile to ``out`` (readable with ``python -m
    pstats`` or any profile viewer) and logs the top cumulative-time
    entries, so the CI perf-smoke artifact carries a hotspot breakdown
    alongside the throughput numbers — a regression arrives with its
    own diagnosis attached.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    bench_fig16(num_batches=num_batches, repeat=1)
    profiler.disable()
    profiler.dump_stats(out)
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(15)
    _log.info(f"fig16 hotspots (top 15 by cumulative time) -> {out}")
    for line in buf.getvalue().splitlines():
        if line.strip():
            _log.info(line)
    return out


def blame_profile(num_batches: int = _DIGEST_BATCHES) -> Dict[str, Any]:
    """The latency-blame profile of the quick Fig 16 fair run.

    Deterministic (simulated seconds, not wall clock), so the committed
    copy in ``BENCH_BASELINE.json`` stays valid across hosts; any drift
    means scheduling behaviour changed, and the per-component diff
    names *where*.
    """
    from ..analysis import blame_report
    from ..experiments.runner import ExperimentConfig, run_workload
    from ..telemetry import TelemetryConfig, attribute_tracer
    from ..workloads.scenarios import complex_workload

    result = run_workload(
        complex_workload(num_batches=num_batches),
        scheduler="fair",
        config=ExperimentConfig(quantum=_DIGEST_QUANTUM, seed=_DIGEST_SEED),
        telemetry=TelemetryConfig(verbosity="spans"),
    )
    return blame_report(
        attribute_tracer(result.telemetry.tracer),
        "fair",
        include_requests=False,
    )


def _log_blame_context(baseline: Dict[str, Any]) -> None:
    """Attach a latency-blame breakdown to a failed perf gate.

    The regression report says *that* the run changed; the blame
    profile says *where the simulated latency goes*, and the diff
    against the committed baseline profile names the component that
    moved.  Failures here must never mask the gate result.
    """
    try:
        report = blame_profile()
    except Exception as exc:
        _log.error(f"(blame context unavailable: {exc})")
        return
    base_components = baseline.get("blame", {}).get("components", {})
    _log.error(
        "latency blame on the fig16/fair digest run (dominant first):"
    )
    ranked = sorted(
        report["components"].items(), key=lambda kv: -kv[1]["total"]
    )
    for name, entry in ranked:
        base = base_components.get(name)
        drift = ""
        if base is not None:
            delta = entry["total"] - base["total"]
            if abs(delta) > 1e-9:
                drift = f"  [{delta * 1e3:+.3f} ms vs baseline]"
        if entry["total"] <= 0 and not drift:
            continue
        _log.error(
            f"  {name:<13} {entry['total'] * 1e3:10.3f} ms "
            f"({entry['share']:6.1%}){drift}"
        )
    if base_components:
        moved = [
            (abs(entry["total"] - base_components[name]["total"]), name)
            for name, entry in report["components"].items()
            if name in base_components
        ]
        worst = max(moved)
        if worst[0] > 1e-9:
            _log.error(
                f"regressing component: {worst[1]} "
                f"(moved {worst[0] * 1e3:.3f} ms from baseline)"
            )
        else:
            _log.error(
                "blame profile matches baseline — the regression is "
                "host wall-clock, not scheduling behaviour"
            )
    if report["blockers"]:
        blocker = report["blockers"][0]
        _log.error(
            f"  top HOL blocker: {blocker['job_id']} "
            f"({blocker['model']}) {blocker['seconds'] * 1e3:.3f} ms"
        )


def check_against_baseline(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> List[str]:
    """Regression findings (empty = pass).

    Wall-clock metrics compare against the baseline section matching
    the current mode, scaled by the committed per-metric thresholds
    (``min_speedup`` for lower-is-better, ``floor_ratio`` for
    higher-is-better).  Quick mode reads ``quick_thresholds`` when
    present (quick runs are shorter, hence noisier, so they carry
    looser gates).  Metrics without a threshold entry —
    ``profile_build_s``, which legitimately swings from seconds to
    milliseconds with cache state — are informational.  Digests must
    match exactly wherever both sides define them.
    """
    failures: List[str] = []
    quick = current.get("mode") == "quick"
    section = "quick_metrics" if quick else "metrics"
    base_metrics = baseline.get(section, {})
    thresholds = baseline.get("thresholds", {})
    if quick and "quick_thresholds" in baseline:
        thresholds = baseline["quick_thresholds"]
    for name, spec in current.get("metrics", {}).items():
        base = base_metrics.get(name)
        gate = thresholds.get(name)
        if base is None or gate is None:
            continue
        value, ref = spec["value"], base["value"]
        if spec["higher_is_better"]:
            floor = ref * gate.get("floor_ratio", 0.5)
            if value < floor:
                failures.append(
                    f"{name}: {value:,.0f} below floor {floor:,.0f} "
                    f"(baseline {ref:,.0f} x {gate.get('floor_ratio', 0.5)})"
                )
        else:
            ceiling = ref / gate.get("min_speedup", 1.0)
            if value > ceiling:
                failures.append(
                    f"{name}: {value:.3f}s exceeds ceiling {ceiling:.3f}s "
                    f"(baseline {ref:.3f}s / speedup {gate.get('min_speedup', 1.0)})"
                )
    base_digests = baseline.get("digests", {})
    for key in sorted(set(base_digests) & set(current.get("digests", {}))):
        if current["digests"][key] != base_digests[key]:
            failures.append(
                f"digest drift for {key}: {current['digests'][key]} != "
                f"{base_digests[key]} — determinism broken"
            )
    return failures


def main(
    quick: bool = False,
    check: bool = False,
    out: Optional[str] = None,
    baseline: Optional[str] = None,
    profile_out: Optional[str] = None,
) -> int:
    # The CLI entry point owns the sink; library callers of
    # run_benchmarks/check_against_baseline inherit whatever the
    # process configured (NullSink by default).
    previous = configure_logging(ConsoleSink(stream=sys.stdout))
    try:
        report = run_benchmarks(quick=quick)
        out_path = Path(out or OUTPUT_FILENAME)
        out_path.write_text(json.dumps(report, indent=2) + "\n")
        _log.info(f"wrote {out_path}")
        if profile_out is not None:
            # Dump before the gate: a failing check is exactly when the
            # hotspot breakdown is most wanted.
            profile_fig16(profile_out, num_batches=2 if quick else 6)
        if not check:
            return 0
        baseline_path = Path(baseline or BASELINE_FILENAME)
        if not baseline_path.is_file():
            _log.error(f"no baseline at {baseline_path}")
            return 2
        baseline_doc = json.loads(baseline_path.read_text())
        failures = check_against_baseline(report, baseline_doc)
        if failures:
            _log.error(f"PERF REGRESSION vs {baseline_path}:")
            for failure in failures:
                _log.error(f"  - {failure}")
            _log_blame_context(baseline_doc)
            return 1
        _log.info(f"within baseline thresholds ({baseline_path})")
        return 0
    finally:
        configure_logging(previous)
