"""Sim sanitizer: runtime checksum guards around telemetry emission seams.

The static FLOW rules (:mod:`repro.lint.flow`) prove that no value
*visible to the analysis* flows from telemetry state into scheduler,
driver, or device decisions.  This module is the runtime complement for
whatever the analysis cannot see (dynamic dispatch, monkeypatching,
exotic callbacks): every emission seam in the decision components wraps
the ``telemetry.emit(...)`` call in a checksum pair over that
component's *decision state* — the fields whose mutation would change a
scheduling outcome.  If an emission mutates any of them, the very next
``verify`` raises :class:`SanitizerViolation` and the run fails fast,
instead of drifting into a digest mismatch discovered hours later.

Cost discipline: the guard is two method calls inside the existing
``telemetry is not None`` branch, so the telemetry-off hot path is
untouched, and with telemetry on but the sanitizer off each guard is a
single attribute check.  Checksums never draw RNG state, only read it
(``Random.getstate``), so arming the sanitizer is itself
digest-neutral — the property suite pins this.

Enable with ``REPRO_SANITIZE=1`` in the environment (read once at
import, before any simulation starts) or programmatically via
``sim_sanitizer.enable()`` / ``disable()`` in tests.
"""

from __future__ import annotations

import os
import zlib
from typing import Any, Optional

__all__ = ["SanitizerViolation", "SimSanitizer", "sim_sanitizer"]


class SanitizerViolation(RuntimeError):
    """A telemetry emission mutated scheduler-visible decision state."""

    def __init__(self, seam: str, component: str, before: int, after: int):
        self.seam = seam
        self.component = component
        self.before = before
        self.after = after
        super().__init__(
            f"telemetry emission at seam {seam!r} mutated {component} "
            f"decision state (checksum {before:#010x} -> {after:#010x}); "
            "observation must never steer the simulation"
        )


class SimSanitizer:
    """Checksum guard armed around every instrumented emission seam."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.checks = 0

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.checks = 0

    def checkpoint(self, component: Any) -> Optional[int]:
        """Checksum of ``component``'s decision state, or None when off."""
        if not self.enabled:
            return None
        return self._checksum(component)

    def verify(self, component: Any, token: Optional[int], seam: str) -> None:
        """Re-checksum after an emission; raise on any drift."""
        if token is None:
            return
        self.checks += 1
        after = self._checksum(component)
        if after != token:
            raise SanitizerViolation(
                seam, type(component).__name__, token, after
            )

    @staticmethod
    def _checksum(component: Any) -> int:
        # repr() of the state tuple is deterministic for the int/float/
        # str/None fields _sanitize_state implementations return; object
        # reprs (which embed addresses) are deliberately excluded there.
        state = component._sanitize_state()
        return zlib.crc32(repr(state).encode("utf-8"))


# Module-level singleton, shared by every guarded seam.  The environment
# read happens once at import time — sanitize.py sits outside the
# env-guard paths precisely so the armed/disarmed decision is made
# before any simulated component runs.
sim_sanitizer = SimSanitizer(
    enabled=os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
)
