"""Latency estimation under Olympian fair sharing.

The paper's motivation is that unpredictable execution "makes it
extremely difficult to engineer latency-sensitive user-facing
applications" (§1).  Olympian's guarantee inverts that: with fair
time-slicing, a job's GPU share is 1/N of the device while N jobs are
active, so its completion time is *computable in advance* from its
offline profile — which is what makes admission control possible at
all.  No such estimate exists for stock TF-Serving, whose driver
arbitration is arbitrary.

:class:`FairShareEstimator` implements the bound used by the admission
controller: a job needing ``D`` seconds of GPU, admitted alongside
``N`` active jobs, finishes within ``D * (N + 1) * (1 + overhead)``
plus its host-side tail — an upper bound, since competitors that finish
early only speed things up.
"""

from __future__ import annotations

from ..core.accounting import ProfileStore
from ..serving.server import ModelServer

__all__ = ["FairShareEstimator"]


class FairShareEstimator:
    """Upper-bound completion-time estimates under fair sharing.

    Parameters
    ----------
    profiles:
        The offline profile store (source of per-model GPU demand).
    overhead:
        Fractional switching overhead at the operating quantum (the
        Overhead-Q curve value; e.g. 0.025).
    host_fraction:
        Host-side work as a fraction of GPU demand, covering the parts
        of a job that are not on the device (input/output stages).
    """

    def __init__(
        self,
        profiles: ProfileStore,
        overhead: float = 0.03,
        host_fraction: float = 0.15,
    ):
        if overhead < 0:
            raise ValueError(f"overhead must be >= 0: {overhead}")
        if host_fraction < 0:
            raise ValueError(f"host_fraction must be >= 0: {host_fraction}")
        self.profiles = profiles
        self.overhead = overhead
        self.host_fraction = host_fraction

    def gpu_demand(self, model_name: str, batch_size: int) -> float:
        """Solo GPU seconds one job of this (model, batch) needs."""
        return self.profiles.lookup(model_name, batch_size).gpu_duration

    def estimate_latency(
        self, model_name: str, batch_size: int, active_jobs: int
    ) -> float:
        """Upper-bound latency if admitted now alongside ``active_jobs``."""
        if active_jobs < 0:
            raise ValueError(f"active_jobs must be >= 0: {active_jobs}")
        demand = self.gpu_demand(model_name, batch_size)
        shared = demand * (active_jobs + 1) * (1.0 + self.overhead)
        return shared + demand * self.host_fraction

    def estimate_for(self, server: ModelServer, model_name: str,
                     batch_size: int) -> float:
        """Estimate against a live server's current load."""
        return self.estimate_latency(
            model_name, batch_size, server.active_jobs
        )
