"""SLO-aware admission control on top of Olympian.

An operator promises a latency SLO per request class.  Because Olympian
makes completion times predictable (see
:mod:`repro.slo.estimator`), the controller can check *before admitting
a job* whether its SLO is attainable at the current load, and shed the
request immediately otherwise — fast rejection instead of a slow
miss.  On stock TF-Serving no trustworthy estimate exists, so the same
workload produces silent SLO violations instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..serving.request import Job
from ..serving.server import ModelServer
from ..sim.core import Event
from .estimator import FairShareEstimator

__all__ = ["JobRejected", "AdmissionDecision", "SloAdmissionController"]


class JobRejected(Exception):
    """The controller declined a job: its SLO is not attainable now."""

    def __init__(self, job_id: str, estimate: float, slo: float):
        super().__init__(
            f"job {job_id!r} rejected: estimated latency {estimate * 1e3:.1f} ms "
            f"exceeds SLO {slo * 1e3:.1f} ms"
        )
        self.job_id = job_id
        self.estimate = estimate
        self.slo = slo


@dataclass(frozen=True)
class AdmissionDecision:
    """Audit record of one admission decision."""

    time: float
    job_id: str
    admitted: bool
    estimate: float
    slo: float


@dataclass
class _Outcome:
    job: Job
    slo: float
    admitted_at: float


class SloAdmissionController:
    """Admit jobs only when their SLO is predicted attainable."""

    def __init__(self, server: ModelServer, estimator: FairShareEstimator):
        self.server = server
        self.estimator = estimator
        self.decisions: List[AdmissionDecision] = []
        self._outcomes: List[_Outcome] = []

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def try_submit(self, job: Job, slo: float) -> Optional[Event]:
        """Admit and submit, or return ``None`` if the SLO is hopeless."""
        if slo <= 0:
            raise ValueError(f"SLO must be positive: {slo}")
        estimate = self.estimator.estimate_for(
            self.server, job.model_name, job.batch_size
        )
        admitted = estimate <= slo
        self.decisions.append(
            AdmissionDecision(
                time=self.server.sim.now,
                job_id=job.job_id,
                admitted=admitted,
                estimate=estimate,
                slo=slo,
            )
        )
        if not admitted:
            return None
        done = self.server.submit(job)
        self._outcomes.append(
            _Outcome(job=job, slo=slo, admitted_at=self.server.sim.now)
        )
        return done

    def submit(self, job: Job, slo: float) -> Event:
        """Like :meth:`try_submit` but raises :class:`JobRejected`."""
        done = self.try_submit(job, slo)
        if done is None:
            decision = self.decisions[-1]
            raise JobRejected(job.job_id, decision.estimate, decision.slo)
        return done

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def admitted_count(self) -> int:
        return sum(1 for d in self.decisions if d.admitted)

    @property
    def rejected_count(self) -> int:
        return sum(1 for d in self.decisions if not d.admitted)

    def attainment(self) -> float:
        """Fraction of *admitted, finished* jobs that met their SLO."""
        finished = [
            o for o in self._outcomes if o.job.finished_at is not None
        ]
        if not finished:
            raise ValueError("no admitted jobs have finished yet")
        met = sum(
            1
            for o in finished
            if o.job.finished_at - o.admitted_at <= o.slo
        )
        return met / len(finished)

    def goodput(self) -> int:
        """Number of admitted jobs that finished within their SLO."""
        return sum(
            1
            for o in self._outcomes
            if o.job.finished_at is not None
            and o.job.finished_at - o.admitted_at <= o.slo
        )
