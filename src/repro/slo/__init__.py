"""SLO-aware serving: latency estimation and admission control.

Built on Olympian's predictability — the capability the paper's
introduction argues unpredictable GPU sharing forecloses.
"""

from .admission import AdmissionDecision, JobRejected, SloAdmissionController
from .estimator import FairShareEstimator

__all__ = [
    "AdmissionDecision",
    "JobRejected",
    "SloAdmissionController",
    "FairShareEstimator",
]
