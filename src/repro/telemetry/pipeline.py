"""The :class:`Telemetry` facade: bus → spans + metrics + logs.

``Telemetry.attach(server)`` plants itself on the serving stack's
instrumentation seams (server, driver, device, scheduler); components
emit through ``self.telemetry.emit(...)`` guarded by a single ``None``
check, so the telemetry-off hot path costs one attribute load.

Determinism
-----------
Everything here observes; nothing steers.  ``emit`` is a synchronous
call chain with no RNG draws and no writes to simulation-read state.
The one interaction with the simulator — the snapshot ticker — only
*adds* timeout events; the heap orders by ``(time, seq)`` and the
global sequence counter is monotone, so inserting events can never
reorder the pairs that already exist.  The ticker lives only while
jobs are active (the scheduler-watchdog pattern), so it cannot keep
the event queue alive forever.  The property suite in
``tests/properties/test_telemetry_determinism.py`` pins the resulting
guarantee: every scheduler kind's ``trace_digest`` is bit-identical
with telemetry on or off.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional

from .events import EventBus, TelemetryEvent
from .exposition import MetricsSnapshot, snapshot_registry
from .logs import StructuredLogger
from .metrics import (
    DEFAULT_DEPTH_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
)
from .spans import SpanTracer

__all__ = [
    "VERBOSITY_LEVELS",
    "TelemetryConfig",
    "MetricsCollector",
    "Telemetry",
]

# Cumulative levels: ``metrics`` feeds the registry only, ``spans``
# adds the lifecycle span tracer, ``full`` also logs every event.
# Digest-safety holds at *every* level by construction; the property
# suite checks each one anyway.
VERBOSITY_LEVELS = ("metrics", "spans", "full")

# Tenure-length boundaries: paper quanta are tens of ms (Figure 8
# sweeps 10-160 ms), so the buckets centre there.
TENURE_BUCKETS = (
    1e-3, 2.5e-3, 5e-3, 1e-2, 2e-2, 4e-2, 8e-2, 0.16, 0.32, 0.64, 1.28,
)


@dataclass(frozen=True)
class TelemetryConfig:
    """Static telemetry settings.

    ``snapshot_period`` is in simulated seconds; ``0`` disables the
    periodic ticker (end-of-run rollups still happen).  ``keep_events``
    retains every raw :class:`TelemetryEvent` for export — memory-heavy
    on long runs, so off by default.
    """

    verbosity: str = "full"
    snapshot_period: float = 0.25
    keep_events: bool = False

    def __post_init__(self) -> None:
        if self.verbosity not in VERBOSITY_LEVELS:
            raise ValueError(
                f"verbosity must be one of {VERBOSITY_LEVELS}: "
                f"{self.verbosity!r}"
            )
        if self.snapshot_period < 0:
            raise ValueError(
                f"snapshot_period must be >= 0: {self.snapshot_period}"
            )

    def with_verbosity(self, verbosity: str) -> "TelemetryConfig":
        return replace(self, verbosity=verbosity)


class MetricsCollector:
    """Bus subscriber that folds events into a :class:`MetricsRegistry`.

    One instance per :class:`Telemetry`; the metric families it creates
    are the reproduction's serving dashboard (queue depth, tenure
    length, overflow kernels, evictions, retries, drift).
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.requests_submitted = registry.counter(
            "requests_submitted_total", "Jobs accepted by the server"
        )
        self.requests_finished = registry.counter(
            "requests_finished_total", "Jobs finished, by terminal status"
        )
        self.request_retries = registry.counter(
            "request_retries_total", "Client resubmissions after failures"
        )
        self.request_latency = registry.histogram(
            "request_latency_seconds",
            "Submit-to-finish latency",
            buckets=DEFAULT_TIME_BUCKETS,
        )
        self.batches_dispatched = registry.counter(
            "batches_dispatched_total", "Batches flushed by the batcher"
        )
        self.batch_queue_depth = registry.gauge(
            "batch_queue_depth", "Requests waiting in the batcher"
        )
        self.batch_wait = registry.histogram(
            "batch_wait_seconds",
            "Oldest-request wait at batch dispatch",
            buckets=DEFAULT_TIME_BUCKETS,
        )
        self.decisions = registry.counter(
            "sched_decisions_total", "Token hand-off decisions"
        )
        self.switches = registry.counter(
            "sched_switches_total", "Decisions that moved the token"
        )
        self.evictions = registry.counter(
            "sched_evictions_total", "Jobs forcibly removed by the scheduler"
        )
        self.tenure_seconds = registry.histogram(
            "tenure_seconds",
            "Wall length of one token tenure",
            buckets=TENURE_BUCKETS,
        )
        self.kernels_submitted = registry.counter(
            "kernels_submitted_total", "Kernels queued at the driver"
        )
        self.kernels_rejected = registry.counter(
            "kernels_rejected_total", "Kernel launches rejected (faults)"
        )
        self.kernels_finished = registry.counter(
            "kernels_finished_total", "Kernels retired by the device"
        )
        self.overflow_kernels = registry.counter(
            "overflow_kernels_total",
            "Kernels finishing after their job lost the token (Fig 10/15)",
        )
        self.kernel_queue_depth = registry.histogram(
            "kernel_queue_depth",
            "Driver queue depth observed at kernel submission",
            buckets=DEFAULT_DEPTH_BUCKETS,
        )
        self.drift = registry.counter(
            "profile_drift_total", "Quantum-monitor drift alerts"
        )
        self.device_crashes = registry.counter(
            "device_crashes_total", "Full device crashes (fault injection)"
        )
        self.device_resets = registry.counter(
            "device_resets_total", "Device resets completed after a crash"
        )
        self.failovers = registry.counter(
            "job_failovers_total",
            "Jobs re-queued onto a live device after a crash",
        )
        self.jobs_shed = registry.counter(
            "jobs_shed_total", "Jobs shed by brownout, by reason"
        )
        self.admission_decisions = registry.counter(
            "admission_decisions_total",
            "Admission gate verdicts, by action and reason",
        )
        self.admission_dispatches = registry.counter(
            "admission_dispatches_total",
            "Deferred jobs dispatched as capacity freed",
        )
        self.journal_recoveries = registry.counter(
            "journal_recoveries_total",
            "Jobs re-admitted from the durable journal after a restart",
        )
        self.breaker_transitions = registry.counter(
            "breaker_transitions_total",
            "Circuit breaker state changes, by model and new state",
        )
        self.health_transitions = registry.counter(
            "health_transitions_total",
            "Server health state changes, by new state",
        )
        # Sampled by the snapshot ticker, not by events.
        self.gpu_utilization = registry.gauge(
            "gpu_utilization_ratio",
            "Device busy fraction over the last snapshot window",
        )
        self.active_jobs = registry.gauge(
            "active_jobs", "Jobs currently inside the server"
        )
        self.health_state = registry.gauge(
            "health_state",
            "Server health (0=healthy, 1=degraded, 2=draining)",
        )
        # Latest health state name, for the `repro top` status line.
        self.last_health = "healthy"

    def on_event(self, event: TelemetryEvent) -> None:
        kind = event.kind
        if kind == "request.submitted":
            self.requests_submitted.inc(
                labels={"model": event.attr("model")}
            )
        elif kind == "request.finished":
            self.requests_finished.inc(
                labels={"status": event.attr("status", "ok")}
            )
            latency = event.attr("latency")
            if latency is not None:
                # The request span id doubles as the bucket exemplar:
                # a latency outlier in the histogram links straight to
                # its trace (`repro top` / `repro blame`).
                self.request_latency.observe(
                    latency,
                    labels={"model": event.attr("model")},
                    exemplar=f"req:{event.attr('job_id')}",
                )
        elif kind == "request.retry":
            self.request_retries.inc()
        elif kind == "batch.enqueued":
            self.batch_queue_depth.set(event.attr("queue_length", 0))
        elif kind == "batch.dispatched":
            self.batches_dispatched.inc()
            self.batch_queue_depth.set(0)
            oldest = event.attr("oldest_arrival")
            if oldest is not None:
                self.batch_wait.observe(event.time - oldest)
        elif kind == "sched.decision":
            self.decisions.inc()
            if event.attr("prev_job_id") != event.attr("next_job_id"):
                self.switches.inc()
        elif kind == "sched.tenure_end":
            duration = event.attr("duration")
            if duration is not None:
                self.tenure_seconds.observe(
                    duration, labels={"model": event.attr("model")}
                )
        elif kind == "sched.eviction":
            self.evictions.inc()
        elif kind == "kernel.submitted":
            self.kernels_submitted.inc()
            self.kernel_queue_depth.observe(event.attr("queue_depth", 0))
        elif kind == "kernel.rejected":
            self.kernels_rejected.inc()
        elif kind == "kernel.finished":
            self.kernels_finished.inc()
            holder = event.attr("holder")
            job_id = event.attr("job_id")
            if holder is not None and holder != job_id:
                self.overflow_kernels.inc()
        elif kind == "monitor.drift":
            self.drift.inc(labels={"model": event.attr("model")})
        elif kind == "device.crashed":
            self.device_crashes.inc()
        elif kind == "device.reset":
            self.device_resets.inc()
        elif kind == "job.failed_over":
            self.failovers.inc()
        elif kind == "job.shed":
            self.jobs_shed.inc(
                labels={"reason": event.attr("reason", "admission")}
            )
        elif kind == "admission.decision":
            self.admission_decisions.inc(
                labels={
                    "action": event.attr("action", "admit"),
                    "reason": event.attr("reason", ""),
                }
            )
        elif kind == "admission.dispatch":
            self.admission_dispatches.inc()
        elif kind == "journal.recovered":
            self.journal_recoveries.inc()
        elif kind == "breaker.state":
            self.breaker_transitions.inc(
                labels={
                    "model": event.attr("model"),
                    "to": event.attr("new"),
                }
            )
        elif kind == "health.state":
            new = event.attr("new", "healthy")
            self.health_transitions.inc(labels={"to": new})
            self.last_health = new
            try:
                index = ("healthy", "degraded", "draining").index(new)
            except ValueError:
                index = -1
            self.health_state.set(index)


class Telemetry:
    """Wires an :class:`EventBus` onto a running serving stack.

    Usage::

        telemetry = Telemetry(TelemetryConfig(verbosity="full"))
        telemetry.attach(server)
        ...  # run the workload
        rollup = telemetry.finalize()
    """

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config or TelemetryConfig()
        self.bus = EventBus()
        self.registry = MetricsRegistry()
        self.collector = MetricsCollector(self.registry)
        self.bus.subscribe(self.collector.on_event)
        self.tracer: Optional[SpanTracer] = None
        if self.config.verbosity in ("spans", "full"):
            self.tracer = SpanTracer()
            self.bus.subscribe(self.tracer.on_event)
        self.events: List[TelemetryEvent] = []
        self.snapshots: List[MetricsSnapshot] = []
        # Callbacks invoked after each periodic snapshot; ``repro top``
        # renders its frames from here.
        self.on_snapshot: List[
            Callable[[MetricsSnapshot, "Telemetry"], None]
        ] = []
        self.log = StructuredLogger("telemetry")
        self.sim = None
        self.server = None
        self.scheduler = None
        self.device = None
        self._ticker_alive = False
        self._last_sample_time = 0.0
        self._log_events = self.config.verbosity == "full"

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, server: Any) -> "Telemetry":
        """Plant this pipeline on a server's instrumentation seams."""
        if self.server is not None:
            raise RuntimeError("telemetry already attached")
        self.server = server
        self.sim = server.sim
        self.scheduler = server.scheduler
        self.device = server.device
        self.log.clock = lambda: server.sim.now
        server.telemetry = self
        server.driver.telemetry = self
        server.device.telemetry = self
        # NullSchedulerHook and third-party hooks may not declare the
        # attribute; setting it is still harmless.
        server.scheduler.telemetry = self
        if server.active_jobs > 0:
            self._ensure_ticker()
        return self

    def attach_monitor(self, monitor: Any) -> None:
        """Chain a QuantumMonitor's drift callback into the bus."""
        previous = monitor.on_drift

        def _forward(alert: Any) -> None:
            self.record_drift(alert)
            if previous is not None:
                previous(alert)

        monitor.on_drift = _forward

    # ------------------------------------------------------------------
    # Emission (called from instrumented components)
    # ------------------------------------------------------------------

    def emit(self, kind: str, component: str, **attrs: Any) -> None:
        sim = self.sim
        now = sim.now if sim is not None else 0.0
        if kind == "kernel.finished" and self.scheduler is not None:
            holder = getattr(self.scheduler, "holder", None)
            attrs["holder"] = (
                holder.job_id if holder is not None else None
            )
        event = TelemetryEvent(
            time=now, kind=kind, component=component, attrs=attrs
        )
        if self.config.keep_events:
            self.events.append(event)
        self.bus.publish(event)
        if self._log_events:
            self.log.debug(kind, component=component, **attrs)
        if kind == "request.submitted":
            self._ensure_ticker()

    def record_drift(self, alert: Any) -> None:
        """Publish a :class:`~repro.core.monitor.DriftAlert`."""
        self.emit(
            "monitor.drift",
            "monitor",
            model=alert.model_name,
            observed_mean=alert.observed_mean,
            expected=alert.expected,
            relative_error=alert.relative_error,
        )

    # ------------------------------------------------------------------
    # Periodic snapshots
    # ------------------------------------------------------------------

    def _ensure_ticker(self) -> None:
        if (
            self._ticker_alive
            or self.sim is None
            or self.server is None
            or self.config.snapshot_period <= 0
        ):
            return
        self._ticker_alive = True
        self.sim.process(self._ticker_body(), name="telemetry-snapshots")

    def _ticker_body(self):
        # Watchdog lifetime: only while jobs are active, so an idle
        # telemetry pipeline cannot keep the simulation queue non-empty.
        period = self.config.snapshot_period
        server = self.server
        while server.active_jobs > 0:
            yield self.sim.timeout(period)
            self.take_snapshot()
        self._ticker_alive = False

    def take_snapshot(self) -> MetricsSnapshot:
        """Sample gauges and copy the registry at the current sim time."""
        now = self.sim.now if self.sim is not None else None
        if self.device is not None and now is not None:
            if now > self._last_sample_time:
                # The NVML-sampler analogue: busy fraction over the
                # window since the previous sample.
                self.collector.gpu_utilization.set(
                    self.device.utilization(self._last_sample_time, now)
                )
            self._last_sample_time = now
        if self.server is not None:
            self.collector.active_jobs.set(self.server.active_jobs)
        snapshot = snapshot_registry(self.registry, time=now)
        self.snapshots.append(snapshot)
        for callback in self.on_snapshot:
            callback(snapshot, self)
        return snapshot

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------

    def finalize(self) -> Dict[str, Any]:
        """Close dangling spans, take a final snapshot, return rollups."""
        end = self.sim.now if self.sim is not None else 0.0
        if self.tracer is not None:
            self.tracer.close_all(end)
        self.take_snapshot()
        return self.rollup()

    def rollup(self) -> Dict[str, Any]:
        """End-of-run summary merged into bench/reproduce reports."""
        collector = self.collector
        summary: Dict[str, Any] = {
            "verbosity": self.config.verbosity,
            "events_published": self.bus.events_published,
            "event_counts": dict(self.bus.kind_counts),
            "snapshots": len(self.snapshots),
            "requests_submitted": collector.requests_submitted.total(),
            "requests_finished": collector.requests_finished.total(),
            "retries": collector.request_retries.total(),
            "decisions": collector.decisions.total(),
            "switches": collector.switches.total(),
            "evictions": collector.evictions.total(),
            "kernels_finished": collector.kernels_finished.total(),
            "overflow_kernels": collector.overflow_kernels.total(),
            "profile_drift": collector.drift.total(),
            "device_crashes": collector.device_crashes.total(),
            "device_resets": collector.device_resets.total(),
            "failovers": collector.failovers.total(),
            "jobs_shed": collector.jobs_shed.total(),
            "health": collector.last_health,
        }
        # Reason-labelled breakdowns (only when non-empty, so rollups
        # from stacks without recovery/admission are unchanged).
        sheds_by_reason = {
            dict(key).get("reason", ""): child.value
            for key, child in collector.jobs_shed.items()
        }
        if sheds_by_reason:
            summary["sheds_by_reason"] = dict(sorted(sheds_by_reason.items()))
        admission = {
            f"{dict(key).get('action', '')}:{dict(key).get('reason', '')}":
                child.value
            for key, child in collector.admission_decisions.items()
        }
        if admission:
            summary["admission_decisions"] = dict(sorted(admission.items()))
            summary["admission_dispatches"] = (
                collector.admission_dispatches.total()
            )
        if collector.journal_recoveries.total():
            summary["journal_recoveries"] = (
                collector.journal_recoveries.total()
            )
        # Per-model latency percentiles (bucket-interpolated p50/p95/p99)
        # plus the slowest occupied bucket's exemplar span id — the
        # metric -> trace jump for serve/bench end-of-run reports.
        latency: Dict[str, Dict[str, Any]] = {}
        for key, child in collector.request_latency.items():
            model = dict(key).get("model", "")
            entry: Dict[str, Any] = child.summary()
            exemplar = None
            for candidate in reversed(child.exemplars):
                if candidate is not None:
                    exemplar = candidate
                    break
            entry["exemplar"] = exemplar
            latency[model] = entry
        if latency:
            summary["latency"] = latency
        if self.tracer is not None:
            summary["spans_finished"] = len(self.tracer.finished)
        return summary
