"""Schema validation for exported observability artefacts.

The CI ``observability-smoke`` job exports a Chrome trace and a metrics
document from a short run and validates both here.  The container has
no ``jsonschema`` package, so the checks are hand-rolled walkers over
declarative shape tables — same spirit, zero dependencies.  Each
validator returns a list of error strings; empty means valid.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = [
    "CHROME_TRACE_PHASES",
    "validate_blame_report",
    "validate_chrome_trace",
    "validate_metrics_document",
    "validate_recovery_report",
    "validate_spans_document",
    "validate_whatif_report",
]

# Trace-event phases the exporter may produce: complete slices (X),
# metadata (M), instants (i), and flow start/step/finish (s/t/f).
CHROME_TRACE_PHASES = ("X", "M", "i", "s", "t", "f")


def _type_name(value: Any) -> str:
    return type(value).__name__


def _require(
    errors: List[str],
    obj: Dict[str, Any],
    where: str,
    key: str,
    types: tuple,
) -> bool:
    if key not in obj:
        errors.append(f"{where}: missing required key {key!r}")
        return False
    if not isinstance(obj[key], types):
        errors.append(
            f"{where}: {key!r} must be "
            f"{'/'.join(t.__name__ for t in types)}, "
            f"got {_type_name(obj[key])}"
        )
        return False
    return True


def validate_chrome_trace(doc: Any) -> List[str]:
    """Validate a Chrome trace-event JSON document (object form)."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"trace: document must be an object, got {_type_name(doc)}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["trace: missing 'traceEvents' list"]
    if not events:
        errors.append("trace: 'traceEvents' is empty")
    flow_ids: Dict[Any, List[str]] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: must be an object")
            continue
        if not _require(errors, event, where, "ph", (str,)):
            continue
        phase = event["ph"]
        if phase not in CHROME_TRACE_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        _require(errors, event, where, "name", (str,))
        _require(errors, event, where, "pid", (int,))
        if phase == "M":
            _require(errors, event, where, "args", (dict,))
            continue
        _require(errors, event, where, "ts", (int, float))
        if phase == "X":
            if _require(errors, event, where, "dur", (int, float)):
                if event["dur"] < 0:
                    errors.append(f"{where}: negative duration")
        if phase in ("s", "t", "f"):
            if _require(errors, event, where, "id", (int, str)):
                flow_ids.setdefault(event["id"], []).append(phase)
    for flow_id, phases in sorted(flow_ids.items(), key=lambda kv: str(kv[0])):
        if "s" not in phases:
            errors.append(f"flow {flow_id!r}: has {phases} but no start ('s')")
        if "f" not in phases:
            errors.append(f"flow {flow_id!r}: has {phases} but no finish ('f')")
    return errors


def validate_metrics_document(doc: Any) -> List[str]:
    """Validate a JSON metrics snapshot (``render_metrics_json`` output)."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"metrics: document must be an object, got {_type_name(doc)}"]
    if "time" not in doc:
        errors.append("metrics: missing 'time'")
    elif doc["time"] is not None and not isinstance(doc["time"], (int, float)):
        errors.append("metrics: 'time' must be a number or null")
    families = doc.get("families")
    if not isinstance(families, list):
        return errors + ["metrics: missing 'families' list"]
    seen: set = set()
    for index, family in enumerate(families):
        where = f"families[{index}]"
        if not isinstance(family, dict):
            errors.append(f"{where}: must be an object")
            continue
        if not _require(errors, family, where, "name", (str,)):
            continue
        name = family["name"]
        where = f"family {name!r}"
        if name in seen:
            errors.append(f"{where}: duplicate family")
        seen.add(name)
        if _require(errors, family, where, "type", (str,)):
            if family["type"] not in ("counter", "gauge", "histogram"):
                errors.append(f"{where}: unknown type {family['type']!r}")
        if not _require(errors, family, where, "series", (list,)):
            continue
        is_histogram = family.get("type") == "histogram"
        buckets = family.get("buckets")
        if is_histogram and not isinstance(buckets, list):
            errors.append(f"{where}: histogram missing 'buckets' list")
            buckets = None
        for sidx, series in enumerate(family["series"]):
            swhere = f"{where} series[{sidx}]"
            if not isinstance(series, dict):
                errors.append(f"{swhere}: must be an object")
                continue
            _require(errors, series, swhere, "labels", (dict,))
            if is_histogram:
                _require(errors, series, swhere, "count", (int,))
                _require(errors, series, swhere, "sum", (int, float))
                if _require(errors, series, swhere, "cumulative", (list,)):
                    cumulative = series["cumulative"]
                    if buckets is not None and len(cumulative) != len(buckets) + 1:
                        errors.append(
                            f"{swhere}: cumulative has {len(cumulative)} "
                            f"entries, want {len(buckets) + 1} (+Inf)"
                        )
                    if any(
                        b > a
                        for a, b in zip(cumulative[1:], cumulative[:-1])
                    ):
                        errors.append(
                            f"{swhere}: cumulative counts must be "
                            f"non-decreasing"
                        )
                    if (
                        cumulative
                        and isinstance(series.get("count"), int)
                        and cumulative[-1] != series["count"]
                    ):
                        errors.append(
                            f"{swhere}: +Inf cumulative {cumulative[-1]} != "
                            f"count {series['count']}"
                        )
            else:
                _require(errors, series, swhere, "value", (int, float))
    return errors


def validate_recovery_report(doc: Any) -> List[str]:
    """Validate a ``RecoveryManager.report()`` (or chaos-run) document."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [
            f"recovery: document must be an object, got {_type_name(doc)}"
        ]
    where = "recovery"
    for key in (
        "accepted",
        "completed",
        "failed",
        "cancelled",
        "sheds",
        "breaker_rejections",
        "breaker_trips",
        "failovers",
        "rollbacks",
        "device_crashes",
        "device_resets",
    ):
        if _require(errors, doc, where, key, (int,)):
            if doc[key] < 0:
                errors.append(f"{where}: {key!r} must be >= 0")
    _require(errors, doc, where, "rollback_residue", (int, float))
    if _require(errors, doc, where, "health", (str,)):
        if doc["health"] not in ("healthy", "degraded", "draining"):
            errors.append(
                f"{where}: unknown health state {doc['health']!r}"
            )
    if _require(errors, doc, where, "breaker_states", (dict,)):
        for model, state in doc["breaker_states"].items():
            if state not in ("closed", "open", "half_open"):
                errors.append(
                    f"{where}: breaker {model!r} in unknown state {state!r}"
                )
    if _require(errors, doc, where, "unterminated", (list,)):
        if doc["unterminated"]:
            errors.append(
                f"{where}: {len(doc['unterminated'])} accepted job(s) "
                f"never terminated: {doc['unterminated'][:5]}"
            )
    if _require(errors, doc, where, "health_transitions", (list,)):
        for index, entry in enumerate(doc["health_transitions"]):
            if (
                not isinstance(entry, list)
                or len(entry) != 3
                or not isinstance(entry[0], (int, float))
                or not isinstance(entry[1], str)
                or not isinstance(entry[2], str)
            ):
                errors.append(
                    f"{where}: health_transitions[{index}] must be "
                    f"[time, old, new]"
                )
    return errors


def _validate_e2e_stats(
    errors: List[str], doc: Dict[str, Any], where: str, keys: tuple
) -> None:
    for key in keys:
        if _require(errors, doc, where, key, (int, float)):
            if doc[key] < 0:
                errors.append(f"{where}: {key!r} must be >= 0")


def _validate_components(
    errors: List[str], obj: Any, where: str
) -> None:
    from .attribution import COMPONENTS

    if not isinstance(obj, dict):
        errors.append(f"{where}: 'components' must be an object")
        return
    for name in COMPONENTS:
        if name not in obj:
            errors.append(f"{where}: missing component {name!r}")
    for name, entry in obj.items():
        cwhere = f"{where} component {name!r}"
        if name not in COMPONENTS:
            errors.append(f"{cwhere}: unknown component")
            continue
        if not isinstance(entry, dict):
            errors.append(f"{cwhere}: must be an object")
            continue
        for key in ("total", "mean", "share"):
            _require(errors, entry, cwhere, key, (int, float))


def _validate_blockers(
    errors: List[str], obj: Any, where: str
) -> None:
    if not isinstance(obj, list):
        errors.append(f"{where}: 'blockers' must be a list")
        return
    for index, blocker in enumerate(obj):
        bwhere = f"{where} blockers[{index}]"
        if not isinstance(blocker, dict):
            errors.append(f"{bwhere}: must be an object")
            continue
        _require(errors, blocker, bwhere, "job_id", (str,))
        _require(errors, blocker, bwhere, "seconds", (int, float))
        if "model" in blocker and blocker["model"] is not None:
            if not isinstance(blocker["model"], str):
                errors.append(f"{bwhere}: 'model' must be a string or null")


def validate_blame_report(doc: Any) -> List[str]:
    """Validate a :func:`repro.analysis.blame.blame_report` document."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"blame: document must be an object, got {_type_name(doc)}"]
    where = "blame"
    _require(errors, doc, where, "schema", (int,))
    _require(errors, doc, where, "scheduler", (str,))
    for key in ("num_requests", "num_served", "num_retries", "num_failovers"):
        if _require(errors, doc, where, key, (int,)):
            if doc[key] < 0:
                errors.append(f"{where}: {key!r} must be >= 0")
    if _require(errors, doc, where, "e2e", (dict,)):
        _validate_e2e_stats(
            errors, doc["e2e"], f"{where} e2e",
            ("total", "mean", "p50", "p95", "p99"),
        )
    if _require(errors, doc, where, "components", (dict,)):
        _validate_components(errors, doc["components"], where)
    if _require(errors, doc, where, "blockers", (list,)):
        _validate_blockers(errors, doc["blockers"], where)
    if "requests" in doc:
        if not isinstance(doc["requests"], list):
            errors.append(f"{where}: 'requests' must be a list")
        else:
            for index, request in enumerate(doc["requests"]):
                rwhere = f"{where} requests[{index}]"
                if not isinstance(request, dict):
                    errors.append(f"{rwhere}: must be an object")
                    continue
                _require(errors, request, rwhere, "job_id", (str,))
                _require(errors, request, rwhere, "e2e", (int, float))
                if _require(errors, request, rwhere, "components", (dict,)):
                    total = sum(request["components"].values())
                    if abs(total - request["e2e"]) > 1e-6:
                        errors.append(
                            f"{rwhere}: components sum {total!r} != "
                            f"e2e {request['e2e']!r}"
                        )
    return errors


def validate_whatif_report(doc: Any) -> List[str]:
    """Validate a :func:`repro.experiments.whatif.run_whatif` document."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"whatif: document must be an object, got {_type_name(doc)}"]
    where = "whatif"
    _require(errors, doc, where, "schema", (int,))
    _require(errors, doc, where, "scheduler", (str,))
    _require(errors, doc, where, "num_requests", (int,))
    if _require(errors, doc, where, "baseline", (dict,)):
        baseline = doc["baseline"]
        bwhere = f"{where} baseline"
        if _require(errors, baseline, bwhere, "e2e", (dict,)):
            _validate_e2e_stats(
                errors, baseline["e2e"], f"{bwhere} e2e",
                ("mean", "p50", "p95", "p99"),
            )
        if _require(errors, baseline, bwhere, "components", (dict,)):
            _validate_components(errors, baseline["components"], bwhere)
        if _require(errors, baseline, bwhere, "blockers", (list,)):
            _validate_blockers(errors, baseline["blockers"], bwhere)
    if not _require(errors, doc, where, "scenarios", (list,)):
        return errors
    for index, scenario in enumerate(doc["scenarios"]):
        swhere = f"{where} scenarios[{index}]"
        if not isinstance(scenario, dict):
            errors.append(f"{swhere}: must be an object")
            continue
        if _require(errors, scenario, swhere, "perturbation", (dict,)):
            _require(
                errors, scenario["perturbation"], f"{swhere} perturbation",
                "name", (str,),
            )
        for key in ("e2e", "delta"):
            if _require(errors, scenario, swhere, key, (dict,)):
                for stat in ("mean", "p50", "p95", "p99"):
                    _require(
                        errors, scenario[key], f"{swhere} {key}",
                        stat, (int, float),
                    )
        if _require(errors, scenario, swhere, "components", (dict,)):
            _validate_components(errors, scenario["components"], swhere)
        _require(errors, scenario, swhere, "component_delta", (dict,))
        if "predicted" in scenario:
            if isinstance(scenario["predicted"], dict):
                for stat in ("mean", "p50", "p95", "p99"):
                    _require(
                        errors, scenario["predicted"],
                        f"{swhere} predicted", stat, (int, float),
                    )
            else:
                errors.append(f"{swhere}: 'predicted' must be an object")
    return errors


def validate_spans_document(doc: Any) -> List[str]:
    """Validate an exported span table (``SpanTracer.to_dicts`` JSON)."""
    errors: List[str] = []
    if not isinstance(doc, list):
        return [f"spans: document must be a list, got {_type_name(doc)}"]
    ids = set()
    for index, span in enumerate(doc):
        where = f"spans[{index}]"
        if not isinstance(span, dict):
            errors.append(f"{where}: must be an object")
            continue
        if _require(errors, span, where, "span_id", (str,)):
            ids.add(span["span_id"])
        _require(errors, span, where, "kind", (str,))
        _require(errors, span, where, "start", (int, float))
        if span.get("end") is not None and not isinstance(
            span["end"], (int, float)
        ):
            errors.append(f"{where}: 'end' must be a number or null")
    for index, span in enumerate(doc):
        if not isinstance(span, dict):
            continue
        parent = span.get("parent_id")
        if parent is not None and parent not in ids:
            errors.append(
                f"spans[{index}]: parent {parent!r} not in document"
            )
    return errors
