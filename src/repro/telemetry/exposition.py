"""Exposition writers: Prometheus text format and JSON documents.

Both renderers are pure functions of a :class:`MetricsRegistry` (or a
:class:`MetricsSnapshot` taken from one), emitting byte-stable output:
families sorted by name, children sorted by label tuple, floats
formatted through one canonical helper.  Golden-file tests pin the
exact bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .metrics import Histogram, MetricsRegistry

__all__ = [
    "MetricsSnapshot",
    "snapshot_registry",
    "render_prometheus",
    "render_metrics_json",
]


def _fmt(value: float) -> str:
    """Canonical number formatting: integers lose the trailing ``.0``."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(pairs: Any, extra: Optional[Dict[str, str]] = None) -> str:
    items = list(pairs)
    if extra:
        items.extend(sorted(extra.items()))
    if not items:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + body + "}"


@dataclass
class MetricsSnapshot:
    """A point-in-time copy of every metric family, JSON-shaped.

    ``time`` is the simulated timestamp the snapshot was taken at (or
    ``None`` for an end-of-run rollup with no single instant).
    """

    time: Optional[float]
    families: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"time": self.time, "families": self.families}

    def family(self, name: str) -> Optional[Dict[str, Any]]:
        for fam in self.families:
            if fam["name"] == name:
                return fam
        return None


def snapshot_registry(
    registry: MetricsRegistry, time: Optional[float] = None
) -> MetricsSnapshot:
    """Deep-copy the registry's current values into a snapshot."""
    families: List[Dict[str, Any]] = []
    for fam in registry.families():
        entry: Dict[str, Any] = {
            "name": fam.name,
            "type": fam.metric_type,
            "help": fam.help,
            "series": [],
        }
        if isinstance(fam, Histogram):
            entry["buckets"] = list(fam.buckets)
        for key, child in fam.items():
            labels = {k: v for k, v in key}
            if isinstance(fam, Histogram):
                entry["series"].append(
                    {
                        "labels": labels,
                        "count": child.count,
                        "sum": child.total,
                        "cumulative": child.cumulative(),
                    }
                )
            else:
                entry["series"].append(
                    {"labels": labels, "value": child.value}
                )
        families.append(entry)
    return MetricsSnapshot(time=time, families=families)


def render_prometheus(
    source: Any, extra_labels: Optional[Dict[str, str]] = None
) -> str:
    """Render a registry (or snapshot) in Prometheus text format."""
    snapshot = (
        source
        if isinstance(source, MetricsSnapshot)
        else snapshot_registry(source)
    )
    lines: List[str] = []
    for fam in snapshot.families:
        name = fam["name"]
        if fam["help"]:
            lines.append(f"# HELP {name} {fam['help']}")
        lines.append(f"# TYPE {name} {fam['type']}")
        for series in fam["series"]:
            pairs = sorted(series["labels"].items())
            if fam["type"] == "histogram":
                cumulative = series["cumulative"]
                bounds = [_fmt(b) for b in fam["buckets"]] + ["+Inf"]
                for bound, count in zip(bounds, cumulative):
                    label_text = _labels_text(
                        pairs + [("le", bound)], extra_labels
                    )
                    lines.append(f"{name}_bucket{label_text} {count}")
                label_text = _labels_text(pairs, extra_labels)
                lines.append(f"{name}_sum{label_text} {_fmt(series['sum'])}")
                lines.append(f"{name}_count{label_text} {series['count']}")
            else:
                label_text = _labels_text(pairs, extra_labels)
                lines.append(
                    f"{name}{label_text} {_fmt(series['value'])}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def render_metrics_json(
    source: Any, indent: Optional[int] = 2
) -> str:
    """Render a registry (or snapshot) as a JSON document."""
    snapshot = (
        source
        if isinstance(source, MetricsSnapshot)
        else snapshot_registry(source)
    )
    return json.dumps(
        snapshot.to_dict(), indent=indent, sort_keys=False
    )
