"""``repro.telemetry`` — determinism-safe runtime observability.

Olympian's argument is about *where time goes*: per-quantum GPU
durations, scheduling-interval overheads, token tenures.  This package
makes that timeline observable at request granularity **while the run
executes**, without perturbing it:

* :mod:`repro.telemetry.events` — a synchronous event bus carrying
  sim-timestamped :class:`TelemetryEvent` records from seams in the
  serving stack (server, batcher, session, scheduler, driver, device).
* :mod:`repro.telemetry.spans` — the causal request lifecycle as a
  span tree (``request → queue → batch → session → tenure → kernel``)
  with stable ids derived from sim state, never wall clock.
* :mod:`repro.telemetry.metrics` — a metrics registry (counters,
  gauges, histograms with fixed bucket boundaries) fed by those events.
* :mod:`repro.telemetry.exposition` — Prometheus-text and JSON
  exposition writers plus periodic sim-time snapshots.
* :mod:`repro.telemetry.logs` — a structured (JSON lines) logger,
  sim-timestamped, replacing ad-hoc ``print()`` (lint rule OBS001).
* :mod:`repro.telemetry.pipeline` — the :class:`Telemetry` facade that
  wires bus → spans + metrics + logs onto a
  :class:`~repro.serving.server.ModelServer`.
* :mod:`repro.telemetry.top` — the ``repro top`` terminal view.
* :mod:`repro.telemetry.schema` — schema validation for exported
  Chrome traces and metrics documents (the CI smoke gate).

The hard guarantee (enforced by ``tests/properties/``): enabling
telemetry at any verbosity leaves every scheduler kind's
``trace_digest`` bit-identical to telemetry-off.  Observation is pure —
no RNG draws, no scheduler-visible state writes; the snapshot ticker
only *adds* heap entries, which cannot reorder existing (time, seq)
pairs.
"""

from __future__ import annotations

from .attribution import (
    COMPONENTS,
    RequestAttribution,
    attribute_requests,
    attribute_tracer,
)
from .events import EventBus, TelemetryEvent
from .exposition import (
    MetricsSnapshot,
    render_metrics_json,
    render_prometheus,
    snapshot_registry,
)
from .logs import (
    BufferSink,
    ConsoleSink,
    JsonlSink,
    LogRecord,
    NullSink,
    StructuredLogger,
    configure_logging,
    get_logger,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .pipeline import Telemetry, TelemetryConfig, VERBOSITY_LEVELS
from .schema import (
    validate_blame_report,
    validate_chrome_trace,
    validate_metrics_document,
    validate_recovery_report,
    validate_spans_document,
    validate_whatif_report,
)
from .spans import Span, SpanTracer
from .top import TopView, render_frame

__all__ = [
    "COMPONENTS",
    "RequestAttribution",
    "attribute_requests",
    "attribute_tracer",
    "EventBus",
    "TelemetryEvent",
    "Span",
    "SpanTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "render_prometheus",
    "render_metrics_json",
    "snapshot_registry",
    "LogRecord",
    "StructuredLogger",
    "JsonlSink",
    "ConsoleSink",
    "BufferSink",
    "NullSink",
    "get_logger",
    "configure_logging",
    "Telemetry",
    "TelemetryConfig",
    "VERBOSITY_LEVELS",
    "TopView",
    "render_frame",
    "validate_blame_report",
    "validate_chrome_trace",
    "validate_metrics_document",
    "validate_recovery_report",
    "validate_spans_document",
    "validate_whatif_report",
]
