"""The telemetry event bus.

A :class:`TelemetryEvent` is one observation of the serving stack at a
simulated instant: a request was submitted, a kernel started, the token
moved.  Components publish events through an :class:`EventBus`; the
bus synchronously calls every subscriber in subscription order.

Determinism contract
--------------------
Publishing is a plain function call chain — no simulation events are
created, no randomness is drawn, and subscribers must not mutate any
state the simulation reads.  Enabling or disabling a subscriber can
therefore never change the event *schedule*, which is what keeps
``trace_digest`` bit-identical with telemetry on or off (the property
suite locks this down).

Event kinds are dotted strings (``"kernel.started"``), grouped by
component prefix:

==================  ====================================================
prefix              emitted by
==================  ====================================================
``request.*``       :mod:`repro.serving.request` / ``server.submit``
``batch.*``         :mod:`repro.serving.batching`
``session.*``       :mod:`repro.serving.session`
``sched.*``         :mod:`repro.core.scheduler`
``kernel.*``        :mod:`repro.gpu.driver` / :mod:`repro.gpu.device`
``client.*``        :mod:`repro.serving.client` (retries)
``monitor.*``       :mod:`repro.core.monitor` (drift alerts)
``device.*``        ``server.crash_device`` (crash / reset lifecycle)
``job.*``           :mod:`repro.recovery.manager` (failover, shedding)
``breaker.*``       :mod:`repro.recovery.breaker` state transitions
``health.*``        :mod:`repro.recovery.health` state transitions
``admission.*``     :mod:`repro.serving.admission` (gate decisions)
``journal.*``       :mod:`repro.durability` (crash-restart resume)
==================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["TelemetryEvent", "EventBus", "EVENT_KINDS"]

# The catalogue of event kinds the stack emits.  Subscribers may rely
# on this being exhaustive; the integration tests assert emitted kinds
# stay inside it.
EVENT_KINDS = (
    "request.created",
    "request.submitted",
    "request.finished",
    "request.retry",
    "batch.enqueued",
    "batch.dispatched",
    "session.started",
    "session.finished",
    "sched.decision",
    "sched.tenure_begin",
    "sched.tenure_end",
    "sched.eviction",
    "kernel.submitted",
    "kernel.rejected",
    "kernel.started",
    "kernel.finished",
    "monitor.drift",
    "device.crashed",
    "device.reset",
    "job.failed_over",
    "job.shed",
    "breaker.state",
    "health.state",
    # Multi-stream device (GpuSpec.streams > 1): emitted on every
    # kernel start/finish with the new stream occupancy.
    "stream.occupancy",
    # Load-aware admission gate (repro.serving.admission): one
    # `admission.decision` per submitted request (action + reason),
    # one `admission.dispatch` per deferred request later launched.
    "admission.decision",
    "admission.dispatch",
    # Durable control plane (repro.durability): emitted once per
    # restart when a journal is replayed into a fresh server.
    "journal.recovered",
)


@dataclass(frozen=True)
class TelemetryEvent:
    """One observation at simulated time ``time``.

    ``attrs`` carries kind-specific payload (job id, node id, queue
    depth, ...).  Values must be plain JSON-serialisable scalars so
    events can be exported verbatim.
    """

    time: float
    kind: str
    component: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    def attr(self, name: str, default: Any = None) -> Any:
        return self.attrs.get(name, default)


class EventBus:
    """Synchronous publish/subscribe fan-out for telemetry events.

    Subscribers are called in subscription order — a deterministic
    list, never a set — and may not raise: a throwing observer would
    perturb the run it observes, so exceptions propagate to the caller
    (crashing loudly beats silently diverging).
    """

    def __init__(self) -> None:
        self._subscribers: List[Callable[[TelemetryEvent], None]] = []
        self.events_published = 0
        # kind -> count, insertion-ordered (deterministic exposition).
        self.kind_counts: Dict[str, int] = {}

    def subscribe(self, handler: Callable[[TelemetryEvent], None]) -> None:
        self._subscribers.append(handler)

    def unsubscribe(self, handler: Callable[[TelemetryEvent], None]) -> None:
        self._subscribers.remove(handler)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def publish(self, event: TelemetryEvent) -> None:
        self.events_published += 1
        counts = self.kind_counts
        counts[event.kind] = counts.get(event.kind, 0) + 1
        for handler in self._subscribers:
            handler(event)


def stable_sort_key(pair: Tuple[str, Any]) -> str:
    """Sort key for attr dict items (determinism helper for exports)."""
    return pair[0]


def require_known_kind(kind: str) -> Optional[str]:
    """Return an error string if ``kind`` is not catalogued (tests)."""
    if kind not in EVENT_KINDS:
        return f"unknown telemetry event kind {kind!r}"
    return None
