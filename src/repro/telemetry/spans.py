"""Request-lifecycle span tracing.

Builds the causal tree of one inference request from bus events:

.. code-block:: text

    request  (req:c0/b1)
    └── session  (sess:c0/b1)            register → deregister
        ├── tenure  (tenure:c0/b1#0)     token grant → hand-off
        │   └── kernel (kern:c0/b1#4)    driver submit → device finish
        └── tenure  (tenure:c0/b1#1)
            └── ...

Batched requests gain a ``queue`` span (arrival → batch dispatch) and a
``batch`` parent span grouping all requests dispatched together.

Span ids are **derived from sim state** — job ids, per-job ordinals,
batcher sequence numbers — never from wall clock or ``id()``, so two
runs of the same seed produce byte-identical span tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .events import TelemetryEvent

__all__ = ["Span", "SpanTracer"]


@dataclass
class Span:
    """One node of the lifecycle tree: a ``[start, end)`` causal unit."""

    span_id: str
    kind: str
    name: str
    start: float
    parent_id: Optional[str] = None
    end: Optional[float] = None
    status: str = "open"
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def close(self, end: float, status: str = "ok") -> None:
        self.end = end
        self.status = status

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


class SpanTracer:
    """Bus subscriber that materialises the request-lifecycle span tree.

    Purely observational: consumes :class:`TelemetryEvent` records and
    appends to its own tables.  ``finished`` preserves close order
    (a deterministic function of the event stream).
    """

    def __init__(self) -> None:
        self.finished: List[Span] = []
        self._open: Dict[str, Span] = {}
        # job_id -> currently open tenure span id (for kernel parenting).
        self._open_tenure: Dict[str, str] = {}
        # job_id -> next tenure ordinal.
        self._tenure_seq: Dict[str, int] = {}
        self.spans_started = 0

    # ------------------------------------------------------------------
    # Bus interface
    # ------------------------------------------------------------------

    def on_event(self, event: TelemetryEvent) -> None:
        handler = _HANDLERS.get(event.kind)
        if handler is not None:
            handler(self, event)

    # ------------------------------------------------------------------
    # Span bookkeeping
    # ------------------------------------------------------------------

    def _begin(
        self,
        span_id: str,
        kind: str,
        name: str,
        start: float,
        parent_id: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        span = Span(
            span_id=span_id,
            kind=kind,
            name=name,
            start=start,
            parent_id=parent_id,
            attrs=attrs,
        )
        self._open[span_id] = span
        self.spans_started += 1
        return span

    def _close(self, span_id: str, end: float, status: str = "ok") -> None:
        span = self._open.pop(span_id, None)
        if span is None:
            return
        span.close(end, status)
        self.finished.append(span)

    def open_span(self, span_id: str) -> Optional[Span]:
        return self._open.get(span_id)

    @property
    def open_count(self) -> int:
        return len(self._open)

    def close_all(self, end: float, status: str = "truncated") -> None:
        """Close every still-open span (end of run)."""
        for span_id in list(self._open):
            self._close(span_id, end, status)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def spans_of_kind(self, kind: str) -> List[Span]:
        return [span for span in self.finished if span.kind == kind]

    def children_of(self, span_id: str) -> List[Span]:
        return [span for span in self.finished if span.parent_id == span_id]

    def request_tree(self, job_id: str) -> Dict[str, Any]:
        """The full tree under ``req:{job_id}`` as nested dicts."""
        by_parent: Dict[Optional[str], List[Span]] = {}
        for span in self.finished:
            by_parent.setdefault(span.parent_id, []).append(span)

        def build(span: Span) -> Dict[str, Any]:
            node = span.to_dict()
            node["children"] = [
                build(child) for child in by_parent.get(span.span_id, [])
            ]
            return node

        root_id = f"req:{job_id}"
        for span in self.finished:
            if span.span_id == root_id:
                return build(span)
        raise KeyError(f"no finished request span for job {job_id!r}")

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.finished]

    # ------------------------------------------------------------------
    # Event handlers (one per lifecycle transition)
    # ------------------------------------------------------------------

    def _on_request_submitted(self, event: TelemetryEvent) -> None:
        job_id = event.attr("job_id")
        self._begin(
            f"req:{job_id}",
            "request",
            f"request {job_id}",
            event.time,
            parent_id=event.attr("batch_span"),
            job_id=job_id,
            client_id=event.attr("client_id"),
            model=event.attr("model"),
            batch_size=event.attr("batch_size"),
        )

    def _on_request_finished(self, event: TelemetryEvent) -> None:
        job_id = event.attr("job_id")
        self._close(
            f"req:{job_id}", event.time, status=event.attr("status", "ok")
        )

    def _on_batch_enqueued(self, event: TelemetryEvent) -> None:
        self._begin(
            f"bq:{event.attr('request_id')}",
            "queue",
            f"queued {event.attr('request_id')}",
            event.time,
            queue_length=event.attr("queue_length"),
        )

    def _on_batch_dispatched(self, event: TelemetryEvent) -> None:
        batch_span = self._begin(
            f"batch:{event.attr('batch_id')}",
            "batch",
            f"batch {event.attr('batch_id')}",
            event.time,
            size=event.attr("size"),
        )
        batch_span.start = event.attr("oldest_arrival", event.time)
        for request_id in event.attr("request_ids", ()):  # close queue spans
            queue_span = self._open.get(f"bq:{request_id}")
            if queue_span is not None:
                queue_span.parent_id = batch_span.span_id
            self._close(f"bq:{request_id}", event.time)

    def _on_session_started(self, event: TelemetryEvent) -> None:
        job_id = event.attr("job_id")
        self._begin(
            f"sess:{job_id}",
            "session",
            f"session {job_id}",
            event.time,
            parent_id=f"req:{job_id}",
            job_id=job_id,
        )

    def _on_session_finished(self, event: TelemetryEvent) -> None:
        job_id = event.attr("job_id")
        # A session outliving its tenure closes it (job deregistered).
        tenure_id = self._open_tenure.pop(job_id, None)
        if tenure_id is not None:
            self._close(tenure_id, event.time)
        self._close(
            f"sess:{job_id}", event.time, status=event.attr("status", "ok")
        )

    def _on_tenure_begin(self, event: TelemetryEvent) -> None:
        job_id = event.attr("job_id")
        ordinal = self._tenure_seq.get(job_id, 0)
        self._tenure_seq[job_id] = ordinal + 1
        span_id = f"tenure:{job_id}#{ordinal}"
        self._open_tenure[job_id] = span_id
        self._begin(
            span_id,
            "tenure",
            f"tenure {job_id}#{ordinal}",
            event.time,
            parent_id=f"sess:{job_id}",
            job_id=job_id,
            model=event.attr("model"),
            ordinal=ordinal,
            prev_job_id=event.attr("prev_job_id"),
        )

    def _on_tenure_end(self, event: TelemetryEvent) -> None:
        job_id = event.attr("job_id")
        span_id = self._open_tenure.pop(job_id, None)
        if span_id is not None:
            self._close(span_id, event.time)

    def _on_kernel_submitted(self, event: TelemetryEvent) -> None:
        job_id = event.attr("job_id")
        seq = event.attr("seq")
        parent = self._open_tenure.get(job_id)
        if parent is None:
            session = self._open.get(f"sess:{job_id}")
            parent = session.span_id if session is not None else None
        self._begin(
            f"kern:{job_id}#{seq}",
            "kernel",
            f"kernel {job_id}/n{event.attr('node_id')}",
            event.time,
            parent_id=parent,
            job_id=job_id,
            node_id=event.attr("node_id"),
            seq=seq,
        )

    def _on_kernel_rejected(self, event: TelemetryEvent) -> None:
        span_id = f"kern:{event.attr('job_id')}#{event.attr('seq')}"
        self._close(span_id, event.time, status="rejected")

    def _on_kernel_started(self, event: TelemetryEvent) -> None:
        span = self._open.get(
            f"kern:{event.attr('job_id')}#{event.attr('seq')}"
        )
        if span is not None:
            span.attrs["exec_start"] = event.time

    def _on_kernel_finished(self, event: TelemetryEvent) -> None:
        job_id = event.attr("job_id")
        span_id = f"kern:{job_id}#{event.attr('seq')}"
        span = self._open.get(span_id)
        if span is not None:
            holder = event.attr("holder")
            if holder is not None and holder != job_id:
                # Ran (or completed) after the token moved on — the
                # paper's overflow kernel (Figures 10/15).
                span.attrs["overflow"] = True
            # Interference stamp: the multi-stream engine reports the
            # solo device time so attribution can price the slowdown.
            solo_time = event.attr("solo_time")
            if solo_time is not None:
                span.attrs["solo_time"] = solo_time
            stream = event.attr("stream")
            if stream is not None:
                span.attrs["stream"] = stream
        self._close(span_id, event.time)


_HANDLERS: Dict[str, Callable[[SpanTracer, TelemetryEvent], None]] = {
    "request.submitted": SpanTracer._on_request_submitted,
    "request.finished": SpanTracer._on_request_finished,
    "batch.enqueued": SpanTracer._on_batch_enqueued,
    "batch.dispatched": SpanTracer._on_batch_dispatched,
    "session.started": SpanTracer._on_session_started,
    "session.finished": SpanTracer._on_session_finished,
    "sched.tenure_begin": SpanTracer._on_tenure_begin,
    "sched.tenure_end": SpanTracer._on_tenure_end,
    "kernel.submitted": SpanTracer._on_kernel_submitted,
    "kernel.rejected": SpanTracer._on_kernel_rejected,
    "kernel.started": SpanTracer._on_kernel_started,
    "kernel.finished": SpanTracer._on_kernel_finished,
}
