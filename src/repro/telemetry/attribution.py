"""Per-request critical-path latency attribution.

Consumes the span trees built by :class:`~repro.telemetry.spans.SpanTracer`
and decomposes every request's end-to-end latency into canonical,
**exactly-summing** components.  The decomposition is a partition of the
request's wall-clock window — each instant is assigned to exactly one
component by a sweep over span boundaries — so the components sum to the
measured latency by construction (within float accumulation, well under
the 1e-9 tolerance the property suite enforces).

Components (:data:`COMPONENTS`):

``queue_wait``
    Batch-formation wait: the request arrived at the batcher before the
    batch dispatched (batch spans are backdated to the oldest arrival).
    Zero for unbatched submissions, where e2e is measured from submit.
``admission``
    Server admission: submit → session start, plus the (normally zero)
    tail between session teardown and the request finishing.
``tenure_wait``
    Parked waiting for the scheduler token while another tenant held it
    — head-of-line blocking.  The sweep records *which* tenant held the
    token over each blocked interval (``blockers``).
``arbitration``
    Kernel submitted to the driver but not yet executing on a device
    stream (launch queueing + stream arbitration).
``exec_solo``
    Kernel execution at the solo (uncontended) rate.
``interference``
    Extra execution time versus the solo profile caused by spatial
    sharing (multi-stream processor sharing).  Zero on a serial device.
``host_compute``
    CPU-node execution and launch gaps while the gang was runnable
    (inside its own tenure, or any non-kernel time under tf-serving,
    which has no scheduler and therefore no tenure waits).
``overhead``
    Failover/retry/shed attempts: per-request this stays zero; the
    aggregation in :mod:`repro.analysis.blame` reclassifies the full
    latency of non-``ok`` attempts (and flags retry/failover clones)
    under this bucket.

The module is pure post-processing: it reads finished spans and never
touches the simulator, so attribution can never perturb a run.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .spans import Span

__all__ = [
    "COMPONENTS",
    "SUM_TOLERANCE",
    "RequestAttribution",
    "attribute_requests",
    "attribute_tracer",
    "is_retry_attempt",
    "is_failover_attempt",
]

COMPONENTS: Tuple[str, ...] = (
    "queue_wait",
    "admission",
    "tenure_wait",
    "arbitration",
    "exec_solo",
    "interference",
    "host_compute",
    "overhead",
)

# Per-request |sum(components) - e2e| bound enforced by the test suite.
SUM_TOLERANCE = 1e-9


def is_retry_attempt(job_id: str) -> bool:
    """True for retry clones (``c0/b2r1``): attempt > 1 of a batch."""
    head, sep, tail = job_id.rpartition("r")
    return bool(sep) and tail.isdigit() and head.rpartition("b")[2].isdigit()


def is_failover_attempt(job_id: str) -> bool:
    """True for failover clones (``c0/b2~f1``) replayed on a reset device."""
    return "~f" in job_id


@dataclass
class RequestAttribution:
    """One request's exact latency decomposition."""

    job_id: str
    client_id: Optional[str]
    model: Optional[str]
    status: str
    start: float
    end: float
    e2e: float
    components: Dict[str, float] = field(default_factory=dict)
    # Blocking tenant -> seconds of this request's tenure_wait spent
    # while that tenant held the token.
    blockers: Dict[str, float] = field(default_factory=dict)
    is_retry: bool = False
    is_failover: bool = False

    @property
    def total(self) -> float:
        return sum(self.components.values())

    @property
    def residual(self) -> float:
        """Decomposition error: ``sum(components) - e2e`` (≈ 0)."""
        return self.total - self.e2e

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "client_id": self.client_id,
            "model": self.model,
            "status": self.status,
            "start": self.start,
            "end": self.end,
            "e2e": self.e2e,
            "is_retry": self.is_retry,
            "is_failover": self.is_failover,
            "components": {k: self.components[k] for k in COMPONENTS},
            "blockers": dict(sorted(self.blockers.items())),
        }


def attribute_tracer(tracer) -> List["RequestAttribution"]:
    """Attribute every finished request span of a :class:`SpanTracer`."""
    return attribute_requests(tracer.finished)


def attribute_requests(spans: Iterable[Span]) -> List["RequestAttribution"]:
    """Decompose every closed request span in ``spans``.

    Results are ordered by (start, job_id) so the output is a
    deterministic function of the span table.
    """
    requests: List[Span] = []
    sessions: Dict[str, Span] = {}
    batches: Dict[str, Span] = {}
    kernels: Dict[str, List[Span]] = {}
    tenures: Dict[str, List[Span]] = {}
    all_tenures: List[Span] = []
    for span in spans:
        if span.end is None:
            continue
        if span.kind == "request":
            requests.append(span)
        elif span.kind == "session":
            sessions[str(span.attrs.get("job_id"))] = span
        elif span.kind == "batch":
            batches[span.span_id] = span
        elif span.kind == "kernel":
            kernels.setdefault(str(span.attrs.get("job_id")), []).append(span)
        elif span.kind == "tenure":
            tenures.setdefault(str(span.attrs.get("job_id")), []).append(span)
            all_tenures.append(span)
    # Tenure spans sorted by start for the overlap queries below.
    all_tenures.sort(key=lambda s: (s.start, s.span_id))
    tenure_starts = [s.start for s in all_tenures]
    has_scheduler = bool(all_tenures)

    out: List[RequestAttribution] = []
    for req in sorted(requests, key=lambda s: (s.start, s.span_id)):
        job_id = str(req.attrs.get("job_id"))
        attribution = _attribute_one(
            req,
            job_id,
            sessions.get(job_id),
            batches.get(req.parent_id) if req.parent_id else None,
            kernels.get(job_id, ()),
            tenures.get(job_id, ()),
            all_tenures,
            tenure_starts,
            has_scheduler,
        )
        out.append(attribution)
    return out


def _attribute_one(
    req: Span,
    job_id: str,
    sess: Optional[Span],
    batch: Optional[Span],
    job_kernels: Iterable[Span],
    job_tenures: Iterable[Span],
    all_tenures: List[Span],
    tenure_starts: List[float],
    has_scheduler: bool,
) -> RequestAttribution:
    components = dict.fromkeys(COMPONENTS, 0.0)
    blockers: Dict[str, float] = {}

    # Batch-formation wait extends the window backwards: batch spans are
    # backdated to the oldest arrival, so e2e for batched requests is
    # measured from arrival, not submit.
    queue_wait = 0.0
    window_start = req.start
    if batch is not None and batch.start < req.start:
        queue_wait = req.start - batch.start
        window_start = batch.start
    components["queue_wait"] = queue_wait
    e2e = req.end - window_start

    if sess is None or sess.end is None or sess.end <= sess.start:
        # Never reached a session (shed, or truncated at run end).
        components["admission"] = req.end - req.start
    else:
        s0 = max(req.start, sess.start)
        s1 = min(req.end, sess.end)
        if s1 < s0:
            s0 = s1 = req.start
        components["admission"] = (s0 - req.start) + (req.end - s1)
        _sweep_session(
            components,
            blockers,
            job_id,
            s0,
            s1,
            job_kernels,
            job_tenures,
            all_tenures,
            tenure_starts,
            has_scheduler,
        )

    return RequestAttribution(
        job_id=job_id,
        client_id=req.attrs.get("client_id"),
        model=req.attrs.get("model"),
        status=req.status,
        start=window_start,
        end=req.end,
        e2e=e2e,
        components=components,
        blockers=blockers,
        is_retry=is_retry_attempt(job_id),
        is_failover=is_failover_attempt(job_id),
    )


def _sweep_session(
    components: Dict[str, float],
    blockers: Dict[str, float],
    job_id: str,
    s0: float,
    s1: float,
    job_kernels: Iterable[Span],
    job_tenures: Iterable[Span],
    all_tenures: List[Span],
    tenure_starts: List[float],
    has_scheduler: bool,
) -> None:
    """Partition ``[s0, s1]`` by a boundary sweep and fill components.

    Priority at each instant: kernel execution > arbitration > own
    tenure (host compute) > scheduler wait (HOL) > host compute.  Gang
    threads overlap, so the exec/arbitration layers are coverage counts
    — concurrent kernels contribute wall-clock once, as they should for
    a latency decomposition.
    """
    # Sweep events: (time, layer, delta, holder).  Layers: 0 exec,
    # 1 arbitration, 2 own tenure, 3 other tenant's tenure.
    events: List[Tuple[float, int, int, Optional[str]]] = []

    def add(layer: int, a: float, b: float, holder: Optional[str] = None):
        a = max(a, s0)
        b = min(b, s1)
        if b > a:
            events.append((a, layer, 1, holder))
            events.append((b, layer, -1, holder))

    exec_total = 0.0
    solo_total = 0.0
    for kern in job_kernels:
        if kern.end is None:
            continue
        exec_start = kern.attrs.get("exec_start")
        if exec_start is None:
            # Rejected/truncated before reaching a stream: all queueing.
            add(1, kern.start, kern.end)
            continue
        add(1, kern.start, exec_start)
        add(0, exec_start, kern.end)
        duration = kern.end - exec_start
        solo = kern.attrs.get("solo_time")
        if solo is None:
            solo = duration
        exec_total += duration
        solo_total += min(max(solo, 0.0), duration)
    for tenure in job_tenures:
        if tenure.end is not None:
            add(2, tenure.start, tenure.end)
    # Other tenants' tenures overlapping the session window, for HOL
    # blame.  ``all_tenures`` is start-sorted; entries starting after s1
    # cannot overlap.
    hi = bisect_left(tenure_starts, s1)
    for tenure in all_tenures[:hi]:
        if tenure.end is None or tenure.end <= s0:
            continue
        holder = str(tenure.attrs.get("job_id"))
        if holder != job_id:
            add(3, tenure.start, tenure.end, holder)

    events.sort(key=lambda e: (e[0], e[1], -e[2], e[3] or ""))
    exec_cover = 0
    arb_cover = 0
    own_cover = 0
    active_holders: Dict[str, int] = {}
    cursor = s0
    exec_wall = 0.0
    index = 0
    n = len(events)
    while cursor < s1:
        # Apply every event at the cursor, then account the segment up
        # to the next boundary (or the session end).
        while index < n and events[index][0] <= cursor:
            _, layer, delta, holder = events[index]
            if layer == 0:
                exec_cover += delta
            elif layer == 1:
                arb_cover += delta
            elif layer == 2:
                own_cover += delta
            else:
                count = active_holders.get(holder, 0) + delta
                if count > 0:
                    active_holders[holder] = count
                else:
                    active_holders.pop(holder, None)
            index += 1
        nxt = min(events[index][0], s1) if index < n else s1
        length = nxt - cursor
        if exec_cover > 0:
            exec_wall += length
        elif arb_cover > 0:
            components["arbitration"] += length
        elif own_cover > 0:
            components["host_compute"] += length
        elif has_scheduler:
            components["tenure_wait"] += length
            if active_holders:
                share = length / len(active_holders)
                for holder in active_holders:
                    blockers[holder] = blockers.get(holder, 0.0) + share
        else:
            components["host_compute"] += length
        cursor = nxt

    # Split wall-clock execution into solo-rate time and spatial
    # interference, prorated by the per-kernel slowdown so the two parts
    # still sum exactly to the wall-clock coverage.
    if exec_total > 0.0 and exec_wall > 0.0:
        interference = exec_wall * (exec_total - solo_total) / exec_total
        components["interference"] = interference
        components["exec_solo"] = exec_wall - interference
    else:
        components["exec_solo"] = exec_wall
