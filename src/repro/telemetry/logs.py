"""Structured logging: JSON-lines records stamped with *simulated* time.

Replaces ad-hoc ``print()`` (lint rule OBS001).  A record is a flat
dict — ``time`` (sim seconds, or ``None`` outside a run), ``level``,
``component``, ``message``, plus arbitrary keyword fields — rendered
one JSON object per line so downstream tools can ``jq`` the stream.

Sinks decide where records go:

* :class:`JsonlSink` — append JSON lines to a file handle/path.
* :class:`ConsoleSink` — human-readable single line to a stream.
* :class:`BufferSink` — keep records in memory (tests, ``repro top``).
* :class:`NullSink` — drop everything (the default, zero overhead).

``get_logger(component)`` hands out cached loggers that all feed the
process-wide sink configured via ``configure_logging``; library code
never chooses a destination itself.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, IO, List, Optional

__all__ = [
    "LEVELS",
    "LogRecord",
    "StructuredLogger",
    "JsonlSink",
    "ConsoleSink",
    "BufferSink",
    "NullSink",
    "get_logger",
    "configure_logging",
]

# Severity order; a sink's ``min_level`` filters below its threshold.
LEVELS = ("debug", "info", "warning", "error")
_LEVEL_RANK = {name: rank for rank, name in enumerate(LEVELS)}


@dataclass(frozen=True)
class LogRecord:
    """One structured log entry."""

    time: Optional[float]
    level: str
    component: str
    message: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "time": self.time,
            "level": self.level,
            "component": self.component,
            "message": self.message,
        }
        out.update(self.fields)
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=False)


class NullSink:
    """Discards every record: the default for library use."""

    min_level = "error"

    def emit(self, record: LogRecord) -> None:
        pass


class BufferSink:
    """Keeps records in memory; tests and ``repro top`` read them."""

    def __init__(self, min_level: str = "debug") -> None:
        self.min_level = min_level
        self.records: List[LogRecord] = []

    def emit(self, record: LogRecord) -> None:
        self.records.append(record)

    def of_level(self, level: str) -> List[LogRecord]:
        return [r for r in self.records if r.level == level]

    def clear(self) -> None:
        self.records.clear()


class JsonlSink:
    """Appends one JSON object per record to a stream or path."""

    def __init__(
        self, target: Any, min_level: str = "debug"
    ) -> None:
        self.min_level = min_level
        if hasattr(target, "write"):
            self._stream: IO[str] = target
            self._owns = False
        else:
            self._stream = open(target, "a", encoding="utf-8")
            self._owns = True

    def emit(self, record: LogRecord) -> None:
        self._stream.write(record.to_json() + "\n")

    def close(self) -> None:
        if self._owns:
            self._stream.close()


class ConsoleSink:
    """Human-readable rendering for interactive use (``repro serve -v``)."""

    def __init__(
        self, stream: Optional[IO[str]] = None, min_level: str = "info"
    ) -> None:
        self.min_level = min_level
        self._stream = stream if stream is not None else sys.stderr

    def emit(self, record: LogRecord) -> None:
        stamp = (
            f"{record.time:.6f}" if record.time is not None else "-"
        )
        extras = " ".join(
            f"{key}={value}" for key, value in record.fields.items()
        )
        tail = f" {extras}" if extras else ""
        self._stream.write(
            f"[{stamp}] {record.level.upper():7s} "
            f"{record.component}: {record.message}{tail}\n"
        )


class StructuredLogger:
    """A component-scoped logger writing to a shared sink.

    ``clock`` is an optional zero-arg callable returning the current
    *simulated* time; when attached (by the telemetry pipeline) every
    record carries the sim timestamp.  Without one, ``time`` is None —
    never wall clock, which would break byte-stable log comparisons.
    """

    def __init__(
        self,
        component: str,
        sink: Optional[Any] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.component = component
        self._sink = sink
        self.clock = clock

    @property
    def sink(self) -> Any:
        return self._sink if self._sink is not None else _GLOBAL_SINK

    def _log(self, level: str, message: str, fields: Dict[str, Any]) -> None:
        sink = self.sink
        threshold = _LEVEL_RANK.get(
            getattr(sink, "min_level", "debug"), 0
        )
        if _LEVEL_RANK[level] < threshold:
            return
        time = self.clock() if self.clock is not None else None
        sink.emit(
            LogRecord(
                time=time,
                level=level,
                component=self.component,
                message=message,
                fields=fields,
            )
        )

    def debug(self, message: str, **fields: Any) -> None:
        self._log("debug", message, fields)

    def info(self, message: str, **fields: Any) -> None:
        self._log("info", message, fields)

    def warning(self, message: str, **fields: Any) -> None:
        self._log("warning", message, fields)

    def error(self, message: str, **fields: Any) -> None:
        self._log("error", message, fields)


_GLOBAL_SINK: Any = NullSink()
_LOGGERS: Dict[str, StructuredLogger] = {}


def configure_logging(sink: Optional[Any] = None) -> Any:
    """Set the process-wide sink; ``None`` restores the null sink.

    Returns the previous sink so callers (CLI entry points, tests) can
    restore it.
    """
    global _GLOBAL_SINK
    previous = _GLOBAL_SINK
    _GLOBAL_SINK = sink if sink is not None else NullSink()
    return previous


def get_logger(component: str) -> StructuredLogger:
    """A cached per-component logger bound to the global sink."""
    logger = _LOGGERS.get(component)
    if logger is None:
        logger = _LOGGERS[component] = StructuredLogger(component)
    return logger
