"""``repro top``: a terminal view of a serving run, frame per snapshot.

The renderer is a pure function of the telemetry pipeline's current
state — per-model tenure share, queue depths, GPU utilization, the
counter dashboard — invoked from the snapshot ticker's ``on_snapshot``
callback while the simulation runs.  The CLI decides presentation:
stream frames (default, CI-friendly) or redraw in place with ANSI
(``--follow``, which also paces frames against the wall clock).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .exposition import MetricsSnapshot
from .pipeline import Telemetry

__all__ = ["TopView", "render_frame"]

_BAR_WIDTH = 24


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def _tenure_share(telemetry: Telemetry) -> List[Dict[str, Any]]:
    """Per-model share of total token-tenure time, descending."""
    family = telemetry.registry.get("tenure_seconds")
    rows: List[Dict[str, Any]] = []
    total = 0.0
    if family is not None:
        for key, child in family.items():
            labels = dict(key)
            rows.append(
                {
                    "model": labels.get("model", "?"),
                    "seconds": child.total,
                    "tenures": child.count,
                }
            )
            total += child.total
    for row in rows:
        row["share"] = row["seconds"] / total if total > 0 else 0.0
    rows.sort(key=lambda row: (-row["seconds"], row["model"]))
    return rows


def render_frame(
    snapshot: MetricsSnapshot, telemetry: Telemetry, width: int = 72
) -> str:
    """One frame of the live view as a multi-line string."""
    collector = telemetry.collector
    time = snapshot.time if snapshot.time is not None else 0.0
    lines: List[str] = []
    lines.append("=" * width)
    lines.append(
        f"repro top   t={time:10.4f}s   "
        f"active jobs={collector.active_jobs.value():.0f}   "
        f"events={telemetry.bus.events_published}"
    )
    lines.append("-" * width)
    util = collector.gpu_utilization.value()
    lines.append(f"GPU util   [{_bar(util)}] {util:6.1%}")
    if (
        collector.device_crashes.total() > 0
        or collector.last_health != "healthy"
    ):
        lines.append(
            f"health     {collector.last_health:<10s} "
            f"crashes {collector.device_crashes.total():.0f}   "
            f"resets {collector.device_resets.total():.0f}   "
            f"failover {collector.failovers.total():.0f}   "
            f"shed {collector.jobs_shed.total():.0f}"
        )
        sheds = sorted(
            (dict(key).get("reason", ""), child.value)
            for key, child in collector.jobs_shed.items()
        )
        if sheds:
            breakdown = "   ".join(
                f"{reason} {value:.0f}" for reason, value in sheds
            )
            lines.append(f"           shed by reason: {breakdown}")
    decisions = sorted(
        (
            f"{dict(key).get('action', '')}:{dict(key).get('reason', '')}",
            child.value,
        )
        for key, child in collector.admission_decisions.items()
    )
    if decisions:
        breakdown = "   ".join(
            f"{label} {value:.0f}" for label, value in decisions
        )
        lines.append(f"admission  {breakdown}")
    depth = 0
    if telemetry.server is not None:
        depth = telemetry.server.driver.total_queued
    lines.append(
        f"queues     driver={depth}   "
        f"batcher={collector.batch_queue_depth.value():.0f}"
    )
    lines.append(
        "counters   "
        f"req {collector.requests_finished.total():.0f}/"
        f"{collector.requests_submitted.total():.0f} done   "
        f"kern {collector.kernels_finished.total():.0f}   "
        f"overflow {collector.overflow_kernels.total():.0f}   "
        f"switch {collector.switches.total():.0f}   "
        f"evict {collector.evictions.total():.0f}   "
        f"retry {collector.request_retries.total():.0f}"
    )
    shares = _tenure_share(telemetry)
    if shares:
        lines.append("-" * width)
        lines.append("tenure share by model")
        for row in shares:
            lines.append(
                f"  {row['model']:<14s} [{_bar(row['share'])}] "
                f"{row['share']:6.1%}  "
                f"{row['seconds'] * 1e3:8.2f} ms in {row['tenures']} tenures"
            )
    lines.append("=" * width)
    return "\n".join(lines)


class TopView:
    """Snapshot-callback adapter collecting (and optionally printing)
    rendered frames."""

    def __init__(
        self,
        stream: Optional[Any] = None,
        width: int = 72,
        max_frames: Optional[int] = None,
    ) -> None:
        self.stream = stream
        self.width = width
        self.max_frames = max_frames
        self.frames: List[str] = []

    def on_snapshot(
        self, snapshot: MetricsSnapshot, telemetry: Telemetry
    ) -> None:
        if self.max_frames is not None and len(self.frames) >= self.max_frames:
            return
        frame = render_frame(snapshot, telemetry, width=self.width)
        self.frames.append(frame)
        if self.stream is not None:
            self.stream.write(frame + "\n")
