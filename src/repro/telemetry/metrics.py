"""The metrics registry: counters, gauges, histograms.

A deliberately small, Prometheus-shaped model:

* :class:`Counter` — monotonically increasing total.
* :class:`Gauge` — a value that goes up and down (queue depth).
* :class:`Histogram` — observations bucketed into **fixed** boundaries
  chosen at construction; cumulative ``le`` counts plus sum and count.
  Fixed boundaries keep exposition output byte-stable across runs —
  no adaptive bucketing, which would make golden-file tests flaky.

Metric families support labels; children are keyed by the sorted label
tuple, so iteration order is deterministic regardless of observation
order.  The registry is pure bookkeeping: no clocks, no RNG, no
simulation events — updating a metric can never perturb the run.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_DEPTH_BUCKETS",
]

LabelKey = Tuple[Tuple[str, str], ...]

# Seconds-scale boundaries spanning kernel durations (tens of us) up to
# whole-run latencies.  Fixed: see module docstring.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

# Queue-depth style boundaries.
DEFAULT_DEPTH_BUCKETS: Tuple[float, ...] = (
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
)


def _label_key(labels: Optional[Mapping[str, Any]]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Child:
    """Base for one labelled instance of a metric family."""

    __slots__ = ()


class _CounterChild(_Child):
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0: {amount}")
        self.value += amount


class _GaugeChild(_Child):
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _HistogramChild(_Child):
    __slots__ = ("buckets", "counts", "total", "count", "exemplars")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +1 = +Inf bucket
        self.total = 0.0
        self.count = 0
        # One representative trace reference (span id) per bucket,
        # first observation wins — deterministic, and enough for the
        # metric -> trace jump in `repro top` / `repro blame`.
        self.exemplars: List[Optional[str]] = [None] * (len(buckets) + 1)

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        self.total += value
        self.count += 1
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        if exemplar is not None and self.exemplars[index] is None:
            self.exemplars[index] = exemplar

    def cumulative(self) -> List[int]:
        """Prometheus-style cumulative ``le`` counts (ends with +Inf)."""
        out: List[int] = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-interpolated percentile (``histogram_quantile`` style).

        Linear interpolation inside the bucket holding the target rank;
        the +Inf bucket clamps to the largest finite boundary, exactly
        like Prometheus.  Returns 0.0 on an empty histogram.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100]: {q}")
        if self.count == 0:
            return 0.0
        target = q / 100.0 * self.count
        running = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if running + bucket_count >= target:
                if i >= len(self.buckets):  # +Inf bucket
                    return self.buckets[-1]
                lower = self.buckets[i - 1] if i > 0 else 0.0
                upper = self.buckets[i]
                fraction = (target - running) / bucket_count
                return lower + (upper - lower) * fraction
            running += bucket_count
        return self.buckets[-1]

    def summary(self) -> Dict[str, float]:
        """The end-of-run rollup shape: count, sum, mean, p50/p95/p99."""
        return {
            "count": float(self.count),
            "sum": self.total,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class _Family:
    """A named metric with labelled children."""

    metric_type = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._children: Dict[LabelKey, Any] = {}

    def _make_child(self) -> Any:
        raise NotImplementedError

    def child(self, labels: Optional[Mapping[str, Any]] = None) -> Any:
        key = _label_key(labels)
        node = self._children.get(key)
        if node is None:
            node = self._children[key] = self._make_child()
        return node

    # Alias matching the prometheus_client idiom.
    def labels(self, **labels: Any) -> Any:
        return self.child(labels)

    def items(self) -> Iterator[Tuple[LabelKey, Any]]:
        """(label-key, child) pairs in sorted label order."""
        for key in sorted(self._children):
            yield key, self._children[key]

    @property
    def child_count(self) -> int:
        return len(self._children)


class Counter(_Family):
    metric_type = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(
        self, amount: float = 1.0, labels: Optional[Mapping[str, Any]] = None
    ) -> None:
        self.child(labels).inc(amount)

    def value(self, labels: Optional[Mapping[str, Any]] = None) -> float:
        key = _label_key(labels)
        node = self._children.get(key)
        return node.value if node is not None else 0.0

    def total(self) -> float:
        return sum(child.value for child in self._children.values())


class Gauge(_Family):
    metric_type = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(
        self, value: float, labels: Optional[Mapping[str, Any]] = None
    ) -> None:
        self.child(labels).set(value)

    def inc(
        self, amount: float = 1.0, labels: Optional[Mapping[str, Any]] = None
    ) -> None:
        self.child(labels).inc(amount)

    def dec(
        self, amount: float = 1.0, labels: Optional[Mapping[str, Any]] = None
    ) -> None:
        self.child(labels).dec(amount)

    def value(self, labels: Optional[Mapping[str, Any]] = None) -> float:
        key = _label_key(labels)
        node = self._children.get(key)
        return node.value if node is not None else 0.0


class Histogram(_Family):
    metric_type = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        super().__init__(name, help_text)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"bucket boundaries must be sorted: {bounds}")
        self.buckets = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(
        self,
        value: float,
        labels: Optional[Mapping[str, Any]] = None,
        exemplar: Optional[str] = None,
    ) -> None:
        self.child(labels).observe(value, exemplar=exemplar)

    def count(self, labels: Optional[Mapping[str, Any]] = None) -> int:
        key = _label_key(labels)
        node = self._children.get(key)
        return node.count if node is not None else 0

    def sum(self, labels: Optional[Mapping[str, Any]] = None) -> float:
        key = _label_key(labels)
        node = self._children.get(key)
        return node.total if node is not None else 0.0

    def percentile(
        self, q: float, labels: Optional[Mapping[str, Any]] = None
    ) -> float:
        key = _label_key(labels)
        node = self._children.get(key)
        return node.percentile(q) if node is not None else 0.0

    def summary(
        self, labels: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, float]:
        key = _label_key(labels)
        node = self._children.get(key)
        if node is None:
            return _HistogramChild(self.buckets).summary()
        return node.summary()

    def exemplars(
        self, labels: Optional[Mapping[str, Any]] = None
    ) -> List[Optional[str]]:
        """Per-bucket representative span ids (+Inf last); None = empty."""
        key = _label_key(labels)
        node = self._children.get(key)
        if node is None:
            return [None] * (len(self.buckets) + 1)
        return list(node.exemplars)


class MetricsRegistry:
    """Named metric families, created on first use.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    returns the same family; asking with a conflicting type raises.
    Family iteration order is name-sorted for stable exposition.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def _get_or_create(
        self, cls: type, name: str, help_text: str, **kwargs: Any
    ) -> Any:
        family = self._families.get(name)
        if family is not None:
            if not isinstance(family, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.metric_type}, not {cls.metric_type}"
                )
            return family
        family = cls(name, help_text, **kwargs)
        self._families[name] = family
        return family

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, buckets=buckets
        )

    def families(self) -> List[_Family]:
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[_Family]:
        return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)
