"""Metric collectors: turning raw simulation traces into paper metrics.

These functions bridge the scheduler's tenure log and the GPU tracer's
busy intervals into the quantities the paper's figures report:

* per-client finish times (Figures 3, 11, 13, 17, 18, 20, 21),
* per-quantum GPU durations (Figures 12, 14, 16),
* scheduling-interval durations (Figure 12),
* per-client total GPU durations (Figure 19 right),
* utilization over the serving window (§4.3).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.scheduler import GangScheduler
from ..serving.client import Client
from ..serving.server import ModelServer

__all__ = [
    "finish_times",
    "all_active_window",
    "quantum_gpu_durations",
    "scheduling_interval_durations",
    "client_gpu_durations",
    "serving_window",
    "window_utilization",
]


def finish_times(clients: Sequence[Client]) -> Dict[object, float]:
    """Per-client finish time (start of client to last response)."""
    return {client.client_id: client.finish_time for client in clients}


def all_active_window(clients: Sequence[Client]) -> Tuple[float, float]:
    """The window during which *every* client had work in flight.

    The paper measures per-quantum GPU durations "while all jobs were
    active" (§4.1), avoiding the end-game when finished clients free up
    the GPU for the rest.
    """
    if not clients:
        raise ValueError("no clients")
    starts = []
    ends = []
    for client in clients:
        if not client.jobs:
            raise ValueError(f"client {client.client_id!r} submitted no jobs")
        first = client.jobs[0].submitted_at
        last = client.finished_at
        if first is None or last is None:
            raise ValueError(f"client {client.client_id!r} did not finish")
        starts.append(first)
        ends.append(last)
    lo = max(starts)
    hi = min(ends)
    if hi <= lo:
        raise ValueError("clients never overlapped")
    return lo, hi


def quantum_gpu_durations(
    server: ModelServer,
    scheduler: GangScheduler,
    window: Optional[Tuple[float, float]] = None,
) -> Dict[object, List[float]]:
    """GPU duration of each tenure (quantum), grouped by client.

    A job's GPU busy intervals are attributed to its tenures by start
    time: everything the job executes from one of its tenure starts
    until its *next* tenure start belongs to that tenure.  This charges
    "overflow" kernels — launched inside a quantum but finishing after
    the switch (paper Figures 10/15) — to the quantum that launched
    them, matching the paper's accounting.  Tenures outside ``window``
    are skipped when a window is given.
    """
    # Group closed tenures by job, in start order.
    tenures_by_job: Dict[str, List] = defaultdict(list)
    for tenure in scheduler.closed_tenures():
        if tenure.end is not None:
            tenures_by_job[tenure.job_id].append(tenure)
    per_client: Dict[object, List[float]] = defaultdict(list)
    for job_id, tenures in tenures_by_job.items():
        tenures.sort(key=lambda t: t.start)
        starts = [t.start for t in tenures]
        # Buckets: [start_k, start_{k+1}) for each tenure k; the last
        # bucket is open-ended so a final quantum keeps its overflow.
        sums = [0.0] * len(tenures)
        for interval in server.tracer.intervals(job_id):
            index = bisect_right(starts, interval.start) - 1
            if index >= 0:
                sums[index] += interval.duration
        for tenure, total in zip(tenures, sums):
            if window is not None:
                lo, hi = window
                if tenure.start < lo or tenure.end > hi:
                    continue
            per_client[tenure.client_id].append(total)
    return dict(per_client)


def scheduling_interval_durations(
    scheduler: GangScheduler,
    window: Optional[Tuple[float, float]] = None,
) -> List[float]:
    """Durations between consecutive token hand-offs (Figure 12)."""
    times = scheduler.decision_times()
    if window is not None:
        lo, hi = window
        times = [t for t in times if lo <= t <= hi]
    return [b - a for a, b in zip(times, times[1:])]


def client_gpu_durations(
    server: ModelServer, clients: Sequence[Client]
) -> Dict[object, float]:
    """Total GPU duration each client received across all its jobs."""
    return {
        client.client_id: client.total_gpu_duration() for client in clients
    }


def serving_window(clients: Sequence[Client]) -> Tuple[float, float]:
    """Earliest submit to latest finish across all clients."""
    starts = [
        client.jobs[0].submitted_at for client in clients if client.jobs
    ]
    ends = [client.finished_at for client in clients]
    if not starts or any(s is None for s in starts) or any(e is None for e in ends):
        raise ValueError("clients did not all run to completion")
    return min(starts), max(ends)


def window_utilization(server: ModelServer, clients: Sequence[Client]) -> float:
    """GPU busy fraction over the whole serving window (§4.3 metric)."""
    lo, hi = serving_window(clients)
    return server.utilization(lo, hi)
