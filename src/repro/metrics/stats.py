"""Statistics helpers used by experiments and tests.

Small, dependency-light implementations of the summary statistics the
paper reports: means, sample standard deviations (the paper quotes
"std dev of 4.9 % to 10.1 %" *relative* to the mean), empirical CDFs
(Figure 4), and Jain's fairness index, which we use as a quantitative
fairness score for finish times and GPU shares.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = [
    "Summary",
    "mean",
    "stddev",
    "relative_stddev",
    "percentile",
    "empirical_cdf",
    "jain_index",
    "spread_ratio",
    "summarize",
]


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1); zero for a single value."""
    n = len(values)
    if n == 0:
        raise ValueError("stddev of empty sequence")
    if n == 1:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (n - 1))


def relative_stddev(values: Sequence[float]) -> float:
    """Std dev as a fraction of the mean (the paper's "std of X %")."""
    mu = mean(values)
    if mu == 0:
        raise ValueError("relative stddev undefined for zero mean")
    return stddev(values) / abs(mu)


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolation percentile, ``p`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile out of range: {p}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def empirical_cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Sorted ``(value, cumulative_fraction)`` pairs."""
    if not values:
        raise ValueError("CDF of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def cdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of values <= threshold."""
    if not values:
        raise ValueError("CDF of empty sequence")
    return sum(1 for v in values if v <= threshold) / len(values)


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly equal shares.

    ``(sum x)^2 / (n * sum x^2)``; ranges from ``1/n`` (one job gets
    everything) to 1 (all equal).
    """
    if not values:
        raise ValueError("Jain index of empty sequence")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        raise ValueError("Jain index undefined for all-zero values")
    return (total * total) / (len(values) * squares)


def spread_ratio(values: Sequence[float]) -> float:
    """max/min ratio — the paper's "finish times vary by up to 1.7x"."""
    if not values:
        raise ValueError("spread of empty sequence")
    lo = min(values)
    if lo <= 0:
        raise ValueError("spread ratio requires positive values")
    return max(values) / lo


@dataclass(frozen=True)
class Summary:
    """Compact numeric summary of a sample."""

    count: int
    mean: float
    stddev: float
    minimum: float
    maximum: float

    @property
    def relative_stddev(self) -> float:
        if self.mean == 0:
            raise ValueError("relative stddev undefined for zero mean")
        return self.stddev / abs(self.mean)

    @property
    def spread_ratio(self) -> float:
        if self.minimum <= 0:
            raise ValueError("spread ratio requires positive values")
        return self.maximum / self.minimum


def summarize(values: Sequence[float]) -> Summary:
    if not values:
        raise ValueError("summary of empty sequence")
    return Summary(
        count=len(values),
        mean=mean(values),
        stddev=stddev(values),
        minimum=min(values),
        maximum=max(values),
    )
