"""Plain-text report rendering for the experiment harness.

The benchmark suite prints each reproduced table/figure as an aligned
monospace table with a caption referencing the paper artefact, so a run
of ``pytest benchmarks/ --benchmark-only -s`` reads like the paper's
evaluation section.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = [
    "render_table",
    "format_seconds",
    "format_us",
    "format_ms",
    "format_percent",
    "format_ratio",
]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_seconds(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f} s"


def format_ms(value: float, digits: int = 2) -> str:
    return f"{value * 1e3:.{digits}f} ms"


def format_us(value: float, digits: int = 0) -> str:
    return f"{value * 1e6:.{digits}f} us"


def format_percent(value: float, digits: int = 1) -> str:
    return f"{value * 100:.{digits}f} %"


def format_ratio(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}x"
