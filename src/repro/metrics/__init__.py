"""Measurement: statistics, metric collectors, and report rendering."""

from .collectors import (
    all_active_window,
    client_gpu_durations,
    finish_times,
    quantum_gpu_durations,
    scheduling_interval_durations,
    serving_window,
    window_utilization,
)
from .report import (
    format_ms,
    format_percent,
    format_ratio,
    format_seconds,
    format_us,
    render_table,
)
from .stats import (
    Summary,
    cdf_at,
    empirical_cdf,
    jain_index,
    mean,
    percentile,
    relative_stddev,
    spread_ratio,
    stddev,
    summarize,
)

__all__ = [
    "all_active_window",
    "client_gpu_durations",
    "finish_times",
    "quantum_gpu_durations",
    "scheduling_interval_durations",
    "serving_window",
    "window_utilization",
    "format_ms",
    "format_percent",
    "format_ratio",
    "format_seconds",
    "format_us",
    "render_table",
    "Summary",
    "cdf_at",
    "empirical_cdf",
    "jain_index",
    "mean",
    "percentile",
    "relative_stddev",
    "spread_ratio",
    "stddev",
    "summarize",
]
