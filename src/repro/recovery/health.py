"""Server health state machine: healthy → degraded → draining.

A pure classifier over observable recovery state — it creates no
events and keeps no timers, so evaluating it is free and
digest-neutral.  Transitions (in *either* direction; a server heals)
are recorded and surfaced through telemetry and ``repro top``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

__all__ = ["HEALTH_STATES", "HealthMonitor"]

HEALTH_STATES = ("healthy", "degraded", "draining")

# on_transition(old_state, new_state, now)
TransitionHook = Callable[[str, str, float], None]


class HealthMonitor:
    """Classifies the serving front's health from recovery signals.

    * **draining** — every device is down: nothing can progress, and
      accepted work merely drains (or waits for a reset).
    * **degraded** — some (not all) devices down, any circuit breaker
      not closed, or brownout jobs pending.
    * **healthy** — none of the above.
    """

    def __init__(self, on_transition: Optional[TransitionHook] = None):
        self.state = "healthy"
        self.on_transition = on_transition
        self.transitions: List[Tuple[float, str, str]] = []

    def evaluate(
        self,
        now: float,
        devices_down: int,
        devices_total: int,
        breakers_open: int,
        pending: int,
    ) -> str:
        if devices_total > 0 and devices_down >= devices_total:
            new = "draining"
        elif devices_down > 0 or breakers_open > 0 or pending > 0:
            new = "degraded"
        else:
            new = "healthy"
        if new != self.state:
            old, self.state = self.state, new
            self.transitions.append((now, old, new))
            if self.on_transition is not None:
                self.on_transition(old, new, now)
        return self.state
