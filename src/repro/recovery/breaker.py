"""Per-model circuit breakers.

The standard three-state machine, driven entirely by *simulated* time
(no wall clock, no randomness — a breaker's trajectory is a pure
function of the failure/success sequence it observes, so recovery runs
stay digest-deterministic):

* **closed** — requests admitted; failures are counted in a sliding
  sim-time window, and reaching the threshold trips the breaker.
* **open** — requests rejected at admission with the remaining
  cooldown as a ``retry_after`` hint; after the cooldown the next
  admission attempt half-opens the breaker.
* **half-open** — up to ``half_open_probes`` concurrent probe jobs are
  admitted; ``success_threshold`` consecutive successes close the
  breaker, any probe failure re-opens it.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from .config import BreakerConfig

__all__ = ["BREAKER_STATES", "CircuitBreaker"]

BREAKER_STATES = ("closed", "open", "half_open")

# on_transition(breaker, old_state, new_state, now)
TransitionHook = Callable[["CircuitBreaker", str, str, float], None]


class CircuitBreaker:
    """One model's breaker; the manager keeps one per model name."""

    def __init__(
        self,
        model: str,
        config: BreakerConfig,
        on_transition: Optional[TransitionHook] = None,
    ):
        self.model = model
        self.config = config
        self.on_transition = on_transition
        self.state = "closed"
        self.trips = 0
        self.rejections = 0
        self._failures: Deque[float] = deque()
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0

    def _set_state(self, new: str, now: float) -> None:
        if new == self.state:
            return
        old, self.state = self.state, new
        if new == "open":
            self.trips += 1
            self._opened_at = now
        elif new == "half_open":
            self._probes_in_flight = 0
            self._probe_successes = 0
        elif new == "closed":
            self._failures.clear()
        if self.on_transition is not None:
            self.on_transition(self, old, new, now)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def admit(self, now: float) -> bool:
        """May a request for this model be admitted at ``now``?

        Half-open admission consumes a probe slot; callers that admit
        but then do not launch (e.g. the job is shed by brownout) must
        release it with :meth:`abort_probe`.
        """
        if self.state == "open":
            if now - self._opened_at >= self.config.cooldown:
                self._set_state("half_open", now)
            else:
                self.rejections += 1
                return False
        if self.state == "half_open":
            if self._probes_in_flight >= self.config.half_open_probes:
                self.rejections += 1
                return False
            self._probes_in_flight += 1
        return True

    def would_admit(self, now: float) -> bool:
        """Non-mutating preview of :meth:`admit`.

        No state transition happens and no probe slot is consumed —
        this is the admission gate's pre-check, which must predict
        :meth:`admit` exactly (same ``now``, no intervening events)
        without double-charging the half-open probe budget.
        """
        if self.state == "open":
            return now - self._opened_at >= self.config.cooldown
        if self.state == "half_open":
            return self._probes_in_flight < self.config.half_open_probes
        return True

    def abort_probe(self) -> None:
        """Release a probe slot consumed by an admit that never launched."""
        if self.state == "half_open" and self._probes_in_flight > 0:
            self._probes_in_flight -= 1

    def retry_after(self, now: float) -> float:
        """Backpressure hint for a rejected request."""
        if self.state == "open":
            return max(0.0, self._opened_at + self.config.cooldown - now)
        return 0.0

    # ------------------------------------------------------------------
    # Outcome feedback
    # ------------------------------------------------------------------

    def record_success(self, now: float) -> None:
        if self.state == "half_open":
            if self._probes_in_flight > 0:
                self._probes_in_flight -= 1
            self._probe_successes += 1
            if self._probe_successes >= self.config.success_threshold:
                self._set_state("closed", now)

    def record_failure(self, now: float) -> None:
        if self.state == "half_open":
            if self._probes_in_flight > 0:
                self._probes_in_flight -= 1
            self._set_state("open", now)
            return
        if self.state == "closed":
            failures = self._failures
            failures.append(now)
            cutoff = now - self.config.window
            while failures and failures[0] < cutoff:
                failures.popleft()
            if len(failures) >= self.config.failure_threshold:
                self._set_state("open", now)
