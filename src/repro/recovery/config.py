"""Recovery subsystem configuration.

All three dataclasses are frozen: a config is a value, shared freely
between the manager, experiments, and reports.  Sub-configs are
``None`` to disable that mechanism entirely — a disabled mechanism
contributes zero branches at runtime, preserving digest-neutrality of
runs that never crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["BreakerConfig", "BrownoutConfig", "RecoveryConfig"]


@dataclass(frozen=True)
class BreakerConfig:
    """Per-model circuit breaker tuning (sim-time units).

    ``failure_threshold`` failures within a sliding ``window`` trip
    the breaker open; after ``cooldown`` it half-opens and admits up to
    ``half_open_probes`` concurrent probe jobs; ``success_threshold``
    consecutive probe successes close it, any probe failure re-opens.
    """

    window: float = 0.05
    failure_threshold: int = 3
    cooldown: float = 0.02
    half_open_probes: int = 1
    success_threshold: int = 1

    def __post_init__(self):
        if self.window <= 0:
            raise ValueError(f"window must be positive: {self.window}")
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1: {self.failure_threshold}"
            )
        if self.cooldown <= 0:
            raise ValueError(f"cooldown must be positive: {self.cooldown}")
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1: {self.half_open_probes}"
            )
        if self.success_threshold < 1:
            raise ValueError(
                f"success_threshold must be >= 1: {self.success_threshold}"
            )


@dataclass(frozen=True)
class BrownoutConfig:
    """Bounded pending queue with deadline-aware shedding.

    At most ``max_active`` jobs run concurrently; the next
    ``max_pending`` wait in a pending queue that dispatches
    earliest-deadline-first.  When the queue is full the lowest-slack
    candidate (slack = deadline − now; no deadline = infinite) is shed
    with ``shed_retry_after`` as the client backoff hint — shedding the
    job *least likely to make its deadline anyway* is the
    profiled-cost analogue of DARIS-style deadline-aware degradation.
    """

    max_active: int = 8
    max_pending: int = 16
    shed_retry_after: float = 2e-3

    def __post_init__(self):
        if self.max_active < 1:
            raise ValueError(f"max_active must be >= 1: {self.max_active}")
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1: {self.max_pending}")
        if self.shed_retry_after < 0:
            raise ValueError(
                f"shed_retry_after must be >= 0: {self.shed_retry_after}"
            )


@dataclass(frozen=True)
class RecoveryConfig:
    """Top-level recovery behaviour.

    ``failover`` re-queues jobs killed by a device crash (onto a
    surviving worker, or the same device after reset); a job may fail
    over at most ``max_failovers`` times before its failure is
    surfaced to the client.  ``breaker`` / ``brownout`` enable the
    respective mechanisms (``None`` = off).
    """

    failover: bool = True
    max_failovers: int = 4
    breaker: Optional[BreakerConfig] = BreakerConfig()
    brownout: Optional[BrownoutConfig] = None

    def __post_init__(self):
        if self.max_failovers < 0:
            raise ValueError(
                f"max_failovers must be >= 0: {self.max_failovers}"
            )
