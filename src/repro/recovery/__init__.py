"""Failure recovery and degraded-mode serving.

The :class:`RecoveryManager` attaches to a serving front and layers
three opt-in mechanisms over it — device-crash failover with scheduler
accounting rollback, per-model circuit breakers, and brownout
load-shedding — while a :class:`HealthMonitor` classifies the front as
healthy / degraded / draining for telemetry and ``repro top``.

Everything in this package is driven by simulated time and
deterministic data structures; a run with recovery enabled is replayed
byte-identically from its seed, and a run without a manager attached is
bit-identical to a build that never had this package.
"""

from .breaker import BREAKER_STATES, CircuitBreaker
from .config import BreakerConfig, BrownoutConfig, RecoveryConfig
from .errors import JobShed, ModelUnavailable
from .health import HEALTH_STATES, HealthMonitor
from .manager import RecoveryManager

__all__ = [
    "BREAKER_STATES",
    "HEALTH_STATES",
    "BreakerConfig",
    "BrownoutConfig",
    "CircuitBreaker",
    "HealthMonitor",
    "JobShed",
    "ModelUnavailable",
    "RecoveryConfig",
    "RecoveryManager",
]
