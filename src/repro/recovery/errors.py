"""Recovery-layer admission errors.

Both carry ``retryable = True`` (the request never started executing,
so resubmission is idempotent) and a ``retry_after`` backpressure hint
that :meth:`~repro.serving.failures.RetryPolicy.backoff_for` honours:
the server *knows* when retrying could possibly succeed (breaker
cooldown expiry, expected queue drain) and says so.
"""

from __future__ import annotations

__all__ = ["ModelUnavailable", "JobShed"]


class ModelUnavailable(Exception):
    """Admission rejected: the model's circuit breaker is open.

    ``retry_after`` is the remaining cooldown before the breaker
    half-opens and probe jobs are admitted again.
    """

    retryable = True

    def __init__(self, model: str, retry_after: float = 0.0, state: str = "open"):
        super().__init__(
            f"model {model!r} unavailable (breaker {state}; "
            f"retry after {max(retry_after, 0.0):.6f} s)"
        )
        self.model = model
        self.retry_after = max(retry_after, 0.0)
        self.state = state


class JobShed(Exception):
    """The job was shed by brownout load-shedding.

    Raised synchronously at admission when the arriving job is the
    lowest-slack candidate for a full pending queue, or delivered as
    the cause of a :class:`~repro.serving.failures.JobFailed` when a
    queued job is displaced by a scarcer-deadline arrival.
    """

    retryable = True

    def __init__(self, job_id: str, reason: str, retry_after: float = 0.0):
        super().__init__(f"job {job_id!r} shed: {reason}")
        self.job_id = job_id
        self.reason = reason
        self.retry_after = max(retry_after, 0.0)
