"""The recovery manager: supervision, failover, brownout, health.

One :class:`RecoveryManager` attaches to a serving front — a
:class:`~repro.serving.server.ModelServer` or a
:class:`~repro.cluster.server.MultiGpuServer` — and intercepts its
``submit``/``cancel``.  Every submitted job becomes a *supervision*:
the client receives an outer completion event that survives device
crashes, while the manager drives one or more inner *attempts* (the
original job, then clones replayed after failover) underneath it.

Mechanics, in the order a request meets them:

1. **Circuit breaker** (per model): an open breaker rejects at
   admission, synchronously, with
   :class:`~repro.recovery.errors.ModelUnavailable` carrying the
   remaining cooldown as ``retry_after``.
2. **Brownout**: with the front at ``max_active`` jobs, the request
   parks in a bounded pending queue; a full queue sheds the
   lowest-slack candidate (deadline-aware; ties shed the newest
   arrival, preserving FIFO among equals).  The queue dispatches
   earliest-deadline-first as capacity frees.
3. **Failover**: an attempt killed by
   :class:`~repro.faults.errors.DeviceCrashed` is rolled back in the
   scheduler's accounting (``scheduler.rollback`` — no fairness
   accumulator leaks across a reset), then re-executed from the start
   of its session as a fresh clone (job id suffixed ``~fN``) — on a
   surviving worker of a multi-GPU front, or on the same device after
   its reset completes in the single-GPU case.

The manager is strictly opt-in: with no manager attached every seam it
uses is a ``None`` check and behaviour (and trace digests) are
bit-identical to a recovery-less build.  All state transitions are
driven by simulated time and deterministic data structures — no wall
clock, no randomness — so recovery runs replay byte-identically.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..faults.errors import DeviceCrashed
from ..gpu.memory import GpuOutOfMemory
from ..serving.cancellation import JobCancelled
from ..serving.failures import JobFailed
from ..serving.request import Job
from .breaker import CircuitBreaker
from .config import RecoveryConfig
from .errors import JobShed, ModelUnavailable
from .health import HealthMonitor

__all__ = ["RecoveryManager"]


class _Supervision:
    """One client request and the attempt currently serving it."""

    __slots__ = (
        "origin",
        "outer",
        "front",
        "attempts",
        "current",
        "abandoned",
        "outcome",
        "order",
        "enqueued_at",
    )

    def __init__(self, origin: Job, outer, front, order: int):
        self.origin = origin
        self.outer = outer
        self.front = front
        self.attempts = 1
        self.current = origin
        self.abandoned = False
        self.outcome: Optional[str] = None
        self.order = order
        self.enqueued_at: Optional[float] = None


class RecoveryManager:
    """Supervises jobs on one serving front (see module docstring)."""

    def __init__(self, config: Optional[RecoveryConfig] = None):
        self.config = config or RecoveryConfig()
        self.front = None
        self.sim = None
        self.health = HealthMonitor(on_transition=self._on_health_transition)
        self.breakers: Dict[str, CircuitBreaker] = {}
        self._supervisions: Dict[str, _Supervision] = {}
        self._pending: List[_Supervision] = []
        self._order = 0
        self._reset_event = None
        # Counters (all deterministic; exposed via report()).
        self.accepted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.sheds = 0
        # reason ("admission" | "displaced") -> count; sums to sheds.
        self.sheds_by_reason: Dict[str, int] = {}
        self.breaker_rejections = 0
        self.failovers = 0
        self.rollbacks = 0
        self.rollback_residue = 0.0
        self.device_crashes = 0
        self.device_resets = 0
        self.dispatched_from_queue = 0
        self.max_pending_seen = 0

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach(self, front) -> "RecoveryManager":
        """Wire this manager into ``front``'s submit/cancel path.

        ``front`` is a single :class:`ModelServer` or a
        :class:`MultiGpuServer`; in the cluster case each worker server
        reports lifecycle events here while the cluster front routes
        admission.
        """
        if self.front is not None:
            raise RuntimeError("RecoveryManager is already attached")
        self.front = front
        self.sim = front.sim
        front.recovery = self
        workers = getattr(front, "workers", None)
        if workers is None:
            front.recovery_observer = self
        else:
            for worker in workers:
                worker.server.recovery_observer = self
        return self

    # ------------------------------------------------------------------
    # Admission & supervision
    # ------------------------------------------------------------------

    def supervise(self, front, job: Job):
        """Admit ``job`` and return its supervised completion event."""
        now = self.sim.now
        breaker = self._breaker_for(job.model_name)
        if breaker is not None and not breaker.admit(now):
            self.breaker_rejections += 1
            raise ModelUnavailable(
                job.model_name,
                retry_after=breaker.retry_after(now),
                state=breaker.state,
            )
        sup = _Supervision(job, self.sim.event(), front, self._order)
        self._order += 1
        brownout = self.config.brownout
        if brownout is not None and front.active_jobs >= brownout.max_active:
            try:
                self._enqueue(sup, now)
            except JobShed:
                if breaker is not None:
                    breaker.abort_probe()
                raise
            return sup.outer
        self._supervisions[job.job_id] = sup
        self.accepted += 1
        try:
            self._launch(sup)
        except GpuOutOfMemory:
            # Rejected at admission (capacity, or injected OOM): the
            # job was never accepted, so undo the supervision and let
            # the client's retry classification see the raw error.
            del self._supervisions[job.job_id]
            self.accepted -= 1
            if breaker is not None:
                breaker.record_failure(now)
            self._health_check()
            raise
        return sup.outer

    def _launch(self, sup: _Supervision) -> None:
        job = sup.current
        inner = self._server_submit(sup.front, job)
        self.sim.process(self._watch(sup, inner), name=f"recovery:{job.job_id}")

    def _server_submit(self, front, job: Job):
        return front._submit(job)

    # ------------------------------------------------------------------
    # Brownout pending queue
    # ------------------------------------------------------------------

    def _enqueue(self, sup: _Supervision, now: float) -> None:
        brownout = self.config.brownout
        pending = self._pending
        if len(pending) >= brownout.max_pending:
            victim = self._shed_victim(pending, sup, now)
            if victim is sup:
                self.sheds += 1
                self.sheds_by_reason["admission"] = (
                    self.sheds_by_reason.get("admission", 0) + 1
                )
                self._emit(
                    "job.shed",
                    job_id=sup.origin.job_id,
                    reason="admission",
                    pending=len(pending),
                )
                self._health_check()
                raise JobShed(
                    sup.origin.job_id,
                    "pending queue full (lowest slack)",
                    retry_after=brownout.shed_retry_after,
                )
            pending.remove(victim)
            self._shed_queued(victim)
        pending.append(sup)
        if len(pending) > self.max_pending_seen:
            self.max_pending_seen = len(pending)
        sup.enqueued_at = now
        self._supervisions[sup.origin.job_id] = sup
        self.accepted += 1
        self._health_check()

    def _shed_victim(
        self, pending: List[_Supervision], arriving: _Supervision, now: float
    ) -> _Supervision:
        """Lowest slack loses; equal slack sheds the newest arrival."""
        victim = arriving
        victim_slack = self._slack(arriving, now)
        for sup in pending:
            slack = self._slack(sup, now)
            # Strict < : on ties the later-ordered candidate (the
            # arriving job has the highest order) stays the victim.
            if slack < victim_slack or (
                slack == victim_slack and sup.order > victim.order
            ):
                victim = sup
                victim_slack = slack
        return victim

    @staticmethod
    def _slack(sup: _Supervision, now: float) -> float:
        deadline = sup.origin.deadline
        return float("inf") if deadline is None else deadline - now

    def _shed_queued(self, sup: _Supervision) -> None:
        """Displace an already-accepted pending job (brownout tier 1)."""
        brownout = self.config.brownout
        job = sup.origin
        self.sheds += 1
        self.sheds_by_reason["displaced"] = (
            self.sheds_by_reason.get("displaced", 0) + 1
        )
        sup.outcome = "shed"
        self.failed += 1
        self._emit(
            "job.shed",
            job_id=job.job_id,
            reason="displaced",
            pending=len(self._pending),
        )
        cause = JobShed(
            job.job_id,
            "displaced from pending queue (lowest slack)",
            retry_after=brownout.shed_retry_after,
        )
        sup.outer.fail(JobFailed(job.job_id, 0, job.graph.num_nodes, cause=cause))

    def _dispatch_pending(self) -> None:
        """Launch queued jobs while capacity and a live device exist."""
        brownout = self.config.brownout
        if brownout is None or not self._pending:
            return
        front = self.front
        while (
            self._pending
            and front.active_jobs < brownout.max_active
            and self._has_target(front)
        ):
            sup = self._pending.pop(self._next_pending_index())
            self.dispatched_from_queue += 1
            try:
                self._launch(sup)
            except GpuOutOfMemory as exc:
                job = sup.current
                sup.outcome = "failed"
                self.failed += 1
                sup.outer.fail(
                    JobFailed(job.job_id, 0, job.graph.num_nodes, cause=exc)
                )

    def _next_pending_index(self) -> int:
        """Earliest deadline first; no-deadline jobs after, in FIFO."""
        best = 0
        best_key: Optional[Tuple[float, int]] = None
        for index, sup in enumerate(self._pending):
            deadline = sup.origin.deadline
            key = (
                float("inf") if deadline is None else deadline,
                sup.order,
            )
            if best_key is None or key < best_key:
                best = index
                best_key = key
        return best

    # ------------------------------------------------------------------
    # Attempt supervision & failover
    # ------------------------------------------------------------------

    def _watch(self, sup: _Supervision, inner):
        """Process body: drive one supervision to its terminal outcome."""
        while True:
            try:
                value = yield inner
            except JobCancelled as exc:
                sup.outcome = "cancelled"
                self.cancelled += 1
                sup.outer.fail(exc)
                return
            except JobFailed as exc:
                now = self.sim.now
                breaker = self._breaker_for(sup.origin.model_name)
                if breaker is not None:
                    breaker.record_failure(now)
                if self._should_failover(sup, exc):
                    inner = yield from self._failover(sup)
                    if inner is None:
                        # The supervision reached a terminal state
                        # inside _failover (cancelled mid-wait, or the
                        # resubmission itself was rejected).
                        return
                    continue
                sup.outcome = "failed"
                self.failed += 1
                sup.outer.fail(exc)
                self._health_check()
                return
            else:
                breaker = self._breaker_for(sup.origin.model_name)
                if breaker is not None:
                    breaker.record_success(self.sim.now)
                sup.outcome = "ok"
                self.completed += 1
                sup.outer.succeed(value)
                self._health_check()
                return

    def _should_failover(self, sup: _Supervision, exc: JobFailed) -> bool:
        return (
            self.config.failover
            and isinstance(exc.cause, DeviceCrashed)
            and not sup.abandoned
            and sup.attempts <= self.config.max_failovers
        )

    def _failover(self, sup: _Supervision):
        """Roll back the dead attempt, wait for a target, replay."""
        dead = sup.current
        scheduler = self._server_of(sup.front, dead).scheduler
        residue = scheduler.rollback(dead)
        self.rollbacks += 1
        self.rollback_residue += residue
        while not self._has_target(sup.front):
            yield self._reset_barrier()
        if sup.abandoned:
            sup.outcome = "cancelled"
            self.cancelled += 1
            sup.outer.fail(
                JobCancelled(
                    sup.origin.job_id, 0, sup.origin.graph.num_nodes
                )
            )
            return None
        origin = sup.origin
        clone = Job(
            self.sim,
            origin.client_id,
            origin.graph,
            origin.batch_size,
            weight=origin.weight,
            priority=origin.priority,
            deadline=origin.deadline,
            job_id=f"{origin.job_id}~f{sup.attempts}",
        )
        clone.batch_span_id = origin.batch_span_id
        sup.attempts += 1
        sup.current = clone
        self.failovers += 1
        self._emit(
            "job.failed_over",
            job_id=origin.job_id,
            new_job_id=clone.job_id,
            attempt=sup.attempts,
            residue=residue,
        )
        try:
            inner = self._server_submit(sup.front, clone)
        except GpuOutOfMemory as exc:
            sup.outcome = "failed"
            self.failed += 1
            sup.outer.fail(
                JobFailed(clone.job_id, 0, clone.graph.num_nodes, cause=exc)
            )
            self._health_check()
            return None
        return inner

    def _reset_barrier(self):
        """Event that fires at the next device reset (shared, re-armed)."""
        if self._reset_event is None or self._reset_event.triggered:
            self._reset_event = self.sim.event()
        return self._reset_event

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------

    def cancel(self, job: Job) -> bool:
        """Cancel a supervised request (called via ``front.cancel``)."""
        sup = self._supervisions.get(job.job_id)
        if sup is None or sup.outer.triggered or sup.abandoned:
            return False
        sup.abandoned = True
        if sup in self._pending:
            # Never launched: fail the outer event directly.
            self._pending.remove(sup)
            sup.outcome = "cancelled"
            self.cancelled += 1
            sup.outer.fail(
                JobCancelled(job.job_id, 0, job.graph.num_nodes)
            )
            self._health_check()
            return True
        # Cancel the live attempt; if the attempt already died (e.g.
        # the watcher is parked waiting for a reset), the abandoned
        # flag makes _failover surface JobCancelled instead of
        # replaying.
        self._server_of(sup.front, sup.current)._cancel(sup.current)
        return True

    # ------------------------------------------------------------------
    # Lifecycle callbacks (from ModelServer seams)
    # ------------------------------------------------------------------

    def on_job_finished(self, server) -> None:
        """An attempt finished on ``server``: capacity may have freed."""
        self._dispatch_pending()
        self._health_check()

    def on_device_crashed(self, server, reset_latency: float) -> None:
        self.device_crashes += 1
        self._health_check()

    def on_device_reset(self, server) -> None:
        self.device_resets += 1
        if self._reset_event is not None and not self._reset_event.triggered:
            self._reset_event.succeed(None)
        self._dispatch_pending()
        self._health_check()

    # ------------------------------------------------------------------
    # Topology helpers (duck-typed over single- and multi-GPU fronts)
    # ------------------------------------------------------------------

    def _server_of(self, front, job: Job):
        workers = getattr(front, "workers", None)
        if workers is None:
            return front
        return front.worker_of(job).server

    def _has_target(self, front) -> bool:
        workers = getattr(front, "workers", None)
        if workers is None:
            return not front.device.down
        return any(not worker.server.device.down for worker in workers)

    def _device_counts(self) -> Tuple[int, int]:
        front = self.front
        workers = getattr(front, "workers", None)
        if workers is None:
            return (1 if front.device.down else 0), 1
        down = sum(1 for worker in workers if worker.server.device.down)
        return down, len(workers)

    def _telemetry(self):
        return getattr(self.front, "telemetry", None)

    def _emit(self, kind: str, **attrs: Any) -> None:
        telemetry = self._telemetry()
        if telemetry is not None:
            telemetry.emit(kind, "recovery", **attrs)

    # ------------------------------------------------------------------
    # Breakers & health
    # ------------------------------------------------------------------

    def _breaker_for(self, model: str) -> Optional[CircuitBreaker]:
        if self.config.breaker is None:
            return None
        breaker = self.breakers.get(model)
        if breaker is None:
            breaker = CircuitBreaker(
                model, self.config.breaker,
                on_transition=self._on_breaker_transition,
            )
            self.breakers[model] = breaker
        return breaker

    def _on_breaker_transition(
        self, breaker: CircuitBreaker, old: str, new: str, now: float
    ) -> None:
        self._emit("breaker.state", model=breaker.model, old=old, new=new)
        self._health_check()

    def _on_health_transition(self, old: str, new: str, now: float) -> None:
        devices_down, devices_total = self._device_counts()
        self._emit(
            "health.state",
            old=old,
            new=new,
            devices_down=devices_down,
            devices_total=devices_total,
            pending=len(self._pending),
        )

    def _health_check(self) -> str:
        devices_down, devices_total = self._device_counts()
        breakers_open = sum(
            1 for breaker in self.breakers.values() if breaker.state == "open"
        )
        return self.health.evaluate(
            self.sim.now,
            devices_down,
            devices_total,
            breakers_open,
            len(self._pending),
        )

    # ------------------------------------------------------------------
    # Introspection & SLA checks
    # ------------------------------------------------------------------

    @property
    def pending_depth(self) -> int:
        return len(self._pending)

    def unterminated(self) -> List[str]:
        """Accepted jobs whose outer event never reached a terminal
        state — the recovery SLA requires this to be empty after every
        run."""
        return sorted(
            job_id
            for job_id, sup in self._supervisions.items()
            if not sup.outer.triggered
        )

    def rolled_back_leaks(self) -> List[str]:
        """Failed-over attempts whose accumulator was not cleared."""
        leaks: List[str] = []
        for sup in self._supervisions.values():
            if sup.attempts > 1 and sup.current is not sup.origin:
                if sup.origin.cumulated_cost != 0.0:
                    leaks.append(sup.origin.job_id)
        return sorted(leaks)

    def report(self) -> Dict[str, Any]:
        """Deterministic summary (stable key order, sim-derived values)."""
        return {
            "accepted": self.accepted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "sheds": self.sheds,
            "sheds_by_reason": {
                reason: self.sheds_by_reason[reason]
                for reason in sorted(self.sheds_by_reason)
            },
            "breaker_rejections": self.breaker_rejections,
            "breaker_trips": sum(
                breaker.trips for breaker in self.breakers.values()
            ),
            "breaker_states": {
                model: self.breakers[model].state
                for model in sorted(self.breakers)
            },
            "failovers": self.failovers,
            "rollbacks": self.rollbacks,
            "rollback_residue": self.rollback_residue,
            "device_crashes": self.device_crashes,
            "device_resets": self.device_resets,
            "dispatched_from_queue": self.dispatched_from_queue,
            "max_pending_seen": self.max_pending_seen,
            "pending": len(self._pending),
            "health": self.health.state,
            "health_transitions": [
                [time, old, new]
                for time, old, new in self.health.transitions
            ],
            "unterminated": self.unterminated(),
        }
