"""Olympian reproduction: fair GPU time-slicing for DNN model serving.

A full-system reproduction of "Olympian: Scheduling GPU Usage in a Deep
Neural Network Model Serving System" (Middleware 2018) on a
deterministic discrete-event simulated substrate.

Layers (bottom-up):

* :mod:`repro.sim` — discrete-event simulation kernel
* :mod:`repro.graph` — dataflow-graph framework (the TensorFlow analogue)
* :mod:`repro.zoo` — synthetic models calibrated to the paper's Table 2
* :mod:`repro.gpu` / :mod:`repro.host` — GPU + host hardware models
* :mod:`repro.serving` — the TF-Serving clone (Algorithm 1)
* :mod:`repro.core` — Olympian: profiler, scheduler, policies (Algorithm 2)
* :mod:`repro.metrics` / :mod:`repro.workloads` / :mod:`repro.experiments`
  — measurement, workload construction, and one entry point per paper
  table/figure
* :mod:`repro.cluster` / :mod:`repro.slo` / :mod:`repro.analysis` —
  future-work extensions: multi-GPU serving, SLO admission control,
  and trace/timeline tooling
* :mod:`repro.faults` — deterministic fault injection + invariants
* :mod:`repro.lint` — determinism & concurrency static analysis (the
  ``repro lint`` CI gate)
"""

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "analysis",
    "cluster",
    "core",
    "experiments",
    "faults",
    "gpu",
    "graph",
    "host",
    "lint",
    "metrics",
    "serving",
    "sim",
    "slo",
    "workloads",
    "zoo",
]
