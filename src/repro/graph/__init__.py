"""Dataflow-graph framework: the TensorFlow analogue.

Provides graphs of placed, costed operations plus the cost-model API
Olympian's profiler consumes.
"""

from .builder import GraphBuilder
from .costmodel import (
    DEFAULT_COST_NOISE,
    DEFAULT_INSTRUMENTATION_COST,
    CostModel,
    NodeCostProfile,
)
from .graph import Graph, GraphValidationError
from .node import DurationModel, Node
from .ops import OP_CATALOG, Device, OpType, op_by_name
from .serialize import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_graph,
    save_profile,
)

__all__ = [
    "GraphBuilder",
    "CostModel",
    "NodeCostProfile",
    "DEFAULT_COST_NOISE",
    "DEFAULT_INSTRUMENTATION_COST",
    "Graph",
    "GraphValidationError",
    "DurationModel",
    "Node",
    "Device",
    "OpType",
    "OP_CATALOG",
    "op_by_name",
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "profile_to_dict",
    "profile_from_dict",
    "save_profile",
    "load_profile",
]
