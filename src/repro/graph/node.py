"""Graph nodes and their duration models.

A :class:`Node` is the unit at which Olympian interleaves DNNs (paper
§3.1: "we interleave DNNs at the granularity of a Tensorflow node").
Every node carries a :class:`DurationModel` that maps batch size to true
execution duration; the cost model observes these durations with noise
and inflation (see :mod:`repro.graph.costmodel`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .ops import Device, OpType

__all__ = ["DurationModel", "Node"]


@dataclass(frozen=True)
class DurationModel:
    """Linear duration-vs-batch model: ``duration(b) = fixed + slope * b``.

    This linearity is a *property of the workload*, not an assumption of
    Olympian: the paper exploits it only in §4.4 (Figure 20) where node
    costs at unprofiled batch sizes are estimated by linear regression.
    Durations are in seconds.
    """

    fixed: float
    slope: float

    def __post_init__(self):
        if self.fixed < 0 or self.slope < 0:
            raise ValueError(f"negative duration model: {self}")

    def duration(self, batch_size: int) -> float:
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1: {batch_size}")
        return self.fixed + self.slope * batch_size

    @classmethod
    def from_reference(
        cls, duration_at_ref: float, ref_batch: int, batch_scaling: float
    ) -> "DurationModel":
        """Build a model from a duration at a reference batch size.

        ``batch_scaling`` is the fraction of the reference duration that
        scales with batch (from the op archetype).
        """
        if duration_at_ref < 0:
            raise ValueError(f"negative duration: {duration_at_ref}")
        scaling_part = duration_at_ref * batch_scaling
        return cls(
            fixed=duration_at_ref - scaling_part,
            slope=scaling_part / ref_batch,
        )


class Node:
    """A single operation in a dataflow graph.

    Children are dependency successors: a child becomes *ready* once all
    of its parents have executed.  GPU nodes are dispatched
    asynchronously by the serving loop (Algorithm 1).
    """

    __slots__ = (
        "node_id",
        "name",
        "op",
        "duration_model",
        "children",
        "num_parents",
    )

    def __init__(
        self,
        node_id: int,
        name: str,
        op: OpType,
        duration_model: DurationModel,
    ):
        self.node_id = node_id
        self.name = name
        self.op = op
        self.duration_model = duration_model
        self.children: List["Node"] = []
        self.num_parents = 0

    @property
    def device(self) -> Device:
        return self.op.device

    @property
    def is_gpu(self) -> bool:
        return self.op.device is Device.GPU

    @property
    def is_async(self) -> bool:
        """Whether the serving loop hands this node to a fresh thread."""
        return self.op.is_async

    def duration(self, batch_size: int) -> float:
        """True execution duration at ``batch_size``, in seconds."""
        return self.duration_model.duration(batch_size)

    def add_child(self, child: "Node") -> None:
        self.children.append(child)
        child.num_parents += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Node({self.node_id}, {self.name!r}, op={self.op.name}, "
            f"device={self.op.device.value})"
        )
