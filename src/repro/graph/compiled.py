"""Compiled per-(graph, batch) execution schedules — the replay fast path.

A session normally re-walks the DAG node-by-node, asking each
:class:`~repro.graph.node.Node` for its device and its duration model's
cost at the job's batch size on every execution.  Those answers never
change within a run: for a fixed ``(graph, batch_size)`` pair the
per-node cost sequence is a pure function of the graph.  This module
precomputes that schedule once into flat ``node_id``-indexed arrays so
the hot serving loop (:mod:`repro.serving.session`) replays it with
list indexing instead of attribute chains and duration-model calls.

The compiled form is purely an evaluation cache — it changes no
observable behaviour.  ``ServerConfig(compiled=False)`` selects the
original object-walking path, which doubles as the determinism oracle:
``faults.determinism.trace_digest`` must be bit-identical between the
two (see ``tests/serving/test_compiled.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from .node import Node

if TYPE_CHECKING:  # pragma: no cover
    from .graph import Graph

__all__ = ["CompiledGraph", "compile_graph"]


class CompiledGraph:
    """Flat, ``node_id``-indexed replay schedule for one batch size.

    Attributes
    ----------
    nodes:
        ``node_id -> Node`` (``None`` for unused ids); scheduler hooks
        still receive the real node object.
    is_gpu:
        ``node_id -> bool`` device flag (replaces a three-attribute
        property chain per visit).
    durations:
        ``node_id -> float`` solo cost at ``batch_size`` — exactly
        ``node.duration(batch_size)``, precomputed.
    num_parents:
        ``node_id -> int`` in-degree; sessions copy this list as their
        dependency countdown instead of rebuilding it per job.
    children_ids:
        ``node_id -> tuple of child node ids`` in declaration order
        (the order drives thread fan-out, so it must match the
        reference walk).
    durations_np:
        The ``durations`` list as a float64 array, for vectorised
        consumers (planners, benchmarks).  The hot replay loop keeps
        indexing the plain list — CPython scalar indexing of a list
        beats numpy scalar extraction.
    total_duration / total_gpu_duration / total_cpu_duration:
        Aggregate solo costs at this batch size, computed in one
        vectorised pass at compile time instead of per-job loops.
    """

    __slots__ = (
        "graph_name",
        "batch_size",
        "num_nodes",
        "root_id",
        "nodes",
        "is_gpu",
        "durations",
        "num_parents",
        "children_ids",
        "durations_np",
        "total_duration",
        "total_gpu_duration",
        "total_cpu_duration",
    )

    def __init__(self, graph: "Graph", batch_size: int):
        self.graph_name = graph.name
        self.batch_size = batch_size
        self.num_nodes = graph.num_nodes
        self.root_id = graph.root.node_id
        size = max(node.node_id for node in graph.nodes) + 1
        nodes: List[Optional[Node]] = [None] * size
        is_gpu = [False] * size
        durations = [0.0] * size
        num_parents = [0] * size
        children_ids: List[Tuple[int, ...]] = [()] * size
        for node in graph.nodes:
            i = node.node_id
            nodes[i] = node
            is_gpu[i] = node.is_gpu
            durations[i] = node.duration(batch_size)
            num_parents[i] = node.num_parents
            children_ids[i] = tuple(child.node_id for child in node.children)
        self.nodes = nodes
        self.is_gpu = is_gpu
        self.durations = durations
        self.num_parents = num_parents
        self.children_ids = children_ids
        arr = np.asarray(durations, dtype=np.float64)
        gpu_mask = np.asarray(is_gpu, dtype=bool)
        self.durations_np = arr
        self.total_duration = float(arr.sum())
        self.total_gpu_duration = float(arr[gpu_mask].sum())
        self.total_cpu_duration = self.total_duration - self.total_gpu_duration

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CompiledGraph({self.graph_name!r}, batch={self.batch_size}, "
            f"nodes={self.num_nodes})"
        )


def compile_graph(graph: "Graph", batch_size: int) -> CompiledGraph:
    """Compile ``graph`` at ``batch_size``, caching on the graph object.

    The cache lives on the :class:`~repro.graph.graph.Graph` instance
    (one entry per batch size), so every job of a loaded model shares
    one schedule.
    """
    cache: Dict[int, CompiledGraph] = graph.__dict__.setdefault(
        "_compiled_cache", {}
    )
    compiled = cache.get(batch_size)
    if compiled is None:
        compiled = cache[batch_size] = CompiledGraph(graph, batch_size)
    return compiled
