"""Fluent construction API for dataflow graphs.

Used by the model zoo generators and directly by tests/examples to build
small hand-crafted graphs:

>>> from repro.graph import GraphBuilder
>>> b = GraphBuilder("tiny")
>>> root = b.add("input", "decode", duration=10e-6, ref_batch=100)
>>> conv = b.add("conv1", "conv2d", duration=500e-6, ref_batch=100,
...              parents=[root])
>>> out = b.add("softmax", "matmul", duration=50e-6, ref_batch=100,
...             parents=[conv])
>>> g = b.build()
>>> g.num_nodes
3
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .graph import Graph
from .node import DurationModel, Node
from .ops import OpType, op_by_name

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Incrementally assemble a :class:`Graph`."""

    def __init__(self, name: str):
        self.name = name
        self._nodes: List[Node] = []
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._nodes)

    def add(
        self,
        name: str,
        op: str,
        duration: float,
        ref_batch: int,
        parents: Optional[Sequence[Node]] = None,
        batch_scaling: Optional[float] = None,
    ) -> Node:
        """Add a node.

        Parameters
        ----------
        name:
            Human-readable node name.
        op:
            Op-catalogue name (see :mod:`repro.graph.ops`).
        duration:
            True duration in seconds at ``ref_batch``.
        ref_batch:
            Batch size at which ``duration`` holds.
        parents:
            Dependency predecessors (already-added nodes).
        batch_scaling:
            Override for the op archetype's batch-scaling fraction.
        """
        op_type: OpType = op_by_name(op)
        scaling = op_type.batch_scaling if batch_scaling is None else batch_scaling
        model = DurationModel.from_reference(duration, ref_batch, scaling)
        node = Node(self._next_id, name, op_type, model)
        self._next_id += 1
        self._nodes.append(node)
        for parent in parents or []:
            parent.add_child(node)
        return node

    def chain(
        self,
        prefix: str,
        op: str,
        durations: Sequence[float],
        ref_batch: int,
        parent: Node,
    ) -> Node:
        """Add a linear chain of nodes under ``parent``; return the tail."""
        tail = parent
        for i, duration in enumerate(durations):
            tail = self.add(
                f"{prefix}/{i}", op, duration, ref_batch, parents=[tail]
            )
        return tail

    def join(self, name: str, op: str, duration: float, ref_batch: int,
             parents: Sequence[Node]) -> Node:
        """Add a node that joins several branches."""
        if not parents:
            raise ValueError("join requires at least one parent")
        return self.add(name, op, duration, ref_batch, parents=parents)

    def build(self, root: Optional[Node] = None) -> Graph:
        """Validate and return the assembled graph."""
        return Graph(self.name, self._nodes, root=root)
