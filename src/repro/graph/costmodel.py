"""The cost-model API: our analogue of TensorFlow's cost profiler.

TensorFlow exposes (via the CUPTI-based cost profiler) a per-node *cost*
— an approximate measure of the resources a node needs.  Two properties
of that API drive Olympian's design and are reproduced here:

1. **Cost != duration.**  Summed node cost exceeds wall-clock GPU
   duration by an order of magnitude because overlapping nodes are each
   charged their full span (paper §4.4 measures total cost 4.06e6 ns vs
   GPU duration 2.63e5 ns for Inception-100).  We model this with a
   per-op ``cost_inflation`` factor.  Olympian only consumes the *ratio*
   ``C_j / D_j``, so any consistent inflation reproduces the accounting.

2. **Online profiling is expensive.**  Attaching the profiler to a live
   run adds per-node instrumentation work, inflating execution time by
   21-29 % (paper Figure 6).  We model this mechanistically as a fixed
   instrumentation cost per executed node, so the overhead a model sees
   depends on its node-count-to-runtime ratio — exactly the spread the
   paper observes across the seven DNNs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..sim.rng import derive_seed
from .graph import Graph
from .node import Node

__all__ = [
    "NodeCostProfile",
    "CostModel",
    "DEFAULT_COST_NOISE",
    "DEFAULT_INSTRUMENTATION_COST",
]

# Relative std-dev of per-node cost measurements.  The paper's stability
# experiment (§4.4) finds total-cost std/mean of about 2.5 %.
DEFAULT_COST_NOISE = 0.025

# Per-node instrumentation cost (seconds) when the profiler runs online.
# Calibrated so the seven paper models land in the 21-29 % overhead band
# of Figure 6 given their Table 2 node counts and runtimes.
DEFAULT_INSTRUMENTATION_COST = 13e-6


@dataclass
class NodeCostProfile:
    """Per-node costs for one (model, batch size) pair.

    Costs are in abstract cost units (inflated seconds).  ``total_cost``
    is the paper's ``C_j``.
    """

    model_name: str
    batch_size: int
    node_costs: Dict[int, float] = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return sum(self.node_costs.values())

    def cost(self, node_id: int) -> float:
        """Cost of one node; unprofiled nodes cost zero (CPU nodes)."""
        return self.node_costs.get(node_id, 0.0)

    def scaled(self, factor: float) -> "NodeCostProfile":
        """A copy with every cost multiplied by ``factor``."""
        return NodeCostProfile(
            self.model_name,
            self.batch_size,
            {nid: c * factor for nid, c in self.node_costs.items()},
        )


class CostModel:
    """Produces :class:`NodeCostProfile` objects for graphs.

    ``measure`` mimics what an instrumented run would report: per-node
    true duration, multiplied by the op's cost inflation, perturbed by
    measurement noise.  Separate calls with the same rng state differ,
    matching run-to-run profiler variation.
    """

    def __init__(
        self,
        noise: float = DEFAULT_COST_NOISE,
        instrumentation_cost: float = DEFAULT_INSTRUMENTATION_COST,
    ):
        if noise < 0:
            raise ValueError(f"noise must be non-negative: {noise}")
        if instrumentation_cost < 0:
            raise ValueError(
                f"instrumentation cost must be non-negative: {instrumentation_cost}"
            )
        self.noise = noise
        self.instrumentation_cost = instrumentation_cost

    def node_cost(self, node: Node, batch_size: int, rng: random.Random) -> float:
        """One noisy cost observation for a single node."""
        true_cost = node.duration(batch_size) * node.op.cost_inflation
        if self.noise == 0.0:
            return true_cost
        observed = true_cost * (1.0 + rng.gauss(0.0, self.noise))
        return max(observed, 0.0)

    def measure(
        self,
        graph: Graph,
        batch_size: int,
        rng: Optional[random.Random] = None,
        gpu_only: bool = True,
    ) -> NodeCostProfile:
        """Profile every node of ``graph`` at ``batch_size``.

        ``gpu_only`` restricts the profile to GPU nodes, which is what
        Olympian's accounting consumes (Algorithm 2 accumulates cost only
        for GPU nodes).
        """
        if rng is None:
            rng = random.Random(derive_seed(0, "costmodel:measure"))
        profile = NodeCostProfile(graph.name, batch_size)
        for node in graph.nodes:
            if gpu_only and not node.is_gpu:
                continue
            profile.node_costs[node.node_id] = self.node_cost(node, batch_size, rng)
        return profile

    def online_slowdown(self, node: Node, batch_size: int) -> float:
        """Extra execution time a node pays under *online* profiling."""
        del node, batch_size  # instrumentation cost is per node executed
        return self.instrumentation_cost

    def exact(self, graph: Graph, batch_size: int, gpu_only: bool = True) -> NodeCostProfile:
        """Noise-free profile (useful for analytical tests)."""
        profile = NodeCostProfile(graph.name, batch_size)
        for node in graph.nodes:
            if gpu_only and not node.is_gpu:
                continue
            profile.node_costs[node.node_id] = (
                node.duration(batch_size) * node.op.cost_inflation
            )
        return profile
