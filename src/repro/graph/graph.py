"""The dataflow graph: a validated DAG of :class:`~repro.graph.node.Node`.

This is the unit a model server loads and a session executes.  The
class provides the structural queries Olympian and the experiments need:
node counts by device, topological order, per-batch duration totals, and
DAG validation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional

from .node import Node
from .ops import Device

__all__ = ["Graph", "GraphValidationError"]


class GraphValidationError(Exception):
    """Raised when a graph fails structural validation."""


class Graph:
    """A rooted DAG of operations for one model.

    Parameters
    ----------
    name:
        Model identifier (e.g. ``"inception_v4"``).
    nodes:
        All nodes; the first node whose ``num_parents`` is zero is the
        root unless ``root`` is given explicitly.
    """

    def __init__(self, name: str, nodes: List[Node], root: Optional[Node] = None):
        if not nodes:
            raise GraphValidationError("graph has no nodes")
        self.name = name
        self.nodes = nodes
        self._by_id: Dict[int, Node] = {}
        for node in nodes:
            if node.node_id in self._by_id:
                raise GraphValidationError(
                    f"duplicate node id {node.node_id} in graph {name!r}"
                )
            self._by_id[node.node_id] = node
        if root is None:
            roots = [n for n in nodes if n.num_parents == 0]
            if len(roots) != 1:
                raise GraphValidationError(
                    f"graph {name!r} must have exactly one root, found {len(roots)}"
                )
            root = roots[0]
        self.root = root
        self.validate()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        return self._by_id[node_id]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_gpu_nodes(self) -> int:
        return sum(1 for n in self.nodes if n.is_gpu)

    @property
    def num_cpu_nodes(self) -> int:
        return self.num_nodes - self.num_gpu_nodes

    def nodes_on(self, device: Device) -> List[Node]:
        return [n for n in self.nodes if n.device is device]

    def validate(self) -> None:
        """Check the graph is a connected DAG with consistent in-degrees.

        Raises :class:`GraphValidationError` on any violation.
        """
        indegree = {n.node_id: 0 for n in self.nodes}
        for node in self.nodes:
            for child in node.children:
                if child.node_id not in self._by_id:
                    raise GraphValidationError(
                        f"edge to unknown node {child.node_id} in {self.name!r}"
                    )
                indegree[child.node_id] += 1
        for node in self.nodes:
            if indegree[node.node_id] != node.num_parents:
                raise GraphValidationError(
                    f"node {node.node_id} num_parents={node.num_parents} "
                    f"but in-degree is {indegree[node.node_id]}"
                )
        if indegree[self.root.node_id] != 0:
            raise GraphValidationError("root node has parents")
        # Kahn's algorithm doubles as cycle + reachability check.
        order = list(self.topological_order())
        if len(order) != len(self.nodes):
            raise GraphValidationError(
                f"graph {self.name!r} has a cycle or unreachable nodes "
                f"({len(order)} of {len(self.nodes)} orderable)"
            )

    def topological_order(self) -> Iterator[Node]:
        """Yield nodes in a topological order (Kahn's algorithm)."""
        indegree = {n.node_id: n.num_parents for n in self.nodes}
        ready = deque(n for n in self.nodes if indegree[n.node_id] == 0)
        while ready:
            node = ready.popleft()
            yield node
            for child in node.children:
                indegree[child.node_id] -= 1
                if indegree[child.node_id] == 0:
                    ready.append(child)

    def compiled(self, batch_size: int):
        """Flat replay schedule at ``batch_size`` (cached per batch).

        See :mod:`repro.graph.compiled`; used by the serving fast path.
        """
        from .compiled import compile_graph

        return compile_graph(self, batch_size)

    def depth(self) -> int:
        """Longest path length (in nodes) from root to any sink."""
        depth: Dict[int, int] = {}
        longest = 0
        for node in self.topological_order():
            d = depth.get(node.node_id, 1)
            longest = max(longest, d)
            for child in node.children:
                if depth.get(child.node_id, 0) < d + 1:
                    depth[child.node_id] = d + 1
        return longest

    # ------------------------------------------------------------------
    # Duration aggregates
    # ------------------------------------------------------------------

    def total_duration(self, batch_size: int, device: Optional[Device] = None) -> float:
        """Sum of node durations at ``batch_size``, optionally per device.

        On a serial GPU stream this equals the solo GPU duration ``D_j``
        of the paper for ``device=Device.GPU``.
        """
        return sum(
            n.duration(batch_size)
            for n in self.nodes
            if device is None or n.device is device
        )

    def gpu_duration(self, batch_size: int) -> float:
        """Solo GPU duration ``D_j`` at ``batch_size`` (serial stream)."""
        return self.total_duration(batch_size, Device.GPU)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Graph({self.name!r}, nodes={self.num_nodes}, "
            f"gpu_nodes={self.num_gpu_nodes})"
        )
