"""JSON round-trip for graphs and cost profiles.

Olympian's profiler runs offline and its output must be persisted and
reloaded by the serving system; this module is that storage layer.
Graphs themselves can also be exported, which the examples use to show
model inventories.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from .costmodel import NodeCostProfile
from .graph import Graph
from .node import DurationModel, Node
from .ops import op_by_name

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "profile_to_dict",
    "profile_from_dict",
    "save_profile",
    "load_profile",
]

_PathLike = Union[str, Path]


def graph_to_dict(graph: Graph) -> Dict[str, Any]:
    """Serialise a graph to a JSON-compatible dict."""
    return {
        "name": graph.name,
        "root": graph.root.node_id,
        "nodes": [
            {
                "id": node.node_id,
                "name": node.name,
                "op": node.op.name,
                "fixed": node.duration_model.fixed,
                "slope": node.duration_model.slope,
                "children": [child.node_id for child in node.children],
            }
            for node in graph.nodes
        ],
    }


def graph_from_dict(data: Dict[str, Any]) -> Graph:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    nodes: Dict[int, Node] = {}
    for entry in data["nodes"]:
        nodes[entry["id"]] = Node(
            entry["id"],
            entry["name"],
            op_by_name(entry["op"]),
            DurationModel(entry["fixed"], entry["slope"]),
        )
    for entry in data["nodes"]:
        parent = nodes[entry["id"]]
        for child_id in entry["children"]:
            parent.add_child(nodes[child_id])
    ordered = [nodes[entry["id"]] for entry in data["nodes"]]
    return Graph(data["name"], ordered, root=nodes[data["root"]])


def save_graph(graph: Graph, path: _PathLike) -> None:
    Path(path).write_text(json.dumps(graph_to_dict(graph)))


def load_graph(path: _PathLike) -> Graph:
    return graph_from_dict(json.loads(Path(path).read_text()))


def profile_to_dict(profile: NodeCostProfile) -> Dict[str, Any]:
    return {
        "model_name": profile.model_name,
        "batch_size": profile.batch_size,
        "node_costs": {str(k): v for k, v in profile.node_costs.items()},
    }


def profile_from_dict(data: Dict[str, Any]) -> NodeCostProfile:
    return NodeCostProfile(
        data["model_name"],
        data["batch_size"],
        {int(k): v for k, v in data["node_costs"].items()},
    )


def save_profile(profile: NodeCostProfile, path: _PathLike) -> None:
    Path(path).write_text(json.dumps(profile_to_dict(profile)))


def load_profile(path: _PathLike) -> NodeCostProfile:
    return profile_from_dict(json.loads(Path(path).read_text()))
