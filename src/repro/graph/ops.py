"""Operation catalogue for the dataflow-graph framework.

Each :class:`OpType` describes an *archetype* of computation: which
device it prefers, how its duration scales with batch size, and how much
the cost-model number it reports is inflated relative to its true
duration (the TensorFlow cost model counts per-node wall time that
overlaps with other nodes, so summed *cost* exceeds wall-clock GPU
*duration* by an order of magnitude — paper §4.4 measures a ratio of
roughly 15x for Inception).

The catalogue is deliberately small: Olympian never inspects op
semantics, only placement and cost, so a handful of archetypes covering
the duration mixture of Figure 4 is sufficient.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict

__all__ = ["Device", "OpType", "OP_CATALOG", "op_by_name"]


class Device(Enum):
    """Placement of a node: host CPU or the accelerator."""

    CPU = "cpu"
    GPU = "gpu"


@dataclass(frozen=True)
class OpType:
    """An operation archetype.

    Attributes
    ----------
    name:
        Catalogue identifier (e.g. ``"conv2d"``).
    device:
        Preferred placement.
    batch_scaling:
        Fraction of the node's reference duration that scales linearly
        with batch size (the rest is fixed launch/setup work).  1.0 means
        perfectly data-parallel; 0.0 means batch-independent.
    cost_inflation:
        Multiplier applied by the cost model: the reported *cost* of the
        node is ``duration * cost_inflation`` (plus noise).  GPU ops that
        overlap heavily with neighbours have high inflation.
    is_async:
        Whether the serving loop dispatches the node on a fresh thread
        (Algorithm 1 line 11): true for GPU kernels.
    """

    name: str
    device: Device
    batch_scaling: float
    cost_inflation: float
    is_async: bool

    def __post_init__(self):
        if not 0.0 <= self.batch_scaling <= 1.0:
            raise ValueError(f"batch_scaling out of range: {self.batch_scaling}")
        if self.cost_inflation <= 0:
            raise ValueError(f"cost_inflation must be positive: {self.cost_inflation}")


# The archetypes: three GPU duration classes matching the Figure 4
# mixture (tiny element-wise ops, medium kernels, large convolutions)
# plus host-side ops.
OP_CATALOG: Dict[str, OpType] = {
    op.name: op
    for op in [
        # GPU ops.  Cost inflation is deliberately *similar* across op
        # types: the cost model's per-node number tracks the node's true
        # duration closely (it is wall time, just overlap-inflated), and
        # that tightness is what keeps Olympian's per-quantum GPU
        # durations within ~5-10 % of each other (paper Figure 14).
        OpType("elementwise", Device.GPU, 0.30, 15.5, True),
        OpType("pool", Device.GPU, 0.70, 15.0, True),
        OpType("matmul", Device.GPU, 0.90, 14.5, True),
        OpType("conv2d", Device.GPU, 0.95, 14.0, True),
        # CPU ops ------------------------------------------------------
        OpType("shape", Device.CPU, 0.00, 1.0, False),
        OpType("control", Device.CPU, 0.00, 1.0, False),
        OpType("decode", Device.CPU, 0.85, 1.0, False),
        OpType("concat_host", Device.CPU, 0.50, 1.0, False),
    ]
}


def op_by_name(name: str) -> OpType:
    """Look up an op archetype, raising ``KeyError`` with a useful list."""
    try:
        return OP_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(OP_CATALOG))
        raise KeyError(f"unknown op {name!r}; catalogue has: {known}")
