"""GPU kernels: the unit of work submitted to the simulated device.

A dataflow node that runs on the GPU invokes one (or a small number of)
kernels; the paper interleaves at the node boundary precisely because
the two granularities nearly coincide (§3.1).  We model one kernel per
GPU node.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim.core import Event, Simulator

__all__ = ["Kernel"]


class Kernel:
    """One unit of GPU work.

    Carries the identity of the job that launched it — information the
    real GPU driver does *not* use for scheduling (the root cause of
    TF-Serving's unpredictability) but which the simulator's metering
    needs for per-job interval accounting.
    """

    __slots__ = (
        "job_id",
        "node_id",
        "duration",
        "done",
        "submitted_at",
        "started_at",
        "finished_at",
        "tag",
        "seq",
        "stream",
    )

    def __init__(
        self,
        sim: Simulator,
        job_id: Any,
        node_id: int,
        duration: float,
        tag: Any = None,
    ):
        if duration < 0:
            raise ValueError(f"kernel duration negative: {duration}")
        self.job_id = job_id
        self.node_id = node_id
        self.duration = duration
        self.done: Event = sim.event()
        self.submitted_at: Optional[float] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.tag = tag
        # Per-job submission ordinal, stamped by the driver; telemetry
        # span ids (``kern:{job}#{seq}``) key off it.
        self.seq: int = 0
        # Compute stream the kernel executed on.  The serial engine
        # (streams=1) leaves it at 0; the multi-stream engine stamps
        # the assigned stream index at start.
        self.stream: int = 0

    @property
    def queue_delay(self) -> Optional[float]:
        """Time spent in the driver queue, once started."""
        if self.submitted_at is None or self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Kernel(job={self.job_id!r}, node={self.node_id}, "
            f"duration={self.duration:.2e})"
        )
