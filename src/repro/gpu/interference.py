"""Capacity-interference model for spatial GPU sharing.

When a device runs ``k`` kernels concurrently (``GpuSpec.streams > 1``),
they contend for SMs, memory bandwidth, and L2 — so each runs slower
than it would alone.  The model here is the calibrated one the
multi-stream engine (:meth:`~repro.gpu.device.GpuDevice._run_multi`)
charges:

* **Aggregate capacity** ``C(k) = 1 + (k - 1) * parallel_efficiency``
  — the device's total throughput with ``k`` resident kernels, in
  units of one solo kernel.  ``parallel_efficiency`` is the marginal
  throughput each extra kernel buys (a :class:`~repro.gpu.specs.GpuSpec`
  field).  ``C(1) = 1`` by construction; with efficiency 0 the device
  degenerates to time-slicing (``C(k) = 1``, the paper's §2.3 "two
  concurrent Inceptions take twice as long" regime), with efficiency 1
  it scales perfectly.
* **Per-kernel slowdown** ``s(k) = k / C(k)`` — capacity is shared
  equally (processor sharing), so each resident kernel progresses at
  rate ``1/s(k)`` of its solo rate.

Three properties fall out of the algebra, and the unit suite pins them:

* identity: ``s(1) == 1`` (one resident kernel runs at solo speed);
* monotonicity: ``s`` is non-decreasing in ``k`` (more neighbours never
  speed you up);
* capped throughput: ``C(k) <= k <= streams`` — the device never
  exceeds its spec capacity of ``streams`` solo-kernel units.
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import GpuSpec

__all__ = [
    "InterferenceModel",
    "aggregate_capacity",
    "kernel_slowdown",
]


def aggregate_capacity(occupancy: int, parallel_efficiency: float) -> float:
    """Total device throughput with ``occupancy`` resident kernels.

    In units of one solo kernel's throughput; ``0`` residents means an
    idle device with zero throughput.
    """
    if occupancy < 0:
        raise ValueError(f"occupancy must be >= 0: {occupancy}")
    if not 0.0 <= parallel_efficiency <= 1.0:
        raise ValueError(
            f"parallel_efficiency must be in [0, 1]: {parallel_efficiency}"
        )
    if occupancy == 0:
        return 0.0
    return 1.0 + (occupancy - 1) * parallel_efficiency


def kernel_slowdown(occupancy: int, parallel_efficiency: float) -> float:
    """Per-kernel slowdown factor with ``occupancy`` resident kernels.

    ``1.0`` at occupancy 1, rising towards ``1 / parallel_efficiency``
    as the device fills (``occupancy / aggregate_capacity``).
    """
    if occupancy < 1:
        raise ValueError(f"occupancy must be >= 1: {occupancy}")
    return occupancy / aggregate_capacity(occupancy, parallel_efficiency)


@dataclass(frozen=True)
class InterferenceModel:
    """The per-device view: spec-bound capacity and slowdown curves."""

    streams: int
    parallel_efficiency: float

    def __post_init__(self):
        if self.streams < 1:
            raise ValueError(f"streams must be >= 1: {self.streams}")
        if not 0.0 <= self.parallel_efficiency <= 1.0:
            raise ValueError(
                f"parallel_efficiency must be in [0, 1]: "
                f"{self.parallel_efficiency}"
            )

    @classmethod
    def from_spec(cls, spec: GpuSpec) -> "InterferenceModel":
        return cls(
            streams=spec.streams,
            parallel_efficiency=spec.parallel_efficiency,
        )

    def capacity(self, occupancy: int) -> float:
        """Aggregate throughput at ``occupancy``, capped by the spec."""
        if occupancy > self.streams:
            raise ValueError(
                f"occupancy {occupancy} exceeds {self.streams} streams"
            )
        return aggregate_capacity(occupancy, self.parallel_efficiency)

    def slowdown(self, occupancy: int) -> float:
        """Per-kernel slowdown at ``occupancy`` resident kernels."""
        if occupancy > self.streams:
            raise ValueError(
                f"occupancy {occupancy} exceeds {self.streams} streams"
            )
        return kernel_slowdown(occupancy, self.parallel_efficiency)

    def slowdown_table(self) -> dict:
        """``{occupancy: slowdown}`` over the device's full range."""
        return {k: self.slowdown(k) for k in range(1, self.streams + 1)}
