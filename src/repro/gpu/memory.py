"""GPU memory accounting.

The paper's scalability experiment (§4.3) finds both TF-Serving and
Olympian limited by device memory at roughly 45 concurrent clients on
the GTX 1080 Ti.  This module provides the allocator that enforces that
limit in the simulated server: each client session reserves its model's
footprint for its lifetime, and an allocation beyond capacity raises
:class:`GpuOutOfMemory`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

__all__ = ["GpuOutOfMemory", "MemoryPool"]


class GpuOutOfMemory(Exception):
    """Raised when an allocation would exceed device memory."""

    def __init__(self, requested_mb: int, free_mb: int):
        super().__init__(
            f"GPU out of memory: requested {requested_mb} MB, "
            f"only {free_mb} MB free"
        )
        self.requested_mb = requested_mb
        self.free_mb = free_mb


class MemoryPool:
    """Tracks per-owner reservations against device capacity."""

    def __init__(self, capacity_mb: int):
        if capacity_mb <= 0:
            raise ValueError(f"capacity must be positive: {capacity_mb}")
        self.capacity_mb = capacity_mb
        self._reservations: Dict[Any, int] = {}
        # Fault-injection seam: called as (owner, size_mb) before a
        # capacity check; returning an exception fails the allocation.
        self.fault_hook: Optional[
            Callable[[Any, int], Optional[Exception]]
        ] = None

    @property
    def used_mb(self) -> int:
        return sum(self._reservations.values())

    @property
    def free_mb(self) -> int:
        return self.capacity_mb - self.used_mb

    def allocate(self, owner: Any, size_mb: int) -> None:
        """Reserve ``size_mb`` for ``owner``; raises on exhaustion."""
        if size_mb < 0:
            raise ValueError(f"allocation size negative: {size_mb}")
        if owner in self._reservations:
            raise ValueError(f"owner {owner!r} already holds a reservation")
        if self.fault_hook is not None:
            fault = self.fault_hook(owner, size_mb)
            if fault is not None:
                raise fault
        if size_mb > self.free_mb:
            raise GpuOutOfMemory(size_mb, self.free_mb)
        self._reservations[owner] = size_mb

    def release(self, owner: Any) -> int:
        """Release the reservation held by ``owner``; returns its size."""
        try:
            return self._reservations.pop(owner)
        except KeyError:
            raise KeyError(f"owner {owner!r} holds no reservation")

    def holds(self, owner: Any) -> bool:
        return owner in self._reservations

    def fits(self, size_mb: int) -> bool:
        return size_mb <= self.free_mb
