"""Simulated GPU device specifications.

Two devices matching the paper's testbeds:

* **GTX 1080 Ti** — the primary platform (§3.5: i7-8700, 32 GB RAM).
* **Titan X** — the secondary platform used for the portability
  experiment (Figure 21: Xeon E5-2603 v4, 16 GB RAM).

``compute_scale`` multiplies kernel durations: the model zoo durations
are calibrated on the 1080 Ti, and the Titan X (Maxwell) is slower, so
the same workload takes proportionally longer — which is exactly the
effect Figure 21 shows (different absolute finish times, identical
fairness).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GpuSpec", "GTX_1080_TI", "TITAN_X", "GPU_SPECS"]


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a simulated GPU.

    Attributes
    ----------
    name:
        Marketing name.
    compute_scale:
        Kernel-duration multiplier relative to the calibration device.
    memory_mb:
        Device memory available for model clients.
    sm_count:
        Streaming multiprocessors (descriptive; the compute stream is
        serial for large-batch DNN kernels — see DESIGN.md §4.1).
    kernel_overhead:
        Fixed device-side cost per kernel dequeue/launch, seconds.
    clock_jitter:
        Relative std-dev of the device's effective clock across runs
        (thermal/boost state).  Drawn once per device instance; it is
        why repeated solo runs show a small GPU-duration spread
        (paper §4.4 measures ~1.7 % for the Titan-class parts).
    reset_latency:
        Profiled time, in simulated seconds, for the device to come
        back after a crash (driver re-init + context restore).  Used
        by ``device_crash`` fault injection and the failover logic in
        :mod:`repro.recovery` when no explicit reset duration is given.
    streams:
        Concurrent compute streams the device exposes.  ``1`` (the
        default, and the paper's model) is a strictly serial engine;
        ``N > 1`` enables spatial sharing with the capacity-interference
        model of :mod:`repro.gpu.interference` (see docs/SPATIAL.md).
    parallel_efficiency:
        Marginal throughput of each additional concurrent kernel,
        relative to the first (``0`` = concurrency buys nothing, ``1``
        = perfect scaling).  Calibrated against the paper's §2.3
        observation that two concurrent Inception jobs take ~2x as long
        as one on a saturated device; the default models a device with
        headroom (D-STACK-style fractional sharing).
    """

    name: str
    compute_scale: float
    memory_mb: int
    sm_count: int
    kernel_overhead: float = 1.5e-6
    clock_jitter: float = 0.012
    reset_latency: float = 5e-3
    streams: int = 1
    parallel_efficiency: float = 0.7

    def __post_init__(self):
        if self.clock_jitter < 0:
            raise ValueError(f"clock_jitter negative: {self.clock_jitter}")
        if not isinstance(self.streams, int) or self.streams < 1:
            raise ValueError(f"streams must be an integer >= 1: {self.streams}")
        if not 0.0 <= self.parallel_efficiency <= 1.0:
            raise ValueError(
                f"parallel_efficiency must be in [0, 1]: "
                f"{self.parallel_efficiency}"
            )
        if self.reset_latency <= 0:
            raise ValueError(f"reset_latency must be positive: {self.reset_latency}")
        if self.compute_scale <= 0:
            raise ValueError(f"compute_scale must be positive: {self.compute_scale}")
        if self.memory_mb <= 0:
            raise ValueError(f"memory_mb must be positive: {self.memory_mb}")
        if self.kernel_overhead < 0:
            raise ValueError(f"kernel_overhead negative: {self.kernel_overhead}")


GTX_1080_TI = GpuSpec(
    name="GeForce GTX 1080 Ti",
    compute_scale=1.0,
    memory_mb=11264,
    sm_count=28,
)

TITAN_X = GpuSpec(
    name="NVIDIA Titan X",
    compute_scale=1.35,
    memory_mb=12288,
    sm_count=24,
)

GPU_SPECS = {
    "gtx_1080_ti": GTX_1080_TI,
    "titan_x": TITAN_X,
}
