"""GPU power and energy estimation.

The paper flags power as unevaluated future work (§7.2: "power usage is
an important metric that was not evaluated").  This module provides the
standard first-order model used for such studies: device power is
``idle_watts`` when the compute engine is idle and ``busy_watts`` when
a kernel is executing, so energy over a window is::

    E = idle_watts * window + (busy_watts - idle_watts) * busy_time

which only needs the busy intervals the device already traces.
Vendor-book numbers for the paper's two devices are included.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.trace import busy_fraction
from .device import GPU_GLOBAL_KEY, GpuDevice

__all__ = ["PowerModel", "GTX_1080_TI_POWER", "TITAN_X_POWER", "energy_joules"]


@dataclass(frozen=True)
class PowerModel:
    """Two-state (idle/busy) device power model."""

    name: str
    idle_watts: float
    busy_watts: float

    def __post_init__(self):
        if self.idle_watts < 0:
            raise ValueError(f"idle_watts negative: {self.idle_watts}")
        if self.busy_watts < self.idle_watts:
            raise ValueError(
                f"busy_watts ({self.busy_watts}) below idle_watts "
                f"({self.idle_watts})"
            )

    def average_power(self, utilization: float) -> float:
        """Mean draw at a given busy fraction, watts."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization out of [0,1]: {utilization}")
        return self.idle_watts + (self.busy_watts - self.idle_watts) * utilization

    def energy(self, busy_time: float, window: float) -> float:
        """Energy in joules over ``window`` seconds with ``busy_time``
        seconds of kernel execution."""
        if window < 0 or busy_time < 0 or busy_time > window + 1e-12:
            raise ValueError(
                f"invalid busy/window pair: {busy_time} / {window}"
            )
        return (
            self.idle_watts * window
            + (self.busy_watts - self.idle_watts) * busy_time
        )


# Board-power figures from the vendor datasheets (idle measured values
# commonly reported for the parts).
GTX_1080_TI_POWER = PowerModel("GeForce GTX 1080 Ti", idle_watts=55.0,
                               busy_watts=250.0)
TITAN_X_POWER = PowerModel("NVIDIA Titan X", idle_watts=50.0, busy_watts=250.0)


def energy_joules(
    device: GpuDevice,
    model: PowerModel,
    window_start: float,
    window_end: float,
) -> float:
    """Energy the device consumed over a window, from its busy trace."""
    if window_end <= window_start:
        raise ValueError("window must have positive length")
    window = window_end - window_start
    fraction = busy_fraction(
        device.tracer.spans(GPU_GLOBAL_KEY), window_start, window_end
    )
    return model.energy(fraction * window, window)
