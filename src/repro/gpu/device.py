"""The simulated GPU device: a serial compute engine fed by the driver.

TensorFlow's large-batch DNN kernels saturate the device, so kernels
from different jobs cannot usefully run side by side — the paper
observes that "two concurrent Inception jobs take twice as long as one"
(§2.3) and concludes multiplexing is *temporal*.  The device model is
therefore a serial executor: it repeatedly asks the driver for the next
kernel (the driver decides *whose* kernel that is) and executes it for
its duration times the device's ``compute_scale`` plus a fixed
per-kernel overhead.

The device records busy intervals per job (and globally) into an
:class:`~repro.sim.trace.IntervalTracer`, which is how experiments
measure GPU duration (Figure 5) and utilization (§4.3).
"""

from __future__ import annotations

import random
from typing import Any, Optional

from ..sim.core import Process, Simulator
from ..sim.trace import IntervalTracer
from .driver import Driver
from .kernel import Kernel
from .specs import GpuSpec

__all__ = ["GpuDevice", "GPU_GLOBAL_KEY"]

# Tracer key under which the device records *all* busy time, used for
# utilization measurement.
GPU_GLOBAL_KEY = "__gpu__"


class GpuDevice:
    """Serial compute engine pulling kernels from a :class:`Driver`."""

    def __init__(
        self,
        sim: Simulator,
        spec: GpuSpec,
        driver: Driver,
        tracer: Optional[IntervalTracer] = None,
        rng: Optional["random.Random"] = None,
    ):
        self.sim = sim
        self.spec = spec
        self.driver = driver
        self.tracer = tracer if tracer is not None else IntervalTracer()
        self.kernels_executed = 0
        self.busy_time = 0.0
        self.current_kernel: Optional[Kernel] = None
        # Set by Telemetry.attach(); re-read each loop iteration because
        # the device process starts before telemetry can be attached.
        self.telemetry = None
        # Fault injection: the engine stalls (no kernel starts) until
        # this simulated time.  In-flight kernels are not extended —
        # real hangs block the queue, not work already retired.
        self._hang_until = 0.0
        self.hangs_injected = 0
        self.hang_time = 0.0
        # Device crash/reset: while ``down`` the engine is stalled (via
        # the same mechanism as hangs) and the driver rejects launches.
        self.down_until = 0.0
        self.crashes = 0
        self.outage_time = 0.0
        # Effective clock state for this device instance (thermal/boost
        # variation across runs, paper §4.4).
        if spec.clock_jitter > 0 and rng is not None:
            self.clock_factor = max(0.5, rng.gauss(1.0, spec.clock_jitter))
        else:
            self.clock_factor = 1.0
        self._process: Process = sim.process(self._run(), name=f"gpu:{spec.name}")

    @property
    def queue_depth(self) -> int:
        return self.driver.total_queued

    def execution_time(self, kernel: Kernel) -> float:
        """Wall time ``kernel`` occupies the engine on this device."""
        return (
            kernel.duration * self.spec.compute_scale * self.clock_factor
            + self.spec.kernel_overhead
        )

    def inject_hang(self, duration: float) -> None:
        """Stall the engine for ``duration`` simulated seconds.

        Kernels already executing finish normally; the next kernel
        does not start until the hang interval has elapsed.
        Overlapping hangs extend the stall rather than stacking.
        """
        if duration <= 0:
            raise ValueError(f"hang duration must be positive: {duration}")
        until = self.sim.now + duration
        if until > self._hang_until:
            self.hang_time += until - max(self._hang_until, self.sim.now)
            self._hang_until = until
        self.hangs_injected += 1

    @property
    def hung(self) -> bool:
        """True while an injected hang is blocking the engine."""
        return self.sim.now < self._hang_until

    def begin_outage(self, duration: float) -> None:
        """Mark the device down for ``duration`` simulated seconds.

        Reuses the hang stall for the engine (no kernel starts during
        the outage); the driver-side launch rejection is the caller's
        job (see :meth:`~repro.serving.server.ModelServer.crash_device`).
        Overlapping outages extend the window rather than stacking.
        """
        if duration <= 0:
            raise ValueError(f"outage duration must be positive: {duration}")
        until = self.sim.now + duration
        if until > self._hang_until:
            self._hang_until = until
        if until > self.down_until:
            self.outage_time += until - max(self.down_until, self.sim.now)
            self.down_until = until
        self.crashes += 1

    @property
    def down(self) -> bool:
        """True from a crash until its reset completes."""
        return self.sim.now < self.down_until

    def _run(self):
        # GpuSpec is frozen, so its fields hoist; clock_factor and
        # _hang_until can change mid-run (set_clock_factor /
        # inject_hang) and must be re-read per kernel.
        sim = self.sim
        timeout = sim.timeout
        next_kernel = self.driver.next_kernel
        record = self.tracer.record
        compute_scale = self.spec.compute_scale
        kernel_overhead = self.spec.kernel_overhead
        while True:
            kernel: Kernel = yield next_kernel()
            if sim.now < self._hang_until:
                # Injected device hang: sit out the remaining stall
                # before this kernel may start.
                yield timeout(self._hang_until - sim.now)
            self.current_kernel = kernel
            start = sim.now
            kernel.started_at = start
            telemetry = self.telemetry
            if telemetry is not None:
                telemetry.emit(
                    "kernel.started",
                    "device",
                    job_id=kernel.job_id,
                    node_id=kernel.node_id,
                    seq=kernel.seq,
                )
            yield timeout(
                kernel.duration * compute_scale * self.clock_factor
                + kernel_overhead
            )
            end = sim.now
            kernel.finished_at = end
            self.kernels_executed += 1
            self.busy_time += end - start
            record(kernel.job_id, start, end, tag=kernel.node_id)
            record(GPU_GLOBAL_KEY, start, end, tag=kernel.job_id)
            self.current_kernel = None
            if telemetry is not None:
                # The pipeline annotates this with the current token
                # holder, which is how overflow kernels are detected.
                telemetry.emit(
                    "kernel.finished",
                    "device",
                    job_id=kernel.job_id,
                    node_id=kernel.node_id,
                    seq=kernel.seq,
                    exec_time=end - start,
                )
            kernel.done.succeed(kernel)

    def set_clock_factor(self, factor: float) -> None:
        """Change the effective clock mid-run (thermal throttling /
        boost).  Takes effect from the next kernel; the drift monitor
        (:mod:`repro.core.monitor`) exists to catch exactly this."""
        if factor <= 0:
            raise ValueError(f"clock factor must be positive: {factor}")
        self.clock_factor = factor

    def job_gpu_duration(self, job_id: Any) -> float:
        """Total GPU duration attributed to ``job_id`` (Figure 5 metric)."""
        return self.tracer.duration(job_id)

    def utilization(self, window_start: float, window_end: float) -> float:
        """Exact busy fraction over a window (the NVML-average analogue)."""
        from ..sim.trace import busy_fraction

        return busy_fraction(
            self.tracer.spans(GPU_GLOBAL_KEY), window_start, window_end
        )
