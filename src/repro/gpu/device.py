"""The simulated GPU device: a serial compute engine fed by the driver.

TensorFlow's large-batch DNN kernels saturate the device, so kernels
from different jobs cannot usefully run side by side — the paper
observes that "two concurrent Inception jobs take twice as long as one"
(§2.3) and concludes multiplexing is *temporal*.  The device model is
therefore a serial executor: it repeatedly asks the driver for the next
kernel (the driver decides *whose* kernel that is) and executes it for
its duration times the device's ``compute_scale`` plus a fixed
per-kernel overhead.

The device records busy intervals per job (and globally) into an
:class:`~repro.sim.trace.IntervalTracer`, which is how experiments
measure GPU duration (Figure 5) and utilization (§4.3).

With ``GpuSpec.streams > 1`` the serial engine is replaced by a
processor-sharing one (:meth:`GpuDevice._run_multi`): up to ``streams``
kernels run concurrently, each progressing at ``1/s(k)`` of its solo
rate where ``s(k)`` is the occupancy-dependent slowdown of
:mod:`repro.gpu.interference`.  The serial path is untouched — with
``streams=1`` every trace digest is bit-identical to the serial device,
which the equivalence suite in ``tests/properties`` pins.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from ..sanitize import sim_sanitizer
from ..sim.core import AnyOf, Event, Process, Simulator
from ..sim.trace import IntervalTracer
from .driver import Driver
from .interference import InterferenceModel
from .kernel import Kernel
from .specs import GpuSpec

__all__ = ["GpuDevice", "GPU_GLOBAL_KEY"]

# Tracer key under which the device records *all* busy time, used for
# utilization measurement.
GPU_GLOBAL_KEY = "__gpu__"

# Remaining processor-shared work below this many device-seconds counts
# as finished (absorbs float rounding from incremental advancement).
_REMAINING_EPS = 1e-12


class GpuDevice:
    """Compute engine pulling kernels from a :class:`Driver`.

    Serial (one kernel at a time) with the default ``streams=1`` spec;
    processor-sharing across up to ``streams`` concurrent kernels
    otherwise.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: GpuSpec,
        driver: Driver,
        tracer: Optional[IntervalTracer] = None,
        rng: Optional["random.Random"] = None,
    ):
        self.sim = sim
        self.spec = spec
        self.driver = driver
        self.tracer = tracer if tracer is not None else IntervalTracer()
        self.kernels_executed = 0
        self.busy_time = 0.0
        self.current_kernel: Optional[Kernel] = None
        # Set by Telemetry.attach(); re-read each loop iteration because
        # the device process starts before telemetry can be attached.
        self.telemetry = None
        # Fault injection: the engine stalls (no kernel starts) until
        # this simulated time.  In-flight kernels are not extended —
        # real hangs block the queue, not work already retired.
        self._hang_until = 0.0
        self.hangs_injected = 0
        self.hang_time = 0.0
        # Device crash/reset: while ``down`` the engine is stalled (via
        # the same mechanism as hangs) and the driver rejects launches.
        self.down_until = 0.0
        self.crashes = 0
        self.outage_time = 0.0
        # Effective clock state for this device instance (thermal/boost
        # variation across runs, paper §4.4).
        if spec.clock_jitter > 0 and rng is not None:
            self.clock_factor = max(0.5, rng.gauss(1.0, spec.clock_jitter))
        else:
            self.clock_factor = 1.0
        # Spatial sharing (streams > 1) only.  ``allocator`` is the
        # spatio-temporal scheduler, set by the server after
        # construction; it bounds per-job concurrency and carries the
        # InvariantChecker the engine reports kernel starts to.
        self.interference = InterferenceModel.from_spec(spec)
        self.allocator = None
        self.occupancy = 0
        self.peak_occupancy = 0
        # Integral of occupancy over time: occupancy_time / elapsed is
        # the mean number of busy streams.
        self.occupancy_time = 0.0
        engine = self._run_multi() if spec.streams > 1 else self._run()
        self._process: Process = sim.process(engine, name=f"gpu:{spec.name}")

    @property
    def queue_depth(self) -> int:
        return self.driver.total_queued

    def execution_time(self, kernel: Kernel) -> float:
        """Wall time ``kernel`` occupies the engine on this device."""
        return (
            kernel.duration * self.spec.compute_scale * self.clock_factor
            + self.spec.kernel_overhead
        )

    def inject_hang(self, duration: float) -> None:
        """Stall the engine for ``duration`` simulated seconds.

        Kernels already executing finish normally; the next kernel
        does not start until the hang interval has elapsed.
        Overlapping hangs extend the stall rather than stacking.
        """
        if duration <= 0:
            raise ValueError(f"hang duration must be positive: {duration}")
        until = self.sim.now + duration
        if until > self._hang_until:
            self.hang_time += until - max(self._hang_until, self.sim.now)
            self._hang_until = until
        self.hangs_injected += 1

    @property
    def hung(self) -> bool:
        """True while an injected hang is blocking the engine."""
        return self.sim.now < self._hang_until

    def begin_outage(self, duration: float) -> None:
        """Mark the device down for ``duration`` simulated seconds.

        Reuses the hang stall for the engine (no kernel starts during
        the outage); the driver-side launch rejection is the caller's
        job (see :meth:`~repro.serving.server.ModelServer.crash_device`).
        Overlapping outages extend the window rather than stacking.
        """
        if duration <= 0:
            raise ValueError(f"outage duration must be positive: {duration}")
        until = self.sim.now + duration
        if until > self._hang_until:
            self._hang_until = until
        if until > self.down_until:
            self.outage_time += until - max(self.down_until, self.sim.now)
            self.down_until = until
        self.crashes += 1

    @property
    def down(self) -> bool:
        """True from a crash until its reset completes."""
        return self.sim.now < self.down_until

    def _run(self):
        # GpuSpec is frozen, so its fields hoist; clock_factor and
        # _hang_until can change mid-run (set_clock_factor /
        # inject_hang) and must be re-read per kernel.
        sim = self.sim
        timeout = sim.timeout
        next_kernel = self.driver.next_kernel
        record = self.tracer.record
        compute_scale = self.spec.compute_scale
        kernel_overhead = self.spec.kernel_overhead
        while True:
            kernel: Kernel = yield next_kernel()
            if sim.now < self._hang_until:
                # Injected device hang: sit out the remaining stall
                # before this kernel may start.
                yield timeout(self._hang_until - sim.now)
            self.current_kernel = kernel
            start = sim.now
            kernel.started_at = start
            telemetry = self.telemetry
            if telemetry is not None:
                guard = sim_sanitizer.checkpoint(self)
                telemetry.emit(
                    "kernel.started",
                    "device",
                    job_id=kernel.job_id,
                    node_id=kernel.node_id,
                    seq=kernel.seq,
                )
                sim_sanitizer.verify(self, guard, "kernel.started")
            yield timeout(
                kernel.duration * compute_scale * self.clock_factor
                + kernel_overhead
            )
            end = sim.now
            kernel.finished_at = end
            self.kernels_executed += 1
            self.busy_time += end - start
            record(kernel.job_id, start, end, tag=kernel.node_id)
            record(GPU_GLOBAL_KEY, start, end, tag=kernel.job_id)
            self.current_kernel = None
            if telemetry is not None:
                guard = sim_sanitizer.checkpoint(self)
                # The pipeline annotates this with the current token
                # holder, which is how overflow kernels are detected.
                telemetry.emit(
                    "kernel.finished",
                    "device",
                    job_id=kernel.job_id,
                    node_id=kernel.node_id,
                    seq=kernel.seq,
                    exec_time=end - start,
                )
                sim_sanitizer.verify(self, guard, "kernel.finished")
            kernel.done.succeed(kernel)

    def _run_multi(self):
        """Processor-sharing engine for ``streams > 1``.

        Up to ``streams`` kernels are resident at once; each carries a
        balance of remaining *solo* device-time, drained at rate
        ``1/s(k)`` where ``k`` is the instantaneous occupancy.  The
        engine wakes on the earliest of (a) the driver handing over a
        new kernel and (b) the projected completion of the most-drained
        resident, re-advances every balance by the elapsed interval, and
        retires / starts kernels as appropriate.  An injected hang
        stalls *starts* only (matching the serial engine): a fetched
        kernel is staged until the stall elapses while residents keep
        draining.
        """
        sim = self.sim
        timeout = sim.timeout
        driver = self.driver
        record = self.tracer.record
        streams = self.spec.streams
        model = self.interference
        compute_scale = self.spec.compute_scale
        kernel_overhead = self.spec.kernel_overhead

        residents: Dict[Kernel, float] = {}
        # Initial (solo) device time of each resident, reported on the
        # finish event so attribution can split execution into solo
        # time vs. spatial-interference slowdown.
        solo_times: Dict[Kernel, float] = {}
        job_residency: Dict[Any, int] = {}
        free_streams: List[int] = list(range(streams - 1, -1, -1))
        pending: Optional[Event] = None
        staged: Optional[Kernel] = None
        last = sim.now

        def eligible(job_id: Any) -> bool:
            allocator = self.allocator
            if allocator is None:
                return True
            return job_residency.get(job_id, 0) < allocator.allowed_concurrency(
                job_id
            )

        def advance() -> None:
            # Drain every resident balance by the interval since the
            # last wake, at the occupancy-dependent shared rate.
            nonlocal last
            now = sim.now
            if now > last:
                k = len(residents)
                if k:
                    drained = (now - last) / model.slowdown(k)
                    for kernel in residents:
                        residents[kernel] -= drained
                    self.occupancy_time += (now - last) * k
                last = now

        def emit_occupancy(telemetry) -> None:
            if telemetry is not None:
                telemetry.emit(
                    "stream.occupancy",
                    "device",
                    occupancy=len(residents),
                    streams=streams,
                )

        def start(kernel: Kernel) -> None:
            kernel.stream = free_streams.pop()
            kernel.started_at = sim.now
            balance = (
                kernel.duration * compute_scale * self.clock_factor
                + kernel_overhead
            )
            residents[kernel] = balance
            solo_times[kernel] = balance
            job_residency[kernel.job_id] = job_residency.get(kernel.job_id, 0) + 1
            self.current_kernel = kernel
            self.occupancy = len(residents)
            if self.occupancy > self.peak_occupancy:
                self.peak_occupancy = self.occupancy
            allocator = self.allocator
            if allocator is not None:
                checker = getattr(allocator, "invariants", None)
                if checker is not None:
                    checker.after_kernel_start(
                        allocator,
                        kernel.job_id,
                        job_residency[kernel.job_id],
                        allocator.allowed_concurrency(kernel.job_id),
                    )
            telemetry = self.telemetry
            if telemetry is not None:
                guard = sim_sanitizer.checkpoint(self)
                telemetry.emit(
                    "kernel.started",
                    "device",
                    job_id=kernel.job_id,
                    node_id=kernel.node_id,
                    seq=kernel.seq,
                    stream=kernel.stream,
                )
                emit_occupancy(telemetry)
                sim_sanitizer.verify(self, guard, "kernel.started")

        def retire(kernel: Kernel) -> None:
            # Bookkeeping + telemetry for one drained resident.  The
            # ``done`` succeed happens batched in the engine loop so a
            # same-tick gang retires with one calendar operation.
            del residents[kernel]
            solo_time = solo_times.pop(kernel)
            job_residency[kernel.job_id] -= 1
            if not job_residency[kernel.job_id]:
                del job_residency[kernel.job_id]
            free_streams.append(kernel.stream)
            free_streams.sort(reverse=True)
            end = sim.now
            start_at = kernel.started_at
            kernel.finished_at = end
            self.kernels_executed += 1
            self.busy_time += end - start_at
            record(kernel.job_id, start_at, end, tag=kernel.node_id)
            record(GPU_GLOBAL_KEY, start_at, end, tag=kernel.job_id)
            self.occupancy = len(residents)
            if kernel is self.current_kernel:
                self.current_kernel = (
                    next(iter(residents)) if residents else None
                )
            telemetry = self.telemetry
            if telemetry is not None:
                guard = sim_sanitizer.checkpoint(self)
                telemetry.emit(
                    "kernel.finished",
                    "device",
                    job_id=kernel.job_id,
                    node_id=kernel.node_id,
                    seq=kernel.seq,
                    stream=kernel.stream,
                    exec_time=end - start_at,
                    solo_time=solo_time,
                )
                emit_occupancy(telemetry)
                sim_sanitizer.verify(self, guard, "kernel.finished")

        while True:
            # Consume a fetch that fired while we were waiting.
            if pending is not None and pending.triggered:
                kernel = pending.value
                pending = None
                if sim.now < self._hang_until:
                    staged = kernel
                else:
                    advance()
                    start(kernel)
            # Drop an un-fired fetch: residency just changed, so the
            # driver must re-evaluate eligibility on the next issue.
            if pending is not None:
                driver.cancel_device_wait()
                pending = None
            # Release a staged kernel once the injected stall elapsed.
            if staged is not None and sim.now >= self._hang_until:
                advance()
                start(staged)
                staged = None
            # Retire residents whose balance is drained.  Same-tick
            # gangs (homogeneous co-resident kernels draining at the
            # same rate) complete together, so their ``done`` events
            # are triggered as one batch: identical wake order to
            # sequential succeed calls, one calendar bucket total.
            advance()
            drained = [
                k for k, rem in residents.items() if rem <= _REMAINING_EPS
            ]
            if drained:
                for kernel in drained:
                    retire(kernel)
                sim.succeed_many([k.done for k in drained], drained)
            # Ask for more work while there is stream capacity.
            if staged is None and len(residents) < streams:
                pending = driver.next_kernel(eligible=eligible)
                if pending.triggered:
                    continue
            waits: List[Event] = []
            if pending is not None:
                waits.append(pending)
            if staged is not None:
                waits.append(timeout(self._hang_until - sim.now))
            if residents:
                k = len(residents)
                horizon = max(0.0, min(residents.values())) * model.slowdown(k)
                waits.append(timeout(horizon))
            if len(waits) == 1:
                yield waits[0]
            else:
                yield AnyOf(sim, waits)

    def _sanitize_state(self):
        """Engine state checksummed around telemetry seams.

        Plain counters and identifiers only (never object reprs, which
        embed addresses).  The multi-stream residency books live in the
        engine closure; their externally visible projection —
        ``occupancy`` and the executed/busy counters — is covered here.
        """
        current = self.current_kernel
        return (
            self.kernels_executed,
            self.busy_time,
            self.occupancy,
            self.peak_occupancy,
            self.occupancy_time,
            (current.job_id, current.node_id, current.seq)
            if current is not None
            else None,
            self.clock_factor,
            self._hang_until,
            self.hangs_injected,
            self.down_until,
            self.crashes,
        )

    def set_clock_factor(self, factor: float) -> None:
        """Change the effective clock mid-run (thermal throttling /
        boost).  Takes effect from the next kernel; the drift monitor
        (:mod:`repro.core.monitor`) exists to catch exactly this."""
        if factor <= 0:
            raise ValueError(f"clock factor must be positive: {factor}")
        self.clock_factor = factor

    def job_gpu_duration(self, job_id: Any) -> float:
        """Total GPU duration attributed to ``job_id`` (Figure 5 metric)."""
        return self.tracer.duration(job_id)

    def utilization(self, window_start: float, window_end: float) -> float:
        """Exact busy fraction over a window (the NVML-average analogue)."""
        from ..sim.trace import busy_fraction

        return busy_fraction(
            self.tracer.spans(GPU_GLOBAL_KEY), window_start, window_end
        )
