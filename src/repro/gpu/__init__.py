"""Simulated GPU substrate: device, driver, kernels, memory, NVML."""

from .device import GPU_GLOBAL_KEY, GpuDevice
from .driver import Driver
from .interference import InterferenceModel, aggregate_capacity, kernel_slowdown
from .kernel import Kernel
from .memory import GpuOutOfMemory, MemoryPool
from .nvml import NvmlSampler
from .power import GTX_1080_TI_POWER, TITAN_X_POWER, PowerModel, energy_joules
from .specs import GPU_SPECS, GTX_1080_TI, TITAN_X, GpuSpec

__all__ = [
    "GPU_GLOBAL_KEY",
    "GpuDevice",
    "Driver",
    "InterferenceModel",
    "aggregate_capacity",
    "kernel_slowdown",
    "Kernel",
    "GpuOutOfMemory",
    "MemoryPool",
    "NvmlSampler",
    "GTX_1080_TI_POWER",
    "TITAN_X_POWER",
    "PowerModel",
    "energy_joules",
    "GPU_SPECS",
    "GTX_1080_TI",
    "TITAN_X",
    "GpuSpec",
]
