"""NVML-style utilization sampling.

The paper measures utilization with ``nvidia-smi``, which *samples* the
GPU's busy state periodically rather than integrating busy time exactly
(§4.3).  :class:`NvmlSampler` reproduces that measurement methodology on
the simulated device: a background process polls "is the stream busy?"
at a fixed period and reports the busy fraction of samples.

:meth:`GpuDevice.utilization` gives the exact integral for comparison;
tests check the sampler converges to it.
"""

from __future__ import annotations

from typing import List, Tuple

from ..sim.core import Simulator
from .device import GpuDevice

__all__ = ["NvmlSampler"]


class NvmlSampler:
    """Periodic busy-state sampler over a :class:`GpuDevice`."""

    def __init__(self, sim: Simulator, device: GpuDevice, period: float = 0.01):
        if period <= 0:
            raise ValueError(f"sampling period must be positive: {period}")
        self.sim = sim
        self.device = device
        self.period = period
        self.samples: List[Tuple[float, bool]] = []
        self._running = False

    def start(self) -> None:
        """Begin sampling; idempotent."""
        if not self._running:
            self._running = True
            self.sim.process(self._run(), name="nvml-sampler")

    def stop(self) -> None:
        self._running = False

    def _run(self):
        while self._running:
            busy = self.device.current_kernel is not None
            self.samples.append((self.sim.now, busy))
            yield self.sim.timeout(self.period)

    def utilization(self, window_start: float = 0.0, window_end: float = None) -> float:
        """Busy fraction of samples within the window (percent / 100)."""
        end = window_end if window_end is not None else float("inf")
        in_window = [
            busy for when, busy in self.samples if window_start <= when < end
        ]
        if not in_window:
            return 0.0
        return sum(in_window) / len(in_window)
