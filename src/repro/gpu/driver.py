"""The GPU driver: per-stream kernel queues, job-agnostic scheduling.

This is the layer at which the paper locates the root cause of
TF-Serving's unpredictability: "the driver cannot distinguish between
kernels belonging to different DNNs or client requests" (§2.2).  Each
session owns a CUDA stream, so the driver sees one FIFO *per job* and
schedules between streams with no fairness guarantee.

The simulated driver reproduces the *documented* part of the real
one's behaviour — kernels within a stream execute in order — and models
the undocumented part, cross-stream arbitration, as what it empirically
is: arbitrary and unfair.  Each stream is assigned a random static
arbitration rank at creation; at every pick the device serves the
non-empty stream with the highest rank-plus-noise score, so service is
*biased* towards lucky streams without fully starving the rest
(``arbitration_noise`` sets the bias strength; 0 = strict priority,
large = fair random).  Ranks are re-drawn per stream (one stream per
job, one job per client batch), so over a 10-batch run every client
experiences a random sequence of lucky and unlucky batches — the
mechanism behind the up-to-1.7x finish-time spread of Figure 3.  The
arbitration is work-conserving, so aggregate throughput (and
utilization, §4.3) is unaffected.

Olympian never modifies this layer; it controls *which* job is allowed
to submit at all.

The multi-stream device (``GpuSpec.streams > 1``) additionally passes
an ``eligible`` predicate to :meth:`Driver.next_kernel` so the
spatio-temporal scheduler's per-job concurrency bound is enforced at
dequeue time; the serial path (no predicate) is byte-identical to the
pre-spatial driver, including its RNG draw sequence.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional

from ..graph.node import Node
from ..sanitize import sim_sanitizer
from ..sim.core import Event, Simulator
from ..sim.rng import derive_seed
from .kernel import Kernel

__all__ = ["Driver", "DEFAULT_ARBITRATION_NOISE"]

# Calibrated so ten homogeneous TF-Serving clients show finish-time
# spreads in the paper's observed band (roughly 1.2x-1.8x, Figure 3).
DEFAULT_ARBITRATION_NOISE = 3.2


class Driver:
    """Per-stream (per-job) kernel queues with unfair arbitration."""

    def __init__(
        self,
        sim: Simulator,
        rng: Optional[random.Random] = None,
        arbitration_noise: float = DEFAULT_ARBITRATION_NOISE,
    ):
        if arbitration_noise < 0:
            raise ValueError(f"arbitration_noise must be >= 0: {arbitration_noise}")
        self.sim = sim
        if rng is None:
            rng = random.Random(derive_seed(0, "gpu:driver"))
        self.rng = rng
        self.arbitration_noise = arbitration_noise
        self._queues: Dict[Any, Deque[Kernel]] = {}
        self._ranks: Dict[Any, float] = {}
        self._queued = 0
        self._current_stream: Optional[Any] = None
        self._waiter: Optional[Event] = None
        # Eligibility predicate attached to the pending waiter (multi-
        # stream device only; None on the serial path).
        self._waiter_filter: Optional[Callable[[Any], bool]] = None
        self.submission_counts: Dict[Any, int] = {}
        self.max_queue_depth = 0
        self.stream_switches = 0
        # Fault-injection seam: called as (job_id, node_id) before a
        # kernel is queued; returning an exception rejects the launch
        # (the kernel's ``done`` fails instead of the kernel running).
        self.launch_interceptor: Optional[
            Callable[[Any, int], Optional[BaseException]]
        ] = None
        self.failed_launches = 0
        # Device-crash window: launches are rejected outright (the
        # device is gone, not merely busy) until this simulated time.
        self._reject_until = 0.0
        self.crashes = 0
        self.kernels_flushed = 0
        # Set by Telemetry.attach(); emission is observation-only.
        self.telemetry = None

    # ------------------------------------------------------------------
    # Submission side (called by gang threads)
    # ------------------------------------------------------------------

    def launch(
        self,
        job_id: Any,
        node: Node,
        batch_size: int,
        slowdown: float = 0.0,
        duration: Optional[float] = None,
    ) -> Kernel:
        """Submit one kernel for ``node`` on behalf of ``job_id``.

        Returns the :class:`Kernel`; its ``done`` event fires when the
        device finishes executing it.  ``slowdown`` adds extra execution
        time (used to model online profiling instrumentation).
        ``duration`` short-circuits the per-launch cost-model walk when
        the caller already holds the node's precomputed duration (the
        compiled session path).
        """
        if duration is None:
            duration = node.duration(batch_size) + slowdown
        kernel = Kernel(self.sim, job_id, node.node_id, duration)
        kernel.submitted_at = self.sim.now
        seq = self.submission_counts.get(job_id, 0)
        kernel.seq = seq
        self.submission_counts[job_id] = seq + 1
        telemetry = self.telemetry
        if telemetry is not None:
            guard = sim_sanitizer.checkpoint(self)
            telemetry.emit(
                "kernel.submitted",
                "driver",
                job_id=job_id,
                node_id=node.node_id,
                seq=seq,
                queue_depth=self._queued,
            )
            sim_sanitizer.verify(self, guard, "kernel.submitted")
        if self.sim.now < self._reject_until:
            # The device is down: reject at the driver boundary with the
            # remaining reset latency as a backpressure hint.
            from ..faults.errors import DeviceCrashed

            self.failed_launches += 1
            if telemetry is not None:
                guard = sim_sanitizer.checkpoint(self)
                telemetry.emit(
                    "kernel.rejected",
                    "driver",
                    job_id=job_id,
                    node_id=node.node_id,
                    seq=seq,
                    reason="device_crashed",
                )
                sim_sanitizer.verify(self, guard, "kernel.rejected")
            kernel.done.fail(
                DeviceCrashed(job_id, retry_after=self._reject_until - self.sim.now)
            )
            return kernel
        if self.launch_interceptor is not None:
            fault = self.launch_interceptor(job_id, node.node_id)
            if fault is not None:
                # Rejected at the driver boundary: the kernel never
                # reaches a stream; its waiter sees the fault raised at
                # the yield point (Event.fail propagation).
                self.failed_launches += 1
                if telemetry is not None:
                    guard = sim_sanitizer.checkpoint(self)
                    telemetry.emit(
                        "kernel.rejected",
                        "driver",
                        job_id=job_id,
                        node_id=node.node_id,
                        seq=seq,
                    )
                    sim_sanitizer.verify(self, guard, "kernel.rejected")
                kernel.done.fail(fault)
                return kernel
        queue = self._queues.get(job_id)
        if queue is None:
            queue = deque()
            self._queues[job_id] = queue
            # Stream creation: draw this stream's arbitration rank.
            self._ranks[job_id] = self.rng.random()
        queue.append(kernel)
        self._queued += 1
        if self._queued > self.max_queue_depth:
            self.max_queue_depth = self._queued
        if self._waiter is not None:
            if self._waiter_filter is None:
                waiter, self._waiter = self._waiter, None
                waiter.succeed(self._pop())
            else:
                chosen = self._pop_eligible(self._waiter_filter)
                if chosen is not None:
                    waiter, self._waiter = self._waiter, None
                    self._waiter_filter = None
                    waiter.succeed(chosen)
        return kernel

    # ------------------------------------------------------------------
    # Device crash (fault injection / recovery)
    # ------------------------------------------------------------------

    def crash(self, reject_until: float) -> int:
        """Device crash: fail every queued kernel, reject new launches.

        All queued kernels fail with
        :class:`~repro.faults.errors.DeviceCrashed` in stream-creation
        (dict insertion) order — deterministic for a fixed run.  New
        launches are rejected until ``reject_until`` (the reset
        completion time).  The kernel currently executing on the device
        is *not* failed: at the instant of the crash its work has
        already retired from the queue, and the simulated engine
        charges its full duration either way.  Returns the number of
        kernels flushed.
        """
        from ..faults.errors import DeviceCrashed

        self.crashes += 1
        if reject_until > self._reject_until:
            self._reject_until = reject_until
        telemetry = self.telemetry
        flushed = 0
        for job_id, queue in self._queues.items():
            while queue:
                kernel = queue.popleft()
                self._queued -= 1
                self.failed_launches += 1
                flushed += 1
                if telemetry is not None:
                    guard = sim_sanitizer.checkpoint(self)
                    telemetry.emit(
                        "kernel.rejected",
                        "driver",
                        job_id=job_id,
                        node_id=kernel.node_id,
                        seq=kernel.seq,
                        reason="device_crashed",
                    )
                    sim_sanitizer.verify(self, guard, "kernel.rejected")
                kernel.done.fail(
                    DeviceCrashed(
                        job_id, retry_after=reject_until - self.sim.now
                    )
                )
        self.kernels_flushed += flushed
        return flushed

    # ------------------------------------------------------------------
    # Device side
    # ------------------------------------------------------------------

    def next_kernel(
        self, eligible: Optional[Callable[[Any], bool]] = None
    ) -> Event:
        """Event that fires with the next kernel to execute.

        Fires immediately if work is queued; otherwise when the next
        submission arrives.  Only one outstanding request (one device)
        is supported.

        ``eligible``, when given, restricts the pick to streams whose
        ``job_id`` satisfies the predicate (multi-stream device only).
        A waiter stored with a predicate is *not* re-checked when
        residency changes on the device side — the device cancels the
        wait (:meth:`cancel_device_wait`) and re-issues instead.
        """
        if self._waiter is not None:
            raise RuntimeError("driver already has a pending device request")
        event = self.sim.event()  # pooled: one fetch event per executed kernel
        kernel = self._pop() if eligible is None else self._pop_eligible(eligible)
        if kernel is not None:
            event.succeed(kernel)
        else:
            self._waiter = event
            self._waiter_filter = eligible
        return event

    def cancel_device_wait(self) -> None:
        """Abandon the outstanding :meth:`next_kernel` wait, if any.

        The multi-stream device calls this whenever its residency
        changes: a stream that was over its concurrency bound at issue
        time may be eligible now, and only a fresh :meth:`next_kernel`
        re-evaluates the queues.  The abandoned event is never yielded
        on again, so dropping the reference is safe.
        """
        self._waiter = None
        self._waiter_filter = None

    def _pop(self) -> Optional[Kernel]:
        """Serve the highest-ranked non-empty stream."""
        if not self._queued:
            return None
        nonempty = [job_id for job_id, queue in self._queues.items() if queue]
        if len(nonempty) == 1:
            chosen = nonempty[0]
        else:
            # Manual argmax: one noise draw per candidate stream, in
            # queue-creation order, first-wins on (measure-zero) ties —
            # the exact semantics of max(key=...) without the per-pick
            # lambda dispatch.
            ranks = self._ranks
            noise = self.arbitration_noise
            random = self.rng.random
            chosen = nonempty[0]
            best = ranks[chosen] + noise * random()
            for job_id in nonempty[1:]:
                score = ranks[job_id] + noise * random()
                if score > best:
                    best = score
                    chosen = job_id
        if chosen != self._current_stream:
            self.stream_switches += 1
        self._current_stream = chosen
        # Opportunistic cleanup of long-empty stream queues.
        if len(self._queues) > 4 * len(nonempty) + 8:
            keep = set(nonempty)
            keep.add(chosen)
            self._queues = {
                job_id: queue
                for job_id, queue in self._queues.items()
                if job_id in keep
            }
            self._ranks = {
                job_id: rank
                for job_id, rank in self._ranks.items()
                if job_id in self._queues
            }
        self._queued -= 1
        return self._queues[chosen].popleft()

    def _pop_eligible(
        self, eligible: Callable[[Any], bool]
    ) -> Optional[Kernel]:
        """Serve the highest-ranked non-empty stream passing ``eligible``.

        The multi-stream variant of :meth:`_pop`: streams over their
        per-job concurrency bound keep their kernels queued.  Returns
        None when no eligible stream has work.  Draws its own
        arbitration noise (one per eligible candidate); only reached
        with ``streams > 1``, so the serial RNG sequence is untouched.
        """
        if not self._queued:
            return None
        nonempty = [job_id for job_id, queue in self._queues.items() if queue]
        candidates = [job_id for job_id in nonempty if eligible(job_id)]
        if not candidates:
            return None
        if len(candidates) == 1:
            chosen = candidates[0]
        else:
            ranks = self._ranks
            noise = self.arbitration_noise
            random = self.rng.random
            chosen = candidates[0]
            best = ranks[chosen] + noise * random()
            for job_id in candidates[1:]:
                score = ranks[job_id] + noise * random()
                if score > best:
                    best = score
                    chosen = job_id
        if chosen != self._current_stream:
            self.stream_switches += 1
        self._current_stream = chosen
        # Same opportunistic cleanup as _pop, but keyed on *all*
        # non-empty streams — ineligible queues must survive.
        if len(self._queues) > 4 * len(nonempty) + 8:
            keep = set(nonempty)
            keep.add(chosen)
            self._queues = {
                job_id: queue
                for job_id, queue in self._queues.items()
                if job_id in keep
            }
            self._ranks = {
                job_id: rank
                for job_id, rank in self._ranks.items()
                if job_id in self._queues
            }
        self._queued -= 1
        return self._queues[chosen].popleft()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def total_queued(self) -> int:
        return self._queued

    def queued_for(self, job_id: Any) -> int:
        queue = self._queues.get(job_id)
        return len(queue) if queue is not None else 0

    def submissions_for(self, job_id: Any) -> int:
        return self.submission_counts.get(job_id, 0)

    def _sanitize_state(self):
        """Arbitration state checksummed around telemetry seams.

        Queue contents, arbitration ranks, and the RNG stream: any of
        these drifting during an emit would change which stream the
        next pick serves.  Stream dicts are reported in creation
        (insertion) order, which is itself part of the arbitration
        contract.
        """
        return (
            self._queued,
            self._current_stream,
            self.stream_switches,
            self.failed_launches,
            self.crashes,
            tuple(
                (job_id, len(queue)) for job_id, queue in self._queues.items()
            ),
            tuple(self._ranks.items()),
            self.rng.getstate(),
        )
