"""Multi-GPU serving: the paper's future-work extension (§7.2)."""

from .placement import (
    LeastLoadedPlacement,
    MemoryAwarePlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    StickyClientPlacement,
)
from .server import GpuWorker, MultiGpuServer

__all__ = [
    "LeastLoadedPlacement",
    "MemoryAwarePlacement",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "StickyClientPlacement",
    "GpuWorker",
    "MultiGpuServer",
]
