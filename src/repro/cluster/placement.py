"""Job placement policies for multi-GPU serving.

The paper defers multi-GPU support to future work ("expand Olympian to
serve more DNN models and support multiple GPUs within a single
server", §7.2).  This module provides the placement half of that
extension: given a job and the per-GPU workers, decide which GPU serves
it.  Scheduling *within* each GPU remains plain Olympian — one token,
one profiled quantum — so all single-GPU guarantees carry over.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from ..serving.request import Job

if TYPE_CHECKING:  # pragma: no cover
    from .server import GpuWorker

__all__ = [
    "PlacementPolicy",
    "RoundRobinPlacement",
    "LeastLoadedPlacement",
    "MemoryAwarePlacement",
    "StickyClientPlacement",
]


class PlacementPolicy:
    """Chooses a worker for each submitted job."""

    name = "abstract"

    def choose(self, workers: List["GpuWorker"], job: Job) -> "GpuWorker":
        raise NotImplementedError


class RoundRobinPlacement(PlacementPolicy):
    """Cycle through GPUs in order, ignoring load."""

    name = "round-robin"

    def __init__(self):
        self._next = 0

    def choose(self, workers: List["GpuWorker"], job: Job) -> "GpuWorker":
        worker = workers[self._next % len(workers)]
        self._next += 1
        return worker


class LeastLoadedPlacement(PlacementPolicy):
    """Send the job to the GPU with the fewest active jobs.

    Ties break towards the lowest GPU index, which keeps placement
    deterministic.
    """

    name = "least-loaded"

    def choose(self, workers: List["GpuWorker"], job: Job) -> "GpuWorker":
        return min(workers, key=lambda w: (w.server.active_jobs, w.index))


class MemoryAwarePlacement(PlacementPolicy):
    """Least-loaded among GPUs with room for the job's model.

    Falls back to plain least-loaded when nothing fits (the submit will
    then raise GpuOutOfMemory, surfacing the capacity problem instead
    of hiding it).
    """

    name = "memory-aware"

    def choose(self, workers: List["GpuWorker"], job: Job) -> "GpuWorker":
        footprint = workers[0].server.model_memory_mb(job.model_name)
        fitting = [
            w for w in workers if w.server.memory.fits(footprint)
        ]
        candidates = fitting or workers
        return min(candidates, key=lambda w: (w.server.active_jobs, w.index))


class StickyClientPlacement(PlacementPolicy):
    """Pin each client to one GPU (hash by client id).

    Keeps a client's sequential batches on the same device — the model
    stays resident, mirroring session affinity in real deployments.
    """

    name = "sticky-client"

    def __init__(self):
        self._assignment = {}
        self._next = 0

    def choose(self, workers: List["GpuWorker"], job: Job) -> "GpuWorker":
        index = self._assignment.get(job.client_id)
        if index is None:
            index = self._next % len(workers)
            self._assignment[job.client_id] = index
            self._next += 1
        return workers[index]
