"""Multi-GPU model serving: the paper's first future-work item.

:class:`MultiGpuServer` runs one single-GPU serving stack
(:class:`~repro.serving.server.ModelServer`) per device — the standard
one-TF-Serving-per-GPU deployment — on a shared host (CPU cores and
inter-op thread pool are common).  Jobs are routed to a device by a
:class:`~repro.cluster.placement.PlacementPolicy`; within each device
an independent Olympian scheduler enforces the usual quantum
guarantees, so per-GPU fairness and predictability carry over
unchanged.

The class quacks like a single :class:`ModelServer` for
:class:`~repro.serving.client.Client`, so all workload and metric
machinery works on clusters too.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..host.cpu import HostCpu
from ..host.threadpool import ThreadPool
from ..serving.hooks import SchedulerHook
from ..serving.request import Job
from ..serving.server import ModelServer, ServerConfig
from ..sim.core import Event, Simulator
from ..sim.rng import derive_seed
from ..zoo.spec import ModelSpec
from .placement import LeastLoadedPlacement, PlacementPolicy

__all__ = ["GpuWorker", "MultiGpuServer"]

SchedulerFactory = Callable[[Simulator, ModelServer], Optional[SchedulerHook]]


class GpuWorker:
    """One GPU's serving stack inside a multi-GPU server."""

    def __init__(self, index: int, server: ModelServer):
        self.index = index
        self.server = server
        self.jobs_routed = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GpuWorker({self.index}, active={self.server.active_jobs})"


class MultiGpuServer:
    """N single-GPU serving stacks behind one placement policy."""

    def __init__(
        self,
        sim: Simulator,
        num_gpus: int,
        config: Optional[ServerConfig] = None,
        scheduler_factory: Optional[SchedulerFactory] = None,
        placement: Optional[PlacementPolicy] = None,
        share_host: bool = True,
    ):
        if num_gpus < 1:
            raise ValueError(f"num_gpus must be >= 1: {num_gpus}")
        self.sim = sim
        self.config = config or ServerConfig()
        self.placement = placement or LeastLoadedPlacement()
        shared_cpu = HostCpu(sim, self.config.n_cores) if share_host else None
        shared_pool = ThreadPool(self.config.pool_size) if share_host else None
        self.workers: List[GpuWorker] = []
        for index in range(num_gpus):
            worker_config = self.config.with_seed(
                derive_seed(self.config.seed, f"gpu-worker:{index}")
            )
            server = ModelServer(
                sim, worker_config, cpu=shared_cpu, pool=shared_pool
            )
            if scheduler_factory is not None:
                scheduler = scheduler_factory(sim, server)
                if scheduler is not None:
                    server.scheduler = scheduler
            self.workers.append(GpuWorker(index, server))
        self._job_worker: Dict[str, GpuWorker] = {}
        # Parity with ModelServer's optional seams: Telemetry.attach and
        # RecoveryManager.attach set these; None = feature off.
        self.telemetry = None
        self.recovery = None

    @property
    def num_gpus(self) -> int:
        return len(self.workers)

    # ------------------------------------------------------------------
    # ModelServer-compatible surface (used by Client)
    # ------------------------------------------------------------------

    def load_model(self, graph, memory_mb: int = 240) -> None:
        """Load a model replica onto every GPU."""
        for worker in self.workers:
            worker.server.load_model(graph, memory_mb=memory_mb)

    def load_spec(self, spec: ModelSpec, scale: float = 1.0, seed: int = 0):
        from ..zoo.generate import generate_graph

        graph = generate_graph(spec, scale=scale, seed=seed)
        self.load_model(graph, memory_mb=spec.memory_mb)
        return graph

    @property
    def model_names(self) -> List[str]:
        return self.workers[0].server.model_names

    def make_job(
        self,
        client_id: Any,
        model_name: str,
        batch_size: int,
        weight: int = 1,
        priority: int = 0,
    ) -> Job:
        return self.workers[0].server.make_job(
            client_id, model_name, batch_size, weight=weight, priority=priority
        )

    def submit(self, job: Job) -> Event:
        """Route the job to a GPU and start serving it there.

        With a :class:`~repro.recovery.RecoveryManager` attached the
        job is supervised (the cluster front handles admission; worker
        servers stay plain), so crashes on one worker fail over to a
        surviving one.
        """
        if self.recovery is not None:
            return self.recovery.supervise(self, job)
        return self._submit(job)

    def _submit(self, job: Job) -> Event:
        """Place one attempt, preferring workers whose device is up."""
        candidates = self.healthy_workers() or self.workers
        worker = self.placement.choose(candidates, job)
        worker.jobs_routed += 1
        self._job_worker[job.job_id] = worker
        return worker.server.submit(job)

    def cancel(self, job: Job) -> bool:
        """Cancel a job wherever it was placed.

        Mirrors :meth:`ModelServer.cancel` (deadline-missed jobs on a
        cluster previously could not be cancelled at all).  Returns
        False for unknown or already-terminal jobs.
        """
        if self.recovery is not None:
            return self.recovery.cancel(job)
        return self._cancel(job)

    def _cancel(self, job: Job) -> bool:
        worker = self._job_worker.get(job.job_id)
        if worker is None:
            return False
        return worker.server.cancel(job)

    def gpu_duration_of(self, job: Job) -> float:
        worker = self._job_worker.get(job.job_id)
        if worker is None:
            return 0.0
        return worker.server.gpu_duration_of(job)

    # ------------------------------------------------------------------
    # Cluster metrics
    # ------------------------------------------------------------------

    def worker_of(self, job: Job) -> Optional[GpuWorker]:
        return self._job_worker.get(job.job_id)

    def healthy_workers(self) -> List[GpuWorker]:
        """Workers whose device is currently serving (not crashed)."""
        return [
            worker for worker in self.workers if not worker.server.device.down
        ]

    def crash_worker(
        self, index: int, reset_latency: Optional[float] = None
    ) -> int:
        """Crash one worker's GPU; returns the kernels flushed there."""
        return self.workers[index].server.crash_device(reset_latency)

    @property
    def completed_jobs(self) -> List[Job]:
        """All finished jobs across workers (ModelServer parity)."""
        jobs: List[Job] = []
        for worker in self.workers:
            jobs.extend(worker.server.completed_jobs)
        return jobs

    @property
    def device_crashes(self) -> int:
        return sum(worker.server.device_crashes for worker in self.workers)

    def utilization(self, window_start: float, window_end: float) -> float:
        """Mean busy fraction across all devices."""
        values = [
            worker.server.utilization(window_start, window_end)
            for worker in self.workers
        ]
        return sum(values) / len(values)

    def routing_counts(self) -> List[int]:
        return [worker.jobs_routed for worker in self.workers]

    @property
    def active_jobs(self) -> int:
        return sum(worker.server.active_jobs for worker in self.workers)
