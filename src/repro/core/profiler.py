"""Olympian's offline profiler (paper §3.3, Figure 7 left half).

For each (model, batch size) the profiler runs the model **solo** on an
otherwise idle serving stack:

1. once with the online cost profiler attached, collecting per-node
   cost observations (this is the expensive instrumented run — 21-29 %
   slower, Figure 6 — which is exactly why it happens offline);
2. once clean, measuring the solo GPU duration ``D_j`` and runtime.

It then builds Overhead-Q curves by running *two* instances of the
model under plain TF-Serving versus under Olympian across a grid of
quanta, and selects the quantum matching an operator-specified overhead
tolerance (§3.3 "Determining Q").

Everything here creates fresh, self-contained simulations, mirroring
how the real profiler runs on an idle GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.graph import Graph
from ..serving.client import Client
from ..serving.server import ModelServer, ServerConfig
from ..sim.core import Simulator
from ..sim.rng import derive_seed
from .accounting import OlympianProfile, ProfileStore
from .policies import FairSharing
from .quantum import DEFAULT_Q_GRID, OverheadQCurve, select_quantum
from .scheduler import DEFAULT_WAKE_LATENCY, OlympianScheduler

__all__ = ["SoloRun", "ProfilerOutput", "OfflineProfiler"]


@dataclass(frozen=True)
class SoloRun:
    """Measurements from one exclusive-access run of a model."""

    model_name: str
    batch_size: int
    runtime: float
    gpu_duration: float
    online: bool


@dataclass
class ProfilerOutput:
    """Everything the profiler hands to the serving system."""

    quantum: float
    store: ProfileStore
    curves: List[OverheadQCurve] = field(default_factory=list)
    tolerance: float = 0.025

    def curve_for(self, model_name: str) -> OverheadQCurve:
        for curve in self.curves:
            if curve.model_name == model_name:
                return curve
        raise KeyError(f"no Overhead-Q curve for {model_name!r}")


class OfflineProfiler:
    """Builds :class:`OlympianProfile` objects and selects the quantum."""

    def __init__(
        self,
        base_config: Optional[ServerConfig] = None,
        seed: int = 0,
        wake_latency: float = DEFAULT_WAKE_LATENCY,
        curve_batches: int = 4,
    ):
        # Profiling runs on an idle server; memory accounting is
        # irrelevant there and only constrains multi-client serving.
        self.base_config = base_config or ServerConfig(track_memory=False)
        if self.base_config.track_memory:
            self.base_config = replace(self.base_config, track_memory=False)
        self.seed = seed
        self.wake_latency = wake_latency
        self.curve_batches = curve_batches
        self.solo_runs: List[SoloRun] = []

    # ------------------------------------------------------------------
    # Solo measurement
    # ------------------------------------------------------------------

    def measure_solo(
        self, graph: Graph, batch_size: int, online: bool = False, run_seed: int = 0
    ) -> Tuple[SoloRun, ModelServer]:
        """One exclusive-access run; returns measurements and the server
        (which holds cost observations when ``online`` is set)."""
        sim = Simulator()
        config = replace(
            self.base_config,
            online_profiling=online,
            seed=derive_seed(self.seed, f"solo:{graph.name}:{batch_size}:{run_seed}"),
        )
        server = ModelServer(sim, config)
        server.load_model(graph)
        job = server.make_job("profiler", graph.name, batch_size)
        server.submit(job)
        sim.run()
        if not job.complete:
            raise RuntimeError(
                f"solo run of {graph.name!r} did not complete "
                f"({job.nodes_executed}/{job.graph.num_nodes} nodes)"
            )
        run = SoloRun(
            model_name=graph.name,
            batch_size=batch_size,
            runtime=job.finished_at - job.submitted_at,
            gpu_duration=server.gpu_duration_of(job),
            online=online,
        )
        self.solo_runs.append(run)
        return run, server

    def profile_model(
        self, graph: Graph, batch_size: int, run_seed: int = 0
    ) -> OlympianProfile:
        """Instrumented run for node costs + clean run for ``D_j``."""
        _instrumented, server = self.measure_solo(
            graph, batch_size, online=True, run_seed=run_seed
        )
        observed = server.observed_profile(graph.name, batch_size)
        clean, _ = self.measure_solo(
            graph, batch_size, online=False, run_seed=run_seed
        )
        return OlympianProfile.from_cost_profile(
            observed,
            gpu_duration=clean.gpu_duration,
            solo_runtime=clean.runtime,
        )

    # ------------------------------------------------------------------
    # Overhead-Q curves
    # ------------------------------------------------------------------

    def _run_pair(
        self,
        graph: Graph,
        batch_size: int,
        quantum: Optional[float],
        store: Optional[ProfileStore],
        run_seed: int,
    ) -> float:
        """Two concurrent instances; returns the later finish time.

        ``quantum=None`` means plain TF-Serving (the baseline case *a*
        of §3.3); otherwise Olympian fair sharing at that quantum
        (case *b*).
        """
        sim = Simulator()
        # The seed is shared across the whole Q sweep (and the baseline):
        # back-to-back runs on the same physical card see the same clock
        # state, and a paired comparison isolates the scheduler's effect
        # from device/dispatch noise.
        config = replace(
            self.base_config,
            seed=derive_seed(self.seed, f"pair:{graph.name}:{batch_size}:{run_seed}"),
        )
        if quantum is None:
            scheduler = None
        else:
            scheduler = OlympianScheduler(
                sim,
                FairSharing(),
                quantum=quantum,
                profiles=store,
                wake_latency=self.wake_latency,
            )
        server = ModelServer(sim, config, scheduler=scheduler)
        server.load_model(graph)
        clients = [
            Client(
                sim,
                server,
                client_id=f"pair{i}",
                model_name=graph.name,
                batch_size=batch_size,
                num_batches=self.curve_batches,
            )
            for i in range(2)
        ]
        for client in clients:
            client.start()
        sim.run()
        for client in clients:
            if not client.completed:
                raise RuntimeError(
                    f"pair run of {graph.name!r} stalled (client "
                    f"{client.client_id!r} incomplete)"
                )
        return max(client.finish_time for client in clients)

    def overhead_q_curve(
        self,
        graph: Graph,
        batch_size: int,
        profile: Optional[OlympianProfile] = None,
        q_values: Sequence[float] = DEFAULT_Q_GRID,
        run_seed: int = 0,
    ) -> OverheadQCurve:
        """Measure overhead vs quantum for one model (Figure 8)."""
        if profile is None:
            profile = self.profile_model(graph, batch_size, run_seed=run_seed)
        store = ProfileStore()
        store.add(profile)
        baseline = self._run_pair(graph, batch_size, None, None, run_seed)
        points = []
        for q in q_values:
            finish = self._run_pair(graph, batch_size, q, store, run_seed)
            points.append((q, (finish - baseline) / baseline))
        return OverheadQCurve(graph.name, batch_size, points)

    # ------------------------------------------------------------------
    # Full build
    # ------------------------------------------------------------------

    def build(
        self,
        entries: Sequence[Tuple[Graph, int]],
        tolerance: float = 0.025,
        q_values: Sequence[float] = DEFAULT_Q_GRID,
        with_curves: bool = True,
        fixed_quantum: Optional[float] = None,
    ) -> ProfilerOutput:
        """Profile every (graph, batch) pair and select the quantum.

        ``fixed_quantum`` skips curve measurement and Q selection (used
        by experiments that sweep Q themselves); profiles are still
        built.
        """
        store = ProfileStore()
        profiles: Dict[Tuple[str, int], OlympianProfile] = {}
        for graph, batch_size in entries:
            profile = self.profile_model(graph, batch_size)
            profiles[(graph.name, batch_size)] = profile
            store.add(profile)
        curves: List[OverheadQCurve] = []
        if fixed_quantum is not None:
            return ProfilerOutput(
                quantum=fixed_quantum, store=store, curves=curves,
                tolerance=tolerance,
            )
        if not with_curves:
            raise ValueError("need either curves or a fixed quantum")
        for graph, batch_size in entries:
            curves.append(
                self.overhead_q_curve(
                    graph,
                    batch_size,
                    profile=profiles[(graph.name, batch_size)],
                    q_values=q_values,
                )
            )
        quantum = select_quantum(curves, tolerance)
        return ProfilerOutput(
            quantum=quantum, store=store, curves=curves, tolerance=tolerance
        )
