"""Quantum selection via Overhead-Q curves (paper §3.3, Figure 8).

Time-slicing has a per-switch cost, so smaller quanta mean more
overhead.  Olympian characterises the trade-off offline: for a grid of
candidate quanta ``Q`` it runs two instances of a model under plain
TF-Serving and under Olympian and records the relative finish-time
inflation.  The operator specifies an overhead *tolerance* (the paper
uses 2-2.5 %); the chosen ``Q`` is the smallest quantum whose overhead
is within tolerance — maximised across all served models so no model
exceeds the tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = ["OverheadQCurve", "select_quantum", "DEFAULT_Q_GRID"]

# Candidate quanta, seconds.  Spans the 0.3-8 ms range of Figure 8.
DEFAULT_Q_GRID: Tuple[float, ...] = (
    0.3e-3,
    0.5e-3,
    0.8e-3,
    1.2e-3,
    2.0e-3,
    3.0e-3,
    5.0e-3,
    8.0e-3,
)


@dataclass
class OverheadQCurve:
    """Measured overhead as a function of quantum for one model.

    ``points`` are ``(q_seconds, overhead_fraction)`` sorted by ``q``.
    Overheads are measurements and may be slightly noisy (even slightly
    negative); lookups are robust to that.
    """

    model_name: str
    batch_size: int
    points: List[Tuple[float, float]]

    def __post_init__(self):
        if len(self.points) < 1:
            raise ValueError("curve needs at least one point")
        self.points = sorted(self.points)
        qs = [q for q, _ in self.points]
        if len(set(qs)) != len(qs):
            raise ValueError("duplicate Q values in curve")
        if any(q <= 0 for q in qs):
            raise ValueError("Q values must be positive")

    @property
    def q_values(self) -> List[float]:
        return [q for q, _ in self.points]

    @property
    def overheads(self) -> List[float]:
        return [o for _, o in self.points]

    def overhead_at(self, q: float) -> float:
        """Piecewise-linear interpolation, clamped at the curve's ends."""
        points = self.points
        if q <= points[0][0]:
            return points[0][1]
        if q >= points[-1][0]:
            return points[-1][1]
        for (q_lo, o_lo), (q_hi, o_hi) in zip(points, points[1:]):
            if q_lo <= q <= q_hi:
                frac = (q - q_lo) / (q_hi - q_lo)
                return o_lo + frac * (o_hi - o_lo)
        raise AssertionError("unreachable: q inside curve bounds")

    def q_for_tolerance(self, tolerance: float) -> float:
        """Smallest measured-or-interpolated Q with overhead <= tolerance.

        If even the largest candidate quantum exceeds the tolerance the
        largest quantum is returned (the best available).
        """
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive: {tolerance}")
        points = self.points
        # Find the first grid point within tolerance; interpolate the
        # crossing from its predecessor if that predecessor is above.
        for index, (q, overhead) in enumerate(points):
            if overhead <= tolerance:
                if index == 0:
                    return q
                q_prev, o_prev = points[index - 1]
                if o_prev <= tolerance:
                    # Noise made an earlier point pass too; just use q.
                    return q
                frac = (o_prev - tolerance) / (o_prev - overhead)
                return q_prev + frac * (q - q_prev)
        return points[-1][0]


def select_quantum(
    curves: Iterable[OverheadQCurve], tolerance: float = 0.025
) -> float:
    """The paper's rule: the largest per-model Q so no model exceeds
    the tolerance (§3.3: "takes the largest Q among them")."""
    curve_list = list(curves)
    if not curve_list:
        raise ValueError("need at least one Overhead-Q curve")
    return max(curve.q_for_tolerance(tolerance) for curve in curve_list)
