"""Olympian's resource accounting: profiles, rates, thresholds.

The paper's central accounting identity (§3.3):

    T_j = Q * C_j / D_j

where ``C_j`` is the summed node cost of DNN *j* (from the cost-model
API), ``D_j`` its solo GPU duration, and ``Q`` the desired quantum.  A
job has used one quantum's worth of GPU when its accumulated node cost
reaches ``T_j``; ``C_j / D_j`` is the *cost accumulation rate*.

:class:`OlympianProfile` packages (C_j, D_j, per-node costs) for one
(model, batch) pair; :class:`ProfileStore` is the lookup table the
scheduler consults, with optional linear-regression fallback for
unprofiled batch sizes (paper §4.4, Figure 20).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..graph.costmodel import NodeCostProfile

__all__ = ["OlympianProfile", "ProfileStore"]


@dataclass
class OlympianProfile:
    """Offline profile of one (model, batch size) pair.

    Attributes
    ----------
    model_name / batch_size:
        What was profiled.
    node_costs:
        Per-GPU-node cost observations (averaged), in cost units.
    gpu_duration:
        ``D_j``: solo GPU duration of one job, in seconds (Figure 5).
    solo_runtime:
        End-to-end solo runtime of one job, in seconds (for reporting).
    """

    model_name: str
    batch_size: int
    node_costs: Dict[int, float]
    gpu_duration: float
    solo_runtime: float = 0.0

    def __post_init__(self):
        if self.gpu_duration <= 0:
            raise ValueError(
                f"profile for {self.model_name!r} has non-positive "
                f"GPU duration: {self.gpu_duration}"
            )
        if not self.node_costs:
            raise ValueError(f"profile for {self.model_name!r} has no node costs")

    @property
    def total_cost(self) -> float:
        """``C_j``: summed node cost."""
        return sum(self.node_costs.values())

    @property
    def cost_rate(self) -> float:
        """``C_j / D_j``: cost units accumulated per second of GPU time."""
        return self.total_cost / self.gpu_duration

    def threshold(self, quantum: float) -> float:
        """``T_j = Q * C_j / D_j``: cost budget of one quantum."""
        if quantum <= 0:
            raise ValueError(f"quantum must be positive: {quantum}")
        return quantum * self.cost_rate

    def cost(self, node_id: int) -> float:
        """Cost of one node (0.0 for nodes absent from the profile)."""
        return self.node_costs.get(node_id, 0.0)

    @classmethod
    def from_cost_profile(
        cls,
        costs: NodeCostProfile,
        gpu_duration: float,
        solo_runtime: float = 0.0,
    ) -> "OlympianProfile":
        return cls(
            model_name=costs.model_name,
            batch_size=costs.batch_size,
            node_costs=dict(costs.node_costs),
            gpu_duration=gpu_duration,
            solo_runtime=solo_runtime,
        )


class ProfileStore:
    """Profiles indexed by (model, batch), with regression fallback.

    Exact profiles are preferred.  When ``allow_regression`` is on and a
    model has at least two profiled batch sizes, a lookup at an
    unprofiled batch size fits per-node linear cost models and predicts
    a profile (Figure 20's mechanism).  Predicted profiles are cached.
    """

    def __init__(self, allow_regression: bool = True):
        self.allow_regression = allow_regression
        self._profiles: Dict[Tuple[str, int], OlympianProfile] = {}
        self._predicted: Dict[Tuple[str, int], OlympianProfile] = {}

    def add(self, profile: OlympianProfile) -> None:
        key = (profile.model_name, profile.batch_size)
        self._profiles[key] = profile
        # A new exact profile invalidates earlier predictions.
        self._predicted = {
            k: v for k, v in self._predicted.items() if k[0] != profile.model_name
        }

    def profiled_batches(self, model_name: str) -> List[int]:
        return sorted(
            batch for (name, batch) in self._profiles if name == model_name
        )

    def exact(self, model_name: str, batch_size: int) -> Optional[OlympianProfile]:
        return self._profiles.get((model_name, batch_size))

    def lookup(self, model_name: str, batch_size: int) -> OlympianProfile:
        """Exact profile if available, regression prediction otherwise."""
        key = (model_name, batch_size)
        profile = self._profiles.get(key)
        if profile is not None:
            return profile
        predicted = self._predicted.get(key)
        if predicted is not None:
            return predicted
        if self.allow_regression:
            batches = self.profiled_batches(model_name)
            if len(batches) >= 2:
                from .regression import fit_linear_profile_model

                model = fit_linear_profile_model(
                    [self._profiles[(model_name, b)] for b in batches]
                )
                predicted = model.predict(batch_size)
                self._predicted[key] = predicted
                return predicted
        raise KeyError(
            f"no profile for {model_name!r} at batch {batch_size} "
            f"(profiled batches: {self.profiled_batches(model_name)})"
        )

    def __contains__(self, key: Tuple[str, int]) -> bool:
        return key in self._profiles

    def __len__(self) -> int:
        return len(self._profiles)
