"""Linear cost models across batch sizes (paper §4.4, Figure 20).

Profiling every (model, batch size) pair is expensive, so Olympian
profiles a few common batch sizes and estimates node costs for others
with per-node linear regression: ``cost_i(b) = a_i + m_i * b``.  GPU
duration is fit the same way (it is a sum of per-node durations, each
approximately linear in batch).

The paper validates this with profiles at batches 50 and 100 predicting
batches 25, 75 and 150 — exactly the scenario our Figure 20 benchmark
reruns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .accounting import OlympianProfile

__all__ = ["LinearFit", "LinearProfileModel", "fit_linear", "fit_linear_profile_model"]


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line ``y = intercept + slope * x``."""

    intercept: float
    slope: float

    def predict(self, x: float) -> float:
        return self.intercept + self.slope * x


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Least-squares linear fit (requires >= 2 distinct x values)."""
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} xs vs {len(ys)} ys")
    if len(xs) < 2:
        raise ValueError("linear fit requires at least two points")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if np.ptp(x) == 0:
        raise ValueError("linear fit requires at least two distinct x values")
    slope, intercept = np.polyfit(x, y, 1)
    return LinearFit(intercept=float(intercept), slope=float(slope))


@dataclass
class LinearProfileModel:
    """Per-node linear cost models plus a GPU-duration model."""

    model_name: str
    node_fits: Dict[int, LinearFit]
    duration_fit: LinearFit
    runtime_fit: LinearFit
    fitted_batches: Tuple[int, ...]

    def predict(self, batch_size: int) -> OlympianProfile:
        """Predicted profile at ``batch_size``.

        Negative extrapolations are clamped to a small positive floor so
        a profile remains well-formed far outside the fitted range.
        """
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1: {batch_size}")
        node_costs = {
            node_id: max(fit.predict(batch_size), 1e-12)
            for node_id, fit in self.node_fits.items()
        }
        return OlympianProfile(
            model_name=self.model_name,
            batch_size=batch_size,
            node_costs=node_costs,
            gpu_duration=max(self.duration_fit.predict(batch_size), 1e-9),
            solo_runtime=max(self.runtime_fit.predict(batch_size), 0.0),
        )


def fit_linear_profile_model(
    profiles: List[OlympianProfile],
) -> LinearProfileModel:
    """Fit a :class:`LinearProfileModel` from >= 2 profiles of one model.

    Nodes present in any profile are fit over the profiles that contain
    them; nodes appearing in only one profile get a flat (slope-zero)
    model at the observed cost.
    """
    if len(profiles) < 2:
        raise ValueError("need at least two profiles to fit a linear model")
    names = {p.model_name for p in profiles}
    if len(names) != 1:
        raise ValueError(f"profiles span multiple models: {sorted(names)}")
    batches = [p.batch_size for p in profiles]
    if len(set(batches)) < 2:
        raise ValueError("profiles must cover at least two batch sizes")

    all_node_ids = set()
    for profile in profiles:
        all_node_ids.update(profile.node_costs)

    node_fits: Dict[int, LinearFit] = {}
    for node_id in all_node_ids:
        points = [
            (p.batch_size, p.node_costs[node_id])
            for p in profiles
            if node_id in p.node_costs
        ]
        if len(points) >= 2 and len({b for b, _ in points}) >= 2:
            xs, ys = zip(*points)
            node_fits[node_id] = fit_linear(xs, ys)
        else:
            node_fits[node_id] = LinearFit(intercept=points[0][1], slope=0.0)

    duration_fit = fit_linear(batches, [p.gpu_duration for p in profiles])
    runtime_fit = fit_linear(batches, [p.solo_runtime for p in profiles])
    return LinearProfileModel(
        model_name=profiles[0].model_name,
        node_fits=node_fits,
        duration_fit=duration_fit,
        runtime_fit=runtime_fit,
        fitted_batches=tuple(sorted(set(batches))),
    )
