"""Olympian's gang scheduler (paper Algorithm 2).

Mechanism
---------
At any moment at most one job — the *token holder* — may start new
nodes.  Gang threads call :meth:`GangScheduler.yield_` before every
compute (Algorithm 2 line 12); threads of non-holders park on their
job's condition variable.  When a quantum expires the scheduler asks the
policy for the next holder and wakes that job's gang (cooperative
co-scheduling, §3.2).

Two quantum definitions are provided:

* :class:`OlympianScheduler` — the paper's design: the quantum expires
  when the job's accumulated *profiled node cost* reaches
  ``T_j = Q * C_j / D_j`` (cost-accumulation accounting, §3.3).
* :class:`CpuTimerScheduler` — the §4.4 ablation: the quantum expires
  after ``Q`` of wall-clock time, no profiling.  Figure 19 shows why
  this is not enough.

Overflow semantics (Figures 10 and 15): a gang thread that has already
entered compute when the token moves finishes its node — its kernel may
run on the GPU after the switch — and the node's cost is still charged
to the original job's ``cumulated_cost``, exactly as the paper
describes.  This falls out of the hook placement: accounting happens in
``on_node_done``, on the thread that launched the node.

Beyond the paper, :class:`SpatioTemporalScheduler` generalises the
single token to a *set* of resident jobs on a multi-stream device
(``GpuSpec.streams > 1``): each resident holds a whole-stream
allocation derived from its weight share, keeps it for an Olympian
cost-accumulation time slice, and is then recycled through a seeded
weighted lottery over the waiters.  A DARIS-style oversubscription
factor lets real-time jobs (``priority > 0``) be admitted past the
physical budget.  See docs/SPATIAL.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set

from ..graph.node import Node
from ..sanitize import sim_sanitizer
from ..serving.hooks import SchedulerHook
from ..serving.request import Job
from ..sim.core import Process, Simulator
from ..sim.resources import ConditionVariable
from ..sim.rng import derive_seed
from .accounting import OlympianProfile, ProfileStore
from .policies import SchedulingPolicy
from .policies_ext import stream_allocation, validate_spatial_share

__all__ = [
    "SchedulingDecision",
    "Tenure",
    "Eviction",
    "GangScheduler",
    "OlympianScheduler",
    "CpuTimerScheduler",
    "SpatioTemporalScheduler",
    "DEFAULT_WAKE_LATENCY",
]

# Cost of getting a parked gang running again (condition-variable
# broadcast + OS scheduling + pipeline refill).  This is the per-switch
# overhead that makes the Overhead-Q curve fall with Q (Figure 8).
DEFAULT_WAKE_LATENCY = 60e-6


@dataclass(frozen=True)
class SchedulingDecision:
    """One token hand-off."""

    time: float
    prev_job_id: Optional[str]
    next_job_id: Optional[str]


@dataclass
class Tenure:
    """One contiguous token-holding span of a job (= one quantum)."""

    job_id: str
    client_id: object
    model_name: str
    start: float
    end: Optional[float] = None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError("tenure still open")
        return self.end - self.start


@dataclass(frozen=True)
class Eviction:
    """One forced removal of a job's gang by the scheduler."""

    time: float
    job_id: str
    reason: str


class GangScheduler(SchedulerHook):
    """Token + gang suspend/resume mechanics, policy- and quantum-agnostic."""

    name = "gang"

    def __init__(
        self,
        sim: Simulator,
        policy: SchedulingPolicy,
        wake_latency: float = DEFAULT_WAKE_LATENCY,
        stall_threshold: Optional[float] = None,
    ):
        if wake_latency < 0:
            raise ValueError(f"wake latency must be >= 0: {wake_latency}")
        if stall_threshold is not None and stall_threshold <= 0:
            raise ValueError(
                f"stall threshold must be positive: {stall_threshold}"
            )
        self.sim = sim
        self.policy = policy
        self.wake_latency = wake_latency
        self.stall_threshold = stall_threshold
        self.holder: Optional[Job] = None
        self.decisions: List[SchedulingDecision] = []
        self.tenures: List[Tenure] = []
        self.evictions: List[Eviction] = []
        self.switch_count = 0
        self._conditions: Dict[str, ConditionVariable] = {}
        self._current_tenure: Optional[Tenure] = None
        self._evicted: Set[str] = set()
        self._last_progress = 0.0
        self._watchdog: Optional[Process] = None
        # Set by Telemetry.attach(); emission is observation-only.
        self.telemetry = None
        # Armed process-wide by test harnesses (see repro.faults); a
        # checker observes decisions/charges without creating events.
        from ..faults.invariants import default_invariant_checker

        self.invariants = default_invariant_checker()
        if self.invariants is not None:
            self.invariants.attached(self)

    # ------------------------------------------------------------------
    # SchedulerHook interface
    # ------------------------------------------------------------------

    def register(self, job: Job) -> None:
        self._conditions[job.job_id] = ConditionVariable(self.sim)
        self._prepare_job(job)
        self.policy.on_register(job)
        self._last_progress = self.sim.now
        if self.invariants is not None:
            self.invariants.after_register(self, job)
        if self.holder is None:
            self._grant(job, prev=None, wake=False)
        self._start_watchdog()

    def on_cancel(self, job: Job) -> None:
        """Wake the job's parked gang so it can observe cancellation."""
        condition = self._conditions.get(job.job_id)
        if condition is not None:
            condition.notify_all()

    def on_fail(self, job: Job) -> None:
        """The job died (``job.failed`` already set): release its gang.

        Wakes parked threads so they drain, removes the job from the
        policy so the token cannot return to it, and reclaims the
        token if the dead job holds it.
        """
        self._release(job)

    def evict(self, job: Job, reason: str = "evicted by scheduler") -> None:
        """Forcibly remove a job's gang (stall watchdog, operator).

        The job is marked failed with a typed
        :class:`~repro.faults.errors.JobEvicted` cause; its ``done``
        event fails with :class:`~repro.serving.failures.JobFailed`
        once the gang drains.
        """
        if job.done.triggered or job.failed:
            return
        from ..faults.errors import JobEvicted

        job.failed = True
        job.failure = JobEvicted(job.job_id, reason)
        self.evictions.append(Eviction(self.sim.now, job.job_id, reason))
        if self.telemetry is not None:
            guard = sim_sanitizer.checkpoint(self)
            self.telemetry.emit(
                "sched.eviction",
                "scheduler",
                job_id=job.job_id,
                reason=reason,
            )
            sim_sanitizer.verify(self, guard, "sched.eviction")
        self._release(job)

    def _release(self, job: Job) -> None:
        """Common teardown for failed/evicted jobs.

        Every waiter parked on the job's condition variable MUST be
        woken here: a failed non-holder's threads are parked in
        ``yield_`` and nothing else will ever signal them (the latent
        deadlock this path exists to prevent).
        """
        if job.job_id not in self._evicted:
            self._evicted.add(job.job_id)
            if job in self.policy.active_jobs:
                self.policy.on_deregister(job)
        condition = self._conditions.get(job.job_id)
        if condition is not None:
            condition.notify_all()
        if self.holder is job:
            self._switch(job)

    def deregister(self, job: Job) -> None:
        # An evicted job was already removed from the policy (and its
        # waiters signalled) by _release; doing it twice would corrupt
        # policy state.
        if job.job_id in self._evicted:
            self._evicted.discard(job.job_id)
        else:
            self.policy.on_deregister(job)
        condition = self._conditions.pop(job.job_id, None)
        if condition is not None:
            condition.notify_all()
        self._forget_job(job)
        if self.holder is job:
            self._switch(job)
        if self.invariants is not None:
            self.invariants.after_deregister(self, job)

    def rollback(self, job: Job) -> float:
        """Failure recovery: discard a dead attempt's cost residue.

        Called by :mod:`repro.recovery` after a device crash killed
        ``job``, before its replacement attempt is submitted.  The
        live accumulator is zeroed (the replayed attempt re-executes
        from the session start, so carrying the dead attempt's partial
        charges would bill the client twice for the same nodes) and the
        invariant checker is told to close the attempt's books — this
        is what "no fairness accumulator leaks across a reset" means
        operationally.  Returns the residue dropped.
        """
        residue = job.cumulated_cost
        job.cumulated_cost = 0.0
        if self.invariants is not None:
            self.invariants.after_rollback(self, job, residue)
        return residue

    def needs_yield(self, job: Job) -> bool:
        """A gang thread must park iff its job does not hold the token.

        Mirrors the guards in :meth:`yield_`: aborted or unregistered
        jobs drain without waiting, so they never need the generator.
        """
        return (
            self.holder is not job
            and not job.aborted
            and job.job_id in self._conditions
        )

    def yield_(self, job: Job) -> Iterator:
        while self.holder is not job:
            if job.aborted:
                # Cancelled/failed jobs drain without waiting for the
                # token; waiting would deadlock (no future grant).
                return
            condition = self._conditions.get(job.job_id)
            if condition is None:
                # Defensive: an unregistered job is never blocked.
                return
            yield condition.wait()

    def on_node_done(self, job: Job, node: Node) -> None:
        """Base bookkeeping: node completions are gang progress."""
        self._last_progress = self.sim.now

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------

    def _prepare_job(self, job: Job) -> None:
        """Called on register, before the policy sees the job."""

    def _forget_job(self, job: Job) -> None:
        """Called on deregister."""

    # ------------------------------------------------------------------
    # Stall watchdog
    # ------------------------------------------------------------------

    def _start_watchdog(self) -> None:
        if self.stall_threshold is None:
            return
        if self._watchdog is not None and self._watchdog.is_alive:
            return
        self._watchdog = self.sim.process(
            self._watchdog_body(), name=f"watchdog:{self.name}"
        )

    def _watchdog_body(self) -> Iterator:
        """Evict the holder if no node completes for a full threshold.

        The watchdog only lives while jobs are registered, so an idle
        scheduler does not keep the simulation's event queue non-empty
        forever.
        """
        threshold = self.stall_threshold
        assert threshold is not None
        while self._conditions:
            yield self.sim.timeout(threshold)
            holder = self.holder
            if (
                holder is not None
                and not holder.aborted
                and not holder.done.triggered
                and self.sim.now - self._last_progress >= threshold
            ):
                self.evict(
                    holder,
                    reason=(
                        f"no progress for {self.sim.now - self._last_progress:.6f}s "
                        f"(stall threshold {threshold:.6f}s)"
                    ),
                )
        self._watchdog = None

    # ------------------------------------------------------------------
    # Token machinery
    # ------------------------------------------------------------------

    def _switch(self, from_job: Job) -> None:
        """Quantum boundary: hand the token to the policy's next choice."""
        nxt = self.policy.select_next(from_job)
        self._grant(nxt, prev=from_job, wake=True)

    def _grant(self, job: Optional[Job], prev: Optional[Job], wake: bool) -> None:
        now = self.sim.now
        telemetry = self.telemetry
        if self._current_tenure is not None:
            self._current_tenure.end = now
            if telemetry is not None:
                guard = sim_sanitizer.checkpoint(self)
                telemetry.emit(
                    "sched.tenure_end",
                    "scheduler",
                    job_id=self._current_tenure.job_id,
                    model=self._current_tenure.model_name,
                    duration=now - self._current_tenure.start,
                )
                sim_sanitizer.verify(self, guard, "sched.tenure_end")
            self.tenures.append(self._current_tenure)
            self._current_tenure = None
        decision = SchedulingDecision(
            time=now,
            prev_job_id=prev.job_id if prev is not None else None,
            next_job_id=job.job_id if job is not None else None,
        )
        self.decisions.append(decision)
        self.holder = job
        if telemetry is not None:
            guard = sim_sanitizer.checkpoint(self)
            telemetry.emit(
                "sched.decision",
                "scheduler",
                prev_job_id=decision.prev_job_id,
                next_job_id=decision.next_job_id,
            )
            sim_sanitizer.verify(self, guard, "sched.decision")
        if self.invariants is not None:
            self.invariants.after_decision(self, decision)
        if job is None:
            return
        self._current_tenure = Tenure(
            job_id=job.job_id,
            client_id=job.client_id,
            model_name=job.model_name,
            start=now,
        )
        if telemetry is not None:
            guard = sim_sanitizer.checkpoint(self)
            # prev_job_id names the tenant this grant displaced — the
            # head-of-line blocker the blame engine charges the wait to.
            telemetry.emit(
                "sched.tenure_begin",
                "scheduler",
                job_id=job.job_id,
                model=job.model_name,
                prev_job_id=decision.prev_job_id,
            )
            sim_sanitizer.verify(self, guard, "sched.tenure_begin")
        if job is not prev:
            self.switch_count += 1
            if wake:
                condition = self._conditions.get(job.job_id)
                if condition is not None:
                    condition.notify_all(self.wake_latency)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def closed_tenures(self) -> List[Tenure]:
        return list(self.tenures)

    def decision_times(self) -> List[float]:
        return [decision.time for decision in self.decisions]

    def _sanitize_state(self):
        """Decision state checksummed around telemetry seams.

        Everything a scheduling decision depends on, as plain values:
        if an observer mutates any of it while emitting, the sanitizer
        (:mod:`repro.sanitize`) catches the drift at the seam instead
        of leaving it to show up as a digest mismatch three layers up.
        """
        return (
            self.holder.job_id if self.holder is not None else None,
            self.switch_count,
            len(self.decisions),
            len(self.tenures),
            len(self.evictions),
            tuple(
                (job.job_id, job.cumulated_cost)
                for job in self.policy.active_jobs
            ),
        )


class OlympianScheduler(GangScheduler):
    """The paper's scheduler: cost-accumulation quanta from offline profiles."""

    name = "olympian"

    def __init__(
        self,
        sim: Simulator,
        policy: SchedulingPolicy,
        quantum: float,
        profiles: ProfileStore,
        wake_latency: float = DEFAULT_WAKE_LATENCY,
        stall_threshold: Optional[float] = None,
    ):
        super().__init__(sim, policy, wake_latency, stall_threshold=stall_threshold)
        if quantum <= 0:
            raise ValueError(f"quantum must be positive: {quantum}")
        self.quantum = quantum
        self.profiles = profiles
        self._job_profiles: Dict[str, OlympianProfile] = {}
        self._thresholds: Dict[str, float] = {}

    def _prepare_job(self, job: Job) -> None:
        profile = self.profiles.lookup(job.model_name, job.batch_size)
        self._job_profiles[job.job_id] = profile
        self._thresholds[job.job_id] = profile.threshold(self.quantum)

    def _forget_job(self, job: Job) -> None:
        self._job_profiles.pop(job.job_id, None)
        self._thresholds.pop(job.job_id, None)

    def threshold_of(self, job: Job) -> float:
        return self._thresholds[job.job_id]

    def on_node_done(self, job: Job, node: Node) -> None:
        """Algorithm 2 lines 14-18: accumulate cost, maybe hand off."""
        super().on_node_done(job, node)
        if not node.is_gpu:
            return
        profile = self._job_profiles.get(job.job_id)
        if profile is None:
            return
        cost = profile.cost(node.node_id)
        job.cumulated_cost += cost
        if self.invariants is not None:
            self.invariants.after_charge(self, job, cost)
        threshold = self._thresholds[job.job_id]
        # Only a holder's threshold crossing triggers a hand-off; an
        # overflow node of a switched-out job keeps accumulating and
        # shortens that job's *next* quantum instead (Figure 15).
        if self.holder is job and job.cumulated_cost >= threshold:
            job.cumulated_cost -= threshold
            if self.invariants is not None:
                self.invariants.after_quantum(self, job, threshold)
            self._switch(job)


class CpuTimerScheduler(GangScheduler):
    """Ablation (§4.4): wall-clock quanta, no GPU-usage profiling.

    The gang mechanics are identical to Olympian's; only the expiry test
    differs — elapsed wall time since the tenure began, checked at node
    boundaries (the switch is still cooperative).  Figure 19 shows this
    produces unequal finish times on homogeneous workloads and wildly
    varying GPU durations on heterogeneous ones, because a wall-clock
    quantum buys very different amounts of GPU time depending on the
    job's current CPU/GPU phase.
    """

    name = "cpu-timer"

    def __init__(
        self,
        sim: Simulator,
        policy: SchedulingPolicy,
        quantum: float,
        wake_latency: float = DEFAULT_WAKE_LATENCY,
        stall_threshold: Optional[float] = None,
    ):
        super().__init__(sim, policy, wake_latency, stall_threshold=stall_threshold)
        if quantum <= 0:
            raise ValueError(f"quantum must be positive: {quantum}")
        self.quantum = quantum

    def on_node_done(self, job: Job, node: Node) -> None:
        super().on_node_done(job, node)
        if self.holder is not job or self._current_tenure is None:
            return
        if self.sim.now - self._current_tenure.start >= self.quantum:
            self._switch(job)


class SpatioTemporalScheduler(OlympianScheduler):
    """Spatial + temporal sharing for a multi-stream device.

    Generalises the token to a resident *set*: up to ``streams`` worth
    of stream allocations are outstanding at once, each derived from
    the job's weight share of the registered population
    (:func:`~repro.core.policies_ext.stream_allocation`).  A resident
    keeps its allocation for one Olympian cost-accumulation slice
    (``T_j = Q * C_j / D_j``, same accounting as the temporal
    scheduler); when the slice expires *and* other jobs are waiting,
    the resident is demoted and the freed capacity is re-filled by a
    seeded weighted lottery over the eligible waiters — temporal
    multiplexing of the spatial shares.

    ``oversubscription > 1.0`` enables the DARIS-style real-time mode:
    jobs with ``priority > 0`` may be admitted while total allocations
    are below ``streams * oversubscription`` (a logical budget — the
    physical engine still arbitrates its ``streams`` lanes), which
    bounds their admission latency at the cost of background
    interference.

    Differences from the token machinery this class inherits:
    ``holder`` stays ``None`` (no single token exists), concurrent
    tenures legitimately overlap, and admissions are reported to the
    invariant checker via ``after_spatial_admission`` rather than
    ``after_decision`` (whose single-holder assertions do not apply).
    ``decisions``/``tenures``/``evictions`` are still populated, so
    trace digests cover every admission.  The stall watchdog is inert
    (it guards the holder).
    """

    name = "spatio-temporal"

    def __init__(
        self,
        sim: Simulator,
        policy: SchedulingPolicy,
        quantum: float,
        profiles: ProfileStore,
        streams: int,
        wake_latency: float = DEFAULT_WAKE_LATENCY,
        stall_threshold: Optional[float] = None,
        oversubscription: float = 1.0,
        seed: int = 0,
    ):
        super().__init__(
            sim,
            policy,
            quantum,
            profiles,
            wake_latency,
            stall_threshold=stall_threshold,
        )
        if streams < 1:
            raise ValueError(f"streams must be >= 1: {streams}")
        if oversubscription < 1.0:
            raise ValueError(
                f"oversubscription must be >= 1.0: {oversubscription}"
            )
        self.streams = streams
        self.oversubscription = oversubscription
        # Namespaced so a shared experiment seed cannot correlate the
        # admission lottery with any other component's draws.
        self.rng = random.Random(derive_seed(seed, "sched:spatial"))
        self._alloc: Dict[str, int] = {}
        self._waiting: List[Job] = []
        self._share_overrides: Dict[str, float] = {}
        self._open_tenures: Dict[str, Tenure] = {}

    # ------------------------------------------------------------------
    # Shares and allocations
    # ------------------------------------------------------------------

    def set_share(self, job: Job, share: float) -> None:
        """Override ``job``'s GPU share (fraction of the device).

        Shares above 1.0 are rejected unless oversubscription is
        enabled (DARIS real-time mode).
        """
        validate_spatial_share(share, self.oversubscription)
        self._share_overrides[job.job_id] = share

    def share_of(self, job: Job) -> float:
        """``job``'s fractional device share (override or weight share)."""
        override = self._share_overrides.get(job.job_id)
        if override is not None:
            return override
        total = sum(peer.weight for peer in self.policy.active_jobs)
        if total <= 0:
            return 1.0
        return job.weight / total

    def allocation_of(self, job: Job) -> int:
        """Whole streams ``job`` gets when admitted."""
        return stream_allocation(min(1.0, self.share_of(job)), self.streams)

    def resident_shares(self) -> Dict[str, float]:
        """Fraction of the device each *resident* job currently holds."""
        return {
            job_id: alloc / self.streams
            for job_id, alloc in self._alloc.items()
        }

    def allowed_concurrency(self, job_id: str) -> int:
        """Device-side concurrency bound for ``job_id``.

        Non-residents get 1 — the overflow lane: a kernel launched just
        before demotion may still run (the temporal scheduler's
        overflow semantics, Figure 10), but a waiting job cannot expand.
        """
        return self._alloc.get(job_id, 1)

    def _is_rt(self, job: Job) -> bool:
        return self.oversubscription > 1.0 and job.priority > 0

    def _rt_budget(self) -> int:
        return int(self.streams * self.oversubscription + 1e-9)

    # ------------------------------------------------------------------
    # Hook overrides (no single token)
    # ------------------------------------------------------------------

    def register(self, job: Job) -> None:
        self._conditions[job.job_id] = ConditionVariable(self.sim)
        self._prepare_job(job)
        self.policy.on_register(job)
        self._last_progress = self.sim.now
        if self.invariants is not None:
            self.invariants.after_register(self, job)
        self._waiting.append(job)
        self._fill(prev=None)
        self._start_watchdog()

    def needs_yield(self, job: Job) -> bool:
        return (
            job.job_id not in self._alloc
            and not job.aborted
            and job.job_id in self._conditions
        )

    def yield_(self, job: Job) -> Iterator:
        while job.job_id not in self._alloc:
            if job.aborted:
                return
            condition = self._conditions.get(job.job_id)
            if condition is None:
                return
            yield condition.wait()

    def on_node_done(self, job: Job, node: Node) -> None:
        GangScheduler.on_node_done(self, job, node)
        if not node.is_gpu:
            return
        profile = self._job_profiles.get(job.job_id)
        if profile is None:
            return
        cost = profile.cost(node.node_id)
        job.cumulated_cost += cost
        if self.invariants is not None:
            self.invariants.after_charge(self, job, cost)
        threshold = self._thresholds[job.job_id]
        if job.job_id in self._alloc and job.cumulated_cost >= threshold:
            job.cumulated_cost -= threshold
            if self.invariants is not None:
                self.invariants.after_quantum(self, job, threshold)
            # Time-slice expiry.  Work-conserving: the resident only
            # cedes its streams when somebody is waiting for them.
            if self._waiting:
                self._demote(job)
                self._fill(prev=job)

    def _release(self, job: Job) -> None:
        super()._release(job)
        self._drop(job)

    def deregister(self, job: Job) -> None:
        self._drop(job)
        super().deregister(job)

    # ------------------------------------------------------------------
    # Residency machinery
    # ------------------------------------------------------------------

    def _drop(self, job: Job) -> None:
        """Remove ``job`` from the spatial books and re-fill its slot."""
        if job in self._waiting:
            self._waiting.remove(job)
        if job.job_id in self._alloc:
            self._retire(job)
            self._fill(prev=job)

    def _retire(self, job: Job) -> None:
        """Close ``job``'s tenure and free its streams."""
        del self._alloc[job.job_id]
        tenure = self._open_tenures.pop(job.job_id, None)
        if tenure is not None:
            tenure.end = self.sim.now
            self.tenures.append(tenure)
            if self.telemetry is not None:
                guard = sim_sanitizer.checkpoint(self)
                self.telemetry.emit(
                    "sched.tenure_end",
                    "scheduler",
                    job_id=tenure.job_id,
                    model=tenure.model_name,
                    duration=tenure.end - tenure.start,
                )
                sim_sanitizer.verify(self, guard, "sched.tenure_end")

    def _demote(self, job: Job) -> None:
        """Time slice over: back to the waiters' queue."""
        self._retire(job)
        self._waiting.append(job)

    def _fill(self, prev: Optional[Job]) -> None:
        """Admit waiters while capacity remains (seeded weighted lottery).

        ``prev`` names the job whose demotion/departure freed the
        capacity; it is recorded on the first admission's decision so
        hand-offs are visible in the decision log.
        """
        while self._waiting:
            used = sum(self._alloc.values())
            eligible = []
            for job in self._waiting:
                if job.aborted or job.failed:
                    continue
                cap = self._rt_budget() if self._is_rt(job) else self.streams
                if used + self.allocation_of(job) <= cap:
                    eligible.append(job)
            if not eligible:
                return
            if len(eligible) == 1:
                chosen = eligible[0]
            else:
                total = sum(job.weight for job in eligible)
                draw = self.rng.uniform(0.0, total)
                acc = 0.0
                chosen = eligible[-1]
                for job in eligible:
                    acc += job.weight
                    if draw <= acc:
                        chosen = job
                        break
            self._waiting.remove(chosen)
            self._admit(chosen, prev)
            prev = None

    def _admit(self, job: Job, prev: Optional[Job]) -> None:
        now = self.sim.now
        self._alloc[job.job_id] = self.allocation_of(job)
        decision = SchedulingDecision(
            time=now,
            prev_job_id=prev.job_id if prev is not None else None,
            next_job_id=job.job_id,
        )
        self.decisions.append(decision)
        tenure = Tenure(
            job_id=job.job_id,
            client_id=job.client_id,
            model_name=job.model_name,
            start=now,
        )
        self._open_tenures[job.job_id] = tenure
        self.switch_count += 1
        telemetry = self.telemetry
        if telemetry is not None:
            # Two back-to-back emits with no interleaved scheduler
            # mutation: one checkpoint covers the pair.
            guard = sim_sanitizer.checkpoint(self)
            telemetry.emit(
                "sched.decision",
                "scheduler",
                prev_job_id=decision.prev_job_id,
                next_job_id=decision.next_job_id,
            )
            telemetry.emit(
                "sched.tenure_begin",
                "scheduler",
                job_id=job.job_id,
                model=job.model_name,
                streams=self._alloc[job.job_id],
                prev_job_id=decision.prev_job_id,
            )
            sim_sanitizer.verify(self, guard, "sched.admission")
        if self.invariants is not None:
            self.invariants.after_spatial_admission(self)
        condition = self._conditions.get(job.job_id)
        if condition is not None:
            condition.notify_all(self.wake_latency)

    def _sanitize_state(self):
        """Spatial books + lottery RNG on top of the gang state."""
        return super()._sanitize_state() + (
            tuple(sorted(self._alloc.items())),
            tuple(job.job_id for job in self._waiting),
            self.rng.getstate(),
        )
