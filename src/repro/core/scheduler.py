"""Olympian's gang scheduler (paper Algorithm 2).

Mechanism
---------
At any moment at most one job — the *token holder* — may start new
nodes.  Gang threads call :meth:`GangScheduler.yield_` before every
compute (Algorithm 2 line 12); threads of non-holders park on their
job's condition variable.  When a quantum expires the scheduler asks the
policy for the next holder and wakes that job's gang (cooperative
co-scheduling, §3.2).

Two quantum definitions are provided:

* :class:`OlympianScheduler` — the paper's design: the quantum expires
  when the job's accumulated *profiled node cost* reaches
  ``T_j = Q * C_j / D_j`` (cost-accumulation accounting, §3.3).
* :class:`CpuTimerScheduler` — the §4.4 ablation: the quantum expires
  after ``Q`` of wall-clock time, no profiling.  Figure 19 shows why
  this is not enough.

Overflow semantics (Figures 10 and 15): a gang thread that has already
entered compute when the token moves finishes its node — its kernel may
run on the GPU after the switch — and the node's cost is still charged
to the original job's ``cumulated_cost``, exactly as the paper
describes.  This falls out of the hook placement: accounting happens in
``on_node_done``, on the thread that launched the node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..graph.node import Node
from ..serving.hooks import SchedulerHook
from ..serving.request import Job
from ..sim.core import Simulator
from ..sim.resources import ConditionVariable
from .accounting import OlympianProfile, ProfileStore
from .policies import SchedulingPolicy

__all__ = [
    "SchedulingDecision",
    "Tenure",
    "GangScheduler",
    "OlympianScheduler",
    "CpuTimerScheduler",
    "DEFAULT_WAKE_LATENCY",
]

# Cost of getting a parked gang running again (condition-variable
# broadcast + OS scheduling + pipeline refill).  This is the per-switch
# overhead that makes the Overhead-Q curve fall with Q (Figure 8).
DEFAULT_WAKE_LATENCY = 60e-6


@dataclass(frozen=True)
class SchedulingDecision:
    """One token hand-off."""

    time: float
    prev_job_id: Optional[str]
    next_job_id: Optional[str]


@dataclass
class Tenure:
    """One contiguous token-holding span of a job (= one quantum)."""

    job_id: str
    client_id: object
    model_name: str
    start: float
    end: Optional[float] = None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError("tenure still open")
        return self.end - self.start


class GangScheduler(SchedulerHook):
    """Token + gang suspend/resume mechanics, policy- and quantum-agnostic."""

    name = "gang"

    def __init__(
        self,
        sim: Simulator,
        policy: SchedulingPolicy,
        wake_latency: float = DEFAULT_WAKE_LATENCY,
    ):
        if wake_latency < 0:
            raise ValueError(f"wake latency must be >= 0: {wake_latency}")
        self.sim = sim
        self.policy = policy
        self.wake_latency = wake_latency
        self.holder: Optional[Job] = None
        self.decisions: List[SchedulingDecision] = []
        self.tenures: List[Tenure] = []
        self.switch_count = 0
        self._conditions: Dict[str, ConditionVariable] = {}
        self._current_tenure: Optional[Tenure] = None

    # ------------------------------------------------------------------
    # SchedulerHook interface
    # ------------------------------------------------------------------

    def register(self, job: Job) -> None:
        self._conditions[job.job_id] = ConditionVariable(self.sim)
        self._prepare_job(job)
        self.policy.on_register(job)
        if self.holder is None:
            self._grant(job, prev=None, wake=False)

    def on_cancel(self, job: Job) -> None:
        """Wake the job's parked gang so it can observe cancellation."""
        condition = self._conditions.get(job.job_id)
        if condition is not None:
            condition.notify_all()

    def deregister(self, job: Job) -> None:
        self.policy.on_deregister(job)
        condition = self._conditions.pop(job.job_id, None)
        if condition is not None:
            condition.notify_all()
        self._forget_job(job)
        if self.holder is job:
            self._switch(job)

    def yield_(self, job: Job) -> Iterator:
        while self.holder is not job:
            if job.cancelled:
                # Cancelled jobs drain without waiting for the token.
                return
            condition = self._conditions.get(job.job_id)
            if condition is None:
                # Defensive: an unregistered job is never blocked.
                return
            yield condition.wait()

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------

    def _prepare_job(self, job: Job) -> None:
        """Called on register, before the policy sees the job."""

    def _forget_job(self, job: Job) -> None:
        """Called on deregister."""

    # ------------------------------------------------------------------
    # Token machinery
    # ------------------------------------------------------------------

    def _switch(self, from_job: Job) -> None:
        """Quantum boundary: hand the token to the policy's next choice."""
        nxt = self.policy.select_next(from_job)
        self._grant(nxt, prev=from_job, wake=True)

    def _grant(self, job: Optional[Job], prev: Optional[Job], wake: bool) -> None:
        now = self.sim.now
        if self._current_tenure is not None:
            self._current_tenure.end = now
            self.tenures.append(self._current_tenure)
            self._current_tenure = None
        self.decisions.append(
            SchedulingDecision(
                time=now,
                prev_job_id=prev.job_id if prev is not None else None,
                next_job_id=job.job_id if job is not None else None,
            )
        )
        self.holder = job
        if job is None:
            return
        self._current_tenure = Tenure(
            job_id=job.job_id,
            client_id=job.client_id,
            model_name=job.model_name,
            start=now,
        )
        if job is not prev:
            self.switch_count += 1
            if wake:
                condition = self._conditions.get(job.job_id)
                if condition is not None:
                    condition.notify_all(self.wake_latency)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def closed_tenures(self) -> List[Tenure]:
        return list(self.tenures)

    def decision_times(self) -> List[float]:
        return [decision.time for decision in self.decisions]


class OlympianScheduler(GangScheduler):
    """The paper's scheduler: cost-accumulation quanta from offline profiles."""

    name = "olympian"

    def __init__(
        self,
        sim: Simulator,
        policy: SchedulingPolicy,
        quantum: float,
        profiles: ProfileStore,
        wake_latency: float = DEFAULT_WAKE_LATENCY,
    ):
        super().__init__(sim, policy, wake_latency)
        if quantum <= 0:
            raise ValueError(f"quantum must be positive: {quantum}")
        self.quantum = quantum
        self.profiles = profiles
        self._job_profiles: Dict[str, OlympianProfile] = {}
        self._thresholds: Dict[str, float] = {}

    def _prepare_job(self, job: Job) -> None:
        profile = self.profiles.lookup(job.model_name, job.batch_size)
        self._job_profiles[job.job_id] = profile
        self._thresholds[job.job_id] = profile.threshold(self.quantum)

    def _forget_job(self, job: Job) -> None:
        self._job_profiles.pop(job.job_id, None)
        self._thresholds.pop(job.job_id, None)

    def threshold_of(self, job: Job) -> float:
        return self._thresholds[job.job_id]

    def on_node_done(self, job: Job, node: Node) -> None:
        """Algorithm 2 lines 14-18: accumulate cost, maybe hand off."""
        if not node.is_gpu:
            return
        profile = self._job_profiles.get(job.job_id)
        if profile is None:
            return
        job.cumulated_cost += profile.cost(node.node_id)
        threshold = self._thresholds[job.job_id]
        # Only a holder's threshold crossing triggers a hand-off; an
        # overflow node of a switched-out job keeps accumulating and
        # shortens that job's *next* quantum instead (Figure 15).
        if self.holder is job and job.cumulated_cost >= threshold:
            job.cumulated_cost -= threshold
            self._switch(job)


class CpuTimerScheduler(GangScheduler):
    """Ablation (§4.4): wall-clock quanta, no GPU-usage profiling.

    The gang mechanics are identical to Olympian's; only the expiry test
    differs — elapsed wall time since the tenure began, checked at node
    boundaries (the switch is still cooperative).  Figure 19 shows this
    produces unequal finish times on homogeneous workloads and wildly
    varying GPU durations on heterogeneous ones, because a wall-clock
    quantum buys very different amounts of GPU time depending on the
    job's current CPU/GPU phase.
    """

    name = "cpu-timer"

    def __init__(
        self,
        sim: Simulator,
        policy: SchedulingPolicy,
        quantum: float,
        wake_latency: float = DEFAULT_WAKE_LATENCY,
    ):
        super().__init__(sim, policy, wake_latency)
        if quantum <= 0:
            raise ValueError(f"quantum must be positive: {quantum}")
        self.quantum = quantum

    def on_node_done(self, job: Job, node: Node) -> None:
        if self.holder is not job or self._current_tenure is None:
            return
        if self.sim.now - self._current_tenure.start >= self.quantum:
            self._switch(job)
