"""Persistence for profiler outputs.

Olympian's profiles are computed offline and consumed by serving
processes later (Figure 7: the profiler feeds TF-Serving through stored
models of GPU resource usage), so they need a storage format.  This
module serialises :class:`OlympianProfile`, :class:`ProfileStore`,
Overhead-Q curves and complete :class:`ProfilerOutput` bundles to JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from .accounting import OlympianProfile, ProfileStore
from .profiler import ProfilerOutput
from .quantum import OverheadQCurve

__all__ = [
    "profile_to_dict",
    "profile_from_dict",
    "store_to_dict",
    "store_from_dict",
    "curve_to_dict",
    "curve_from_dict",
    "output_to_dict",
    "output_from_dict",
    "save_profiler_output",
    "load_profiler_output",
]

_PathLike = Union[str, Path]


def profile_to_dict(profile: OlympianProfile) -> Dict[str, Any]:
    return {
        "model_name": profile.model_name,
        "batch_size": profile.batch_size,
        "node_costs": {str(k): v for k, v in profile.node_costs.items()},
        "gpu_duration": profile.gpu_duration,
        "solo_runtime": profile.solo_runtime,
    }


def profile_from_dict(data: Dict[str, Any]) -> OlympianProfile:
    return OlympianProfile(
        model_name=data["model_name"],
        batch_size=data["batch_size"],
        node_costs={int(k): v for k, v in data["node_costs"].items()},
        gpu_duration=data["gpu_duration"],
        solo_runtime=data.get("solo_runtime", 0.0),
    )


def store_to_dict(store: ProfileStore) -> Dict[str, Any]:
    profiles = []
    for (model, batch) in sorted(
        (key for key in store._profiles), key=lambda k: (k[0], k[1])
    ):
        profiles.append(profile_to_dict(store.exact(model, batch)))
    return {
        "allow_regression": store.allow_regression,
        "profiles": profiles,
    }


def store_from_dict(data: Dict[str, Any]) -> ProfileStore:
    store = ProfileStore(allow_regression=data.get("allow_regression", True))
    for entry in data["profiles"]:
        store.add(profile_from_dict(entry))
    return store


def curve_to_dict(curve: OverheadQCurve) -> Dict[str, Any]:
    return {
        "model_name": curve.model_name,
        "batch_size": curve.batch_size,
        "points": [[q, o] for q, o in curve.points],
    }


def curve_from_dict(data: Dict[str, Any]) -> OverheadQCurve:
    return OverheadQCurve(
        model_name=data["model_name"],
        batch_size=data["batch_size"],
        points=[(q, o) for q, o in data["points"]],
    )


def output_to_dict(output: ProfilerOutput) -> Dict[str, Any]:
    return {
        "quantum": output.quantum,
        "tolerance": output.tolerance,
        "store": store_to_dict(output.store),
        "curves": [curve_to_dict(curve) for curve in output.curves],
    }


def output_from_dict(data: Dict[str, Any]) -> ProfilerOutput:
    return ProfilerOutput(
        quantum=data["quantum"],
        store=store_from_dict(data["store"]),
        curves=[curve_from_dict(entry) for entry in data["curves"]],
        tolerance=data.get("tolerance", 0.025),
    )


def save_profiler_output(output: ProfilerOutput, path: _PathLike) -> None:
    """Persist a complete profiler bundle (profiles, curves, Q)."""
    Path(path).write_text(json.dumps(output_to_dict(output), indent=2))


def load_profiler_output(path: _PathLike) -> ProfilerOutput:
    return output_from_dict(json.loads(Path(path).read_text()))
