"""Runtime drift detection for Olympian's offline profiles.

The paper's correctness rests on DNN predictability; its discussion
(§7.3) notes that "continuous monitoring or adaptive re-profiling might
be needed" if models stop behaving like their profiles.  This module is
that monitor: it watches the per-quantum GPU durations the scheduler
actually delivers and compares their rolling mean against the
configured quantum ``Q``.  A sustained deviation beyond tolerance means
the cost-accumulation thresholds no longer translate into the intended
GPU time — a stale or wrong profile — and triggers a callback (e.g. to
kick off re-profiling).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from ..serving.server import ModelServer
from .scheduler import OlympianScheduler

__all__ = ["DriftAlert", "QuantumMonitor"]


@dataclass(frozen=True)
class DriftAlert:
    """One detected deviation between delivered quanta and Q."""

    time: float
    model_name: str
    observed_mean: float
    expected: float

    @property
    def relative_error(self) -> float:
        return (self.observed_mean - self.expected) / self.expected


class QuantumMonitor:
    """Rolling per-model check of delivered quantum durations.

    Call :meth:`scan` periodically (or once at the end of a run); it
    consumes newly closed tenures, maintains a rolling window of GPU
    durations per model, and raises an alert whenever a full window's
    mean deviates from ``Q`` by more than ``tolerance``.
    """

    def __init__(
        self,
        server: ModelServer,
        scheduler: OlympianScheduler,
        tolerance: float = 0.25,
        window: int = 32,
        on_drift: Optional[Callable[[DriftAlert], None]] = None,
    ):
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive: {tolerance}")
        if window < 4:
            raise ValueError(f"window must be >= 4: {window}")
        self.server = server
        self.scheduler = scheduler
        self.tolerance = tolerance
        self.window = window
        self.on_drift = on_drift
        self.alerts: List[DriftAlert] = []
        self._consumed = 0
        self._rolling: Dict[str, Deque[float]] = {}
        self._alerted_models: set = set()

    def scan(self) -> List[DriftAlert]:
        """Process tenures closed since the last scan; return new alerts."""
        tenures = self.scheduler.closed_tenures()
        new_alerts: List[DriftAlert] = []
        for tenure in tenures[self._consumed:]:
            if tenure.end is None:
                continue
            duration = self.server.tracer.duration_between(
                tenure.job_id, tenure.start, tenure.end
            )
            rolling = self._rolling.setdefault(
                tenure.model_name, deque(maxlen=self.window)
            )
            rolling.append(duration)
            if len(rolling) == self.window:
                observed = sum(rolling) / len(rolling)
                expected = self.scheduler.quantum
                if abs(observed - expected) > self.tolerance * expected:
                    if tenure.model_name not in self._alerted_models:
                        alert = DriftAlert(
                            time=tenure.end,
                            model_name=tenure.model_name,
                            observed_mean=observed,
                            expected=expected,
                        )
                        new_alerts.append(alert)
                        self._alerted_models.add(tenure.model_name)
                        if self.on_drift is not None:
                            self.on_drift(alert)
        self._consumed = len(tenures)
        self.alerts.extend(new_alerts)
        return new_alerts

    def reset_model(self, model_name: str) -> None:
        """Forget a model's history (call after re-profiling it)."""
        self._rolling.pop(model_name, None)
        self._alerted_models.discard(model_name)

    @property
    def drifting_models(self) -> List[str]:
        return sorted(self._alerted_models)
