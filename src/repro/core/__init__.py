"""Olympian: the paper's contribution.

Offline profiler, cost-accumulation accounting, gang scheduler, and the
three scheduling policies (fair, weighted fair, priority), plus the
CPU-timer ablation.
"""

from .accounting import OlympianProfile, ProfileStore
from .policies import (
    FairSharing,
    PriorityScheduling,
    SchedulingPolicy,
    WeightedFairSharing,
)
from .policies_ext import (
    AgedPriorityScheduling,
    DeficitRoundRobin,
    EarliestDeadlineFirst,
    LotteryScheduling,
    ShortestRemainingWork,
    stream_allocation,
    validate_spatial_share,
)
from .monitor import DriftAlert, QuantumMonitor
from .persistence import (
    load_profiler_output,
    output_from_dict,
    output_to_dict,
    save_profiler_output,
    store_from_dict,
    store_to_dict,
)
from .profiler import OfflineProfiler, ProfilerOutput, SoloRun
from .quantum import DEFAULT_Q_GRID, OverheadQCurve, select_quantum
from .regression import (
    LinearFit,
    LinearProfileModel,
    fit_linear,
    fit_linear_profile_model,
)
from .scheduler import (
    DEFAULT_WAKE_LATENCY,
    CpuTimerScheduler,
    Eviction,
    GangScheduler,
    OlympianScheduler,
    SchedulingDecision,
    SpatioTemporalScheduler,
    Tenure,
)

__all__ = [
    "OlympianProfile",
    "ProfileStore",
    "FairSharing",
    "PriorityScheduling",
    "SchedulingPolicy",
    "WeightedFairSharing",
    "AgedPriorityScheduling",
    "DeficitRoundRobin",
    "EarliestDeadlineFirst",
    "LotteryScheduling",
    "ShortestRemainingWork",
    "stream_allocation",
    "validate_spatial_share",
    "DriftAlert",
    "QuantumMonitor",
    "load_profiler_output",
    "output_from_dict",
    "output_to_dict",
    "save_profiler_output",
    "store_from_dict",
    "store_to_dict",
    "OfflineProfiler",
    "ProfilerOutput",
    "SoloRun",
    "DEFAULT_Q_GRID",
    "OverheadQCurve",
    "select_quantum",
    "LinearFit",
    "LinearProfileModel",
    "fit_linear",
    "fit_linear_profile_model",
    "DEFAULT_WAKE_LATENCY",
    "CpuTimerScheduler",
    "Eviction",
    "GangScheduler",
    "OlympianScheduler",
    "SchedulingDecision",
    "SpatioTemporalScheduler",
    "Tenure",
]
