"""Extended scheduling policies beyond the paper's three (§7.2).

The paper implements fair, weighted-fair and priority scheduling and
lists "expanding the set of supported policies" as future work.  These
policies plug into the same :class:`~repro.core.scheduler.GangScheduler`
token machinery, so they inherit all of Olympian's isolation and
accounting properties:

* :class:`DeficitRoundRobin` — proportional sharing with *fractional*
  weights via per-job quantum credits (classic DRR adapted to quanta).
* :class:`LotteryScheduling` — randomized proportional share; each
  quantum is a lottery drawing over job weights (tickets).
* :class:`EarliestDeadlineFirst` — the job with the soonest absolute
  deadline gets every quantum; deadline-less jobs run only when no
  deadline is pending.
* :class:`ShortestRemainingWork` — the job with the least estimated
  remaining GPU work wins (SRPT-style, minimises mean latency);
  progress is estimated from executed GPU-node counts so the policy
  needs no profile access.

The spatial helpers at the bottom (:func:`stream_allocation`,
:func:`validate_spatial_share`) convert fractional GPU shares into
whole-stream grants for the spatio-temporal schedulers
(:class:`~repro.core.scheduler.SpatioTemporalScheduler`).
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..serving.request import Job
from ..sim.rng import derive_seed
from .policies import SchedulingPolicy

__all__ = [
    "DeficitRoundRobin",
    "LotteryScheduling",
    "EarliestDeadlineFirst",
    "ShortestRemainingWork",
    "AgedPriorityScheduling",
    "stream_allocation",
    "validate_spatial_share",
]


class DeficitRoundRobin(SchedulingPolicy):
    """Deficit round robin over quanta.

    Each job carries a credit counter; completing a cycle of the active
    list tops every job up by its ``share`` (from ``job.weight``, but
    fractional shares are supported via :meth:`set_share`).  A job runs
    while it has at least one quantum of credit; credits are capped so
    an idle-ish job cannot hoard a burst.
    """

    name = "deficit-round-robin"

    def __init__(self, credit_cap: float = 4.0):
        super().__init__()
        if credit_cap < 1.0:
            raise ValueError(f"credit_cap must be >= 1: {credit_cap}")
        self.credit_cap = credit_cap
        self._credits: Dict[str, float] = {}
        self._shares: Dict[str, float] = {}

    def set_share(self, job: Job, share: float) -> None:
        """Override the (possibly fractional) share of a job."""
        if share <= 0:
            raise ValueError(f"share must be positive: {share}")
        self._shares[job.job_id] = share

    def _share(self, job: Job) -> float:
        return self._shares.get(job.job_id, float(job.weight))

    def on_register(self, job: Job) -> None:
        super().on_register(job)
        self._credits[job.job_id] = self._share(job)

    def on_deregister(self, job: Job) -> None:
        super().on_deregister(job)
        self._credits.pop(job.job_id, None)
        self._shares.pop(job.job_id, None)

    def _replenish(self) -> None:
        for job in self._active:
            credit = self._credits.get(job.job_id, 0.0) + self._share(job)
            self._credits[job.job_id] = min(credit, self.credit_cap)

    def select_next(self, current: Optional[Job]) -> Optional[Job]:
        if current is not None and current.job_id in self._credits:
            self._credits[current.job_id] -= 1.0
        if not self._active:
            return None
        # DRR serves a queue's whole accumulated credit in one visit:
        # stay on the current job while it still has a quantum's worth.
        if (
            current is not None
            and self._credits.get(current.job_id, 0.0) >= 1.0
        ):
            return current
        # Otherwise walk the cyclic order starting after `current`;
        # replenish and retry if nobody has a full quantum of credit.
        for _round in range(2):
            candidate = self._after(current, self._active)
            for _ in range(len(self._active)):
                if self._credits.get(candidate.job_id, 0.0) >= 1.0:
                    return candidate
                candidate = self._after(candidate, self._active)
            self._replenish()
        # Degenerate shares; fall back to plain round robin.
        return self._after(current, self._active)


class LotteryScheduling(SchedulingPolicy):
    """Each quantum is a lottery over ``job.weight`` tickets.

    Proportional share in expectation, with no per-job state; the
    classic Waldspurger/Weihl design mapped onto quanta.  Deterministic
    given the seed.
    """

    name = "lottery"

    def __init__(self, seed: int = 0):
        super().__init__()
        # Namespaced so a shared experiment seed cannot correlate the
        # lottery with any other component's draws.
        self.rng = random.Random(derive_seed(seed, "policy:lottery"))

    def select_next(self, current: Optional[Job]) -> Optional[Job]:
        if not self._active:
            return None
        total = sum(job.weight for job in self._active)
        draw = self.rng.uniform(0.0, total)
        acc = 0.0
        for job in self._active:
            acc += job.weight
            if draw <= acc:
                return job
        return self._active[-1]


class EarliestDeadlineFirst(SchedulingPolicy):
    """The pending job with the soonest deadline gets every quantum.

    Jobs without a deadline are background work: they share round-robin
    among themselves but run only when no deadline job is active.
    """

    name = "edf"

    def select_next(self, current: Optional[Job]) -> Optional[Job]:
        if not self._active:
            return None
        with_deadline = [job for job in self._active if job.deadline is not None]
        if with_deadline:
            return min(
                with_deadline,
                key=lambda job: (job.deadline, self._active.index(job)),
            )
        return self._after(current, self._active)


class ShortestRemainingWork(SchedulingPolicy):
    """SRPT over estimated remaining GPU work.

    Remaining work is estimated as the unexecuted fraction of the job's
    GPU nodes times its solo GPU duration — no profile access needed,
    and the estimate sharpens as the job progresses.  Ties (e.g. fresh
    identical jobs) break round-robin.
    """

    name = "shortest-remaining-work"

    @staticmethod
    def remaining_work(job: Job) -> float:
        total = job.graph.num_gpu_nodes
        if total == 0:
            return 0.0
        fraction_left = 1.0 - job.gpu_nodes_executed / total
        return fraction_left * job.graph.gpu_duration(job.batch_size)

    def select_next(self, current: Optional[Job]) -> Optional[Job]:
        if not self._active:
            return None
        best = min(self.remaining_work(job) for job in self._active)
        contenders = [
            job
            for job in self._active
            if self.remaining_work(job) <= best * 1.05 + 1e-12
        ]
        return self._after(current, contenders)


class AgedPriorityScheduling(SchedulingPolicy):
    """Priority with aging: waiting raises effective priority.

    Strict priority (the paper's policy) starves low classes while high
    classes stay busy — fine for their two-level experiment, fatal for
    an always-loaded production tier.  Aging fixes it: every quantum a
    job waits adds ``aging_rate`` to its effective priority, so any job
    eventually outbids the top class.  ``aging_rate=0`` degenerates to
    strict priority.
    """

    name = "aged-priority"

    def __init__(self, aging_rate: float = 0.05):
        super().__init__()
        if aging_rate < 0:
            raise ValueError(f"aging_rate must be >= 0: {aging_rate}")
        self.aging_rate = aging_rate
        self._ages: Dict[str, float] = {}

    def on_register(self, job: Job) -> None:
        super().on_register(job)
        self._ages[job.job_id] = 0.0

    def on_deregister(self, job: Job) -> None:
        super().on_deregister(job)
        self._ages.pop(job.job_id, None)

    def effective_priority(self, job: Job) -> float:
        return job.priority + self.aging_rate * self._ages.get(job.job_id, 0.0)

    def select_next(self, current: Optional[Job]) -> Optional[Job]:
        if not self._active:
            return None
        top = max(self.effective_priority(job) for job in self._active)
        contenders = [
            job
            for job in self._active
            if self.effective_priority(job) >= top - 1e-12
        ]
        chosen = self._after(current, contenders)
        for job in self._active:
            if job is chosen:
                self._ages[job.job_id] = 0.0
            else:
                self._ages[job.job_id] = self._ages.get(job.job_id, 0.0) + 1.0
        return chosen


# ----------------------------------------------------------------------
# Spatial-share helpers (spatio-temporal schedulers)
# ----------------------------------------------------------------------


def validate_spatial_share(share: float, oversubscription: float = 1.0) -> float:
    """Reject GPU shares outside the device budget.

    A share above 1.0 requests more than the whole device, which is
    only meaningful under DARIS-style oversubscription (> 1.0); without
    it the request is a configuration error, not a clamp.
    """
    if share <= 0:
        raise ValueError(f"share must be positive: {share}")
    if share > 1.0 and oversubscription <= 1.0:
        raise ValueError(
            f"share {share} exceeds 1.0 and oversubscription is not "
            f"enabled (oversubscription={oversubscription})"
        )
    return share


def stream_allocation(share: float, streams: int) -> int:
    """Whole streams granted for a fractional ``share`` of the device.

    Nearest integer, floored at one stream (any admitted job can make
    progress) and capped at the whole device.
    """
    if not 0.0 < share <= 1.0:
        raise ValueError(f"share must be in (0, 1]: {share}")
    if streams < 1:
        raise ValueError(f"streams must be >= 1: {streams}")
    return max(1, min(streams, int(round(share * streams))))
