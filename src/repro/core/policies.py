"""Scheduling policies: who gets the next quantum (paper §3.4).

The scheduler mechanism (token + gang suspend/resume) is policy-free;
these classes decide only *which* registered job receives the token at
each decision point.  The paper implements three policies, all present
here:

* :class:`FairSharing` — round-robin, one quantum per turn.
* :class:`WeightedFairSharing` — a job with integer weight ``w``
  receives ``w`` consecutive quanta per turn.
* :class:`PriorityScheduling` — the highest-priority active job gets
  every quantum (ties share round-robin).
"""

from __future__ import annotations

from typing import List, Optional

from ..serving.request import Job

__all__ = [
    "SchedulingPolicy",
    "FairSharing",
    "WeightedFairSharing",
    "PriorityScheduling",
]


class SchedulingPolicy:
    """Base class: tracks the active-job set in registration order."""

    name = "abstract"

    def __init__(self):
        self._active: List[Job] = []

    @property
    def active_jobs(self) -> List[Job]:
        return list(self._active)

    def on_register(self, job: Job) -> None:
        if job in self._active:
            raise ValueError(f"job {job.job_id!r} registered twice")
        self._active.append(job)

    def on_deregister(self, job: Job) -> None:
        try:
            self._active.remove(job)
        except ValueError:
            raise ValueError(f"job {job.job_id!r} was not registered")

    def select_next(self, current: Optional[Job]) -> Optional[Job]:
        """Choose the next token holder.

        ``current`` is the job whose quantum just ended (it may have
        deregistered already, in which case it is no longer active).
        Returns ``None`` when no job is active.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helper
    # ------------------------------------------------------------------

    def _after(self, current: Optional[Job], candidates: List[Job]) -> Optional[Job]:
        """Next candidate in cyclic registration order after ``current``."""
        if not candidates:
            return None
        if current is None or current not in candidates:
            return candidates[0]
        index = candidates.index(current)
        return candidates[(index + 1) % len(candidates)]


class FairSharing(SchedulingPolicy):
    """Round-robin: each active job gets one quantum per turn."""

    name = "fair"

    def select_next(self, current: Optional[Job]) -> Optional[Job]:
        return self._after(current, self._active)


class WeightedFairSharing(SchedulingPolicy):
    """Round-robin where a job's turn lasts ``job.weight`` quanta.

    For two job classes with weights ``k`` and 1, the expected ratio of
    class finish times is ``(k + 1) / (2 k)`` (paper §4.2) — verified by
    the Figure 17 benchmark.
    """

    name = "weighted-fair"

    def __init__(self):
        super().__init__()
        self._quanta_in_turn = 0

    def on_deregister(self, job: Job) -> None:
        super().on_deregister(job)

    def select_next(self, current: Optional[Job]) -> Optional[Job]:
        if current is not None and current in self._active:
            self._quanta_in_turn += 1
            if self._quanta_in_turn < current.weight:
                return current
        nxt = self._after(current, self._active)
        self._quanta_in_turn = 0
        return nxt


class PriorityScheduling(SchedulingPolicy):
    """Strict priority: the highest-priority job gets every quantum.

    Larger ``job.priority`` wins.  Jobs at the same priority level share
    the GPU round-robin, which is what lets the paper's two-level
    experiment (Figure 18) show the first class fair-sharing internally
    and the second class starting only after the first completes.
    """

    name = "priority"

    def select_next(self, current: Optional[Job]) -> Optional[Job]:
        if not self._active:
            return None
        top = max(job.priority for job in self._active)
        contenders = [job for job in self._active if job.priority == top]
        return self._after(current, contenders)
