"""Suppression comments.

Two forms, both parsed from real ``tokenize`` COMMENT tokens (so a
``# lint:`` inside a string literal never counts):

* per-line — a trailing comment silences the rule on its own physical
  line; a *standalone* comment line silences the next line too, so the
  comment can sit above a long statement::

      yield cv.wait()  # lint: disable=CON001

      # lint: disable=DET003
      rng = random.Random(raw_seed)

* per-file — anywhere in the file (conventionally the top)::

      # lint: disable-file=DET005

Rule lists are comma-separated; the keyword ``all`` silences every
rule, and a rule-family wildcard (``FLOW*``, ``ARCH*``) silences every
rule whose id matches the pattern.  Unknown rule ids are accepted
silently so a suppression written for a future rule does not itself
become an error.
"""

from __future__ import annotations

import io
import re
import tokenize
from fnmatch import fnmatchcase
from typing import Dict, FrozenSet, Iterable, Set

__all__ = ["SuppressionIndex"]

_DIRECTIVE = re.compile(
    r"#\s*lint:\s*disable(?P<whole_file>-file)?\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_*?]+(?:\s*,\s*[A-Za-z0-9_*?]+)*)"
)


def _matches(rule_id: str, patterns: Iterable[str]) -> bool:
    for pattern in patterns:
        if pattern == "all" or pattern == rule_id:
            return True
        if ("*" in pattern or "?" in pattern) and fnmatchcase(rule_id, pattern):
            return True
    return False


def _split_rules(text: str) -> Set[str]:
    return {part.strip() for part in text.split(",") if part.strip()}


class SuppressionIndex:
    """All suppression directives of one source file, queryable by line."""

    def __init__(self) -> None:
        self.file_level: Set[str] = set()
        self.line_level: Dict[int, Set[str]] = {}

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        index = cls()
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            # Unparseable file: fall back to a line scan so disable-file
            # still works on the parse-error pseudo-finding.
            for lineno, line in enumerate(source.splitlines(), start=1):
                index._scan(line, lineno, standalone=line.lstrip().startswith("#"))
            return index
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            standalone = tok.line.lstrip().startswith("#")
            index._scan(tok.string, tok.start[0], standalone=standalone)
        return index

    def _scan(self, text: str, lineno: int, standalone: bool) -> None:
        match = _DIRECTIVE.search(text)
        if match is None:
            return
        rules = _split_rules(match.group("rules"))
        if match.group("whole_file"):
            self.file_level |= rules
            return
        self.line_level.setdefault(lineno, set()).update(rules)
        if standalone:
            # A comment-only line shields the line below it as well.
            self.line_level.setdefault(lineno + 1, set()).update(rules)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if _matches(rule_id, self.file_level):
            return True
        here = self.line_level.get(line)
        return here is not None and _matches(rule_id, here)

    def suppressed_rules(self) -> FrozenSet[str]:
        """Every rule id named anywhere in the file (for tooling)."""
        named = set(self.file_level)
        for rules in self.line_level.values():
            named |= rules
        return frozenset(named)
