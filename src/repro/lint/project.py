"""Whole-program context shared by the ProjectRule family.

Built once per lint run from every successfully parsed file: the
per-file :class:`FileContext` map plus the module dependency graph and
the heuristic call graph.  FLOW and ARCH rules read from here; the CLI
``--graph`` export serialises the two graphs.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

from .callgraph import CallGraph
from .config import LintConfig
from .engine import FileContext
from .modgraph import ModuleGraph, module_name_for

__all__ = ["ProjectContext"]


class ProjectContext:
    """The project as one object: files, module graph, call graph."""

    def __init__(
        self,
        files: Dict[str, FileContext],
        config: LintConfig,
        modgraph: ModuleGraph,
        callgraph: CallGraph,
    ):
        self.files = files
        self.config = config
        self.modgraph = modgraph
        self.callgraph = callgraph

    @classmethod
    def build(
        cls, files: Dict[str, FileContext], config: LintConfig
    ) -> "ProjectContext":
        trees: Dict[str, ast.AST] = {
            path: ctx.tree for path, ctx in files.items()
        }
        root = config.arch_root
        return cls(
            files=files,
            config=config,
            modgraph=ModuleGraph.build(trees, root),
            callgraph=CallGraph.build(trees, root),
        )

    def module_of(self, path: str) -> str:
        name, _ = module_name_for(path, self.config.arch_root)
        return name

    def context_for_module(self, module: str) -> Optional[FileContext]:
        path = self.modgraph.modules.get(module)
        if path is None:
            return None
        return self.files.get(path)
