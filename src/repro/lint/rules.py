"""Rule model and registry.

A rule is a small class with an id (``DET003``), a one-line summary for
the catalogue, the AST node types it inspects, and a ``check`` generator
yielding ``(node, message)`` violations.  Rules register themselves via
the :func:`register` decorator at import time; the registry is the
single source of truth for ``--list-rules``, ``--select``/``--ignore``
validation and the docs catalogue test.

Two kinds exist:

* :class:`Rule` — per-file: sees one file's AST at a time.
* :class:`CrossFileRule` — collects per-file facts, then ``finalize``
  runs once over everything (the lock-order cycle check needs the union
  of acquisition edges across files).
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .config import LintConfig, path_matches

__all__ = [
    "Rule",
    "CrossFileRule",
    "register",
    "all_rules",
    "get_rule",
    "resolve_rules",
    "dotted_name",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """Base per-file rule; subclasses override the class attributes."""

    rule_id: str = ""
    name: str = ""
    summary: str = ""
    node_types: Tuple[type, ...] = ()
    cross_file: bool = False

    def scopes(self, config: LintConfig) -> Optional[Sequence[str]]:
        """Path scopes this rule applies to; ``None`` = every file."""
        return None

    def applies_to(self, path: str, config: LintConfig) -> bool:
        scoped = self.scopes(config)
        return scoped is None or path_matches(path, scoped)

    def check(self, node: ast.AST, ctx: "FileContext") -> Iterator[Tuple[ast.AST, str]]:  # noqa: F821
        raise NotImplementedError

    def catalogue_line(self) -> str:
        return f"{self.rule_id}  {self.name:<28} {self.summary}"


class CrossFileRule(Rule):
    """Rule that needs facts from every linted file before deciding."""

    cross_file = True

    def check(self, node: ast.AST, ctx: "FileContext"):  # noqa: F821
        return iter(())

    def collect(self, ctx: "FileContext") -> Any:  # noqa: F821
        raise NotImplementedError

    def finalize(
        self, collected: List[Tuple[str, Any]]
    ) -> Iterator[Tuple[str, int, int, str]]:
        """Yield ``(path, line, col, message)`` violations."""
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and index the rule by id."""
    rule = rule_cls()
    if not rule.rule_id or not rule.name:
        raise ValueError(f"rule {rule_cls.__name__} needs rule_id and name")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id (deterministic output)."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]


def resolve_rules(
    select: Iterable[str] = (), ignore: Iterable[str] = ()
) -> List[Rule]:
    """The effective rule list for a (select, ignore) pair.

    An empty ``select`` means all rules; unknown ids in either list are
    an error so a typo cannot silently disable a gate.
    """
    chosen = list(select)
    for rule_id in [*chosen, *ignore]:
        if rule_id not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise ValueError(f"unknown rule id {rule_id!r} (known: {known})")
    rules = all_rules() if not chosen else [_REGISTRY[r] for r in sorted(set(chosen))]
    dropped = set(ignore)
    return [rule for rule in rules if rule.rule_id not in dropped]
