"""Rule model and registry.

A rule is a small class with an id (``DET003``), a one-line summary for
the catalogue, the AST node types it inspects, and a ``check`` generator
yielding ``(node, message)`` violations.  Rules register themselves via
the :func:`register` decorator at import time; the registry is the
single source of truth for ``--list-rules``, ``--select``/``--ignore``
validation and the docs catalogue test.

Three kinds exist:

* :class:`Rule` — per-file: sees one file's AST at a time.
* :class:`CrossFileRule` — collects per-file facts, then ``finalize``
  runs once over everything (the lock-order cycle check needs the union
  of acquisition edges across files).
* :class:`ProjectRule` — whole-program: runs once against the
  :class:`~repro.lint.project.ProjectContext` (module graph, call graph,
  every file's AST) and yields findings anywhere in the project.  The
  FLOW and ARCH families live here.

A rule may declare ``supersedes``: when it is in the effective set, the
named rules are dropped unless explicitly selected (FLOW002's
interprocedural seed tracing replaces the per-file DET003
approximation).  ``select``/``ignore`` accept ``fnmatch`` wildcards
(``FLOW*``); a wildcard matching no registered rule is an error, just
like an unknown exact id.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatchcase
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .config import LintConfig, path_matches

__all__ = [
    "Rule",
    "CrossFileRule",
    "ProjectRule",
    "register",
    "all_rules",
    "get_rule",
    "resolve_rules",
    "dotted_name",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """Base per-file rule; subclasses override the class attributes."""

    rule_id: str = ""
    name: str = ""
    summary: str = ""
    node_types: Tuple[type, ...] = ()
    cross_file: bool = False
    project: bool = False
    # Rule ids this rule replaces when both would otherwise run.
    supersedes: Tuple[str, ...] = ()

    def scopes(self, config: LintConfig) -> Optional[Sequence[str]]:
        """Path scopes this rule applies to; ``None`` = every file."""
        return None

    def applies_to(self, path: str, config: LintConfig) -> bool:
        scoped = self.scopes(config)
        return scoped is None or path_matches(path, scoped)

    def check(self, node: ast.AST, ctx: "FileContext") -> Iterator[Tuple[ast.AST, str]]:  # noqa: F821
        raise NotImplementedError

    def catalogue_line(self) -> str:
        return f"{self.rule_id}  {self.name:<28} {self.summary}"


class CrossFileRule(Rule):
    """Rule that needs facts from every linted file before deciding."""

    cross_file = True

    def check(self, node: ast.AST, ctx: "FileContext"):  # noqa: F821
        return iter(())

    def collect(self, ctx: "FileContext") -> Any:  # noqa: F821
        raise NotImplementedError

    def finalize(
        self, collected: List[Tuple[str, Any]]
    ) -> Iterator[Tuple[str, int, int, str]]:
        """Yield ``(path, line, col, message)`` violations."""
        raise NotImplementedError


class ProjectRule(Rule):
    """Rule that analyses the whole program in one pass.

    ``analyze`` receives the built :class:`ProjectContext` and yields
    ``(path, line, col, message)`` tuples; the runner maps them back
    through each file's suppression index.
    """

    project = True

    def check(self, node: ast.AST, ctx: "FileContext"):  # noqa: F821
        return iter(())

    def analyze(
        self, project: "ProjectContext"  # noqa: F821
    ) -> Iterator[Tuple[str, int, int, str]]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and index the rule by id."""
    rule = rule_cls()
    if not rule.rule_id or not rule.name:
        raise ValueError(f"rule {rule_cls.__name__} needs rule_id and name")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id (deterministic output)."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]


def _expand_patterns(ids: Iterable[str], where: str) -> Set[str]:
    """Expand exact ids and ``fnmatch`` wildcards against the registry.

    Unknown exact ids and wildcards matching nothing are both errors so
    a typo cannot silently disable a gate.
    """
    expanded: Set[str] = set()
    for rule_id in ids:
        if "*" in rule_id or "?" in rule_id:
            hits = {r for r in _REGISTRY if fnmatchcase(r, rule_id)}
            if not hits:
                raise ValueError(
                    f"{where} pattern {rule_id!r} matches no registered rule"
                )
            expanded |= hits
        elif rule_id not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise ValueError(f"unknown rule id {rule_id!r} (known: {known})")
        else:
            expanded.add(rule_id)
    return expanded


def resolve_rules(
    select: Iterable[str] = (), ignore: Iterable[str] = ()
) -> List[Rule]:
    """The effective rule list for a (select, ignore) pair.

    An empty ``select`` means all rules; both lists accept exact ids and
    wildcards (``FLOW*``).  A rule superseded by another rule in the
    effective set is dropped, unless it was selected by exact id — an
    explicit ``--select DET003`` still runs the superseded rule.
    """
    select = list(select)
    chosen = _expand_patterns(select, "select")
    dropped = _expand_patterns(ignore, "ignore")
    rules = (
        all_rules()
        if not chosen
        else [_REGISTRY[r] for r in sorted(chosen)]
    )
    rules = [rule for rule in rules if rule.rule_id not in dropped]
    explicit = {r for r in select if "*" not in r and "?" not in r}
    active = {rule.rule_id for rule in rules}
    superseded: Set[str] = set()
    for rule in rules:
        if rule.rule_id in active:
            superseded |= set(rule.supersedes)
    return [
        rule
        for rule in rules
        if rule.rule_id not in superseded or rule.rule_id in explicit
    ]
