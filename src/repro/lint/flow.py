"""FLOW rule family: interprocedural taint analysis.

Three whole-program rules over the call graph:

* **FLOW001 — observer-effect freedom.**  No value originating in
  telemetry state (``flow-observer-paths``) may flow into decision code
  (``flow-decision-paths``): branch conditions, RNG draws, ordering
  primitives, queue mutations, or stores into decision state.  A
  telemetry *reference* itself is harmless (``if telemetry is not
  None:`` and bare ``telemetry.emit(...)`` statements are the sanctioned
  seam idiom); taint begins at a *read through* the reference whose
  value is actually used.  Modules under ``flow-offline-paths`` are a
  sanctioned boundary: they replay observations of a *completed* run to
  parameterise a fresh simulation (the what-if harness), which cannot
  feed back into the run that produced them, so taint does not
  propagate out of them.

* **FLOW002 — RNG seed provenance.**  Every ``random.Random(seed)``
  in determinism scope must trace ``seed`` back to a ``derive_seed``
  namespace through assignments, call arguments, and constructors.
  Supersedes the per-file DET003 approximation, which could only accept
  a literal ``derive_seed(...)`` at the construction site.

* **FLOW003 — observer mutation.**  Code in the observer layer must not
  mutate foreign state: attribute stores or container mutations through
  function parameters or captured core objects, except the sanctioned
  wiring attributes (``flow-wiring-attrs``) installed by
  ``Telemetry.attach``.

The analysis is precision-first: call edges come from
:mod:`repro.lint.callgraph`, which only resolves unambiguous receivers,
so a FLOW finding is near-certain — and the digest-pinning suites plus
the runtime sanitizer (:mod:`repro.sanitize`) backstop what static
analysis cannot see.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, FunctionInfo
from .config import LintConfig, path_matches
from .project import ProjectContext
from .rules import ProjectRule, dotted_name, register

__all__ = [
    "ObserverEffectRule",
    "SeedProvenanceRule",
    "ObserverMutationRule",
]

# Names that alias the telemetry facade wherever they appear.
_TELEMETRY_NAMES = frozenset({"telemetry"})

_RNG_DRAW_METHODS = frozenset({
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "lognormvariate",
    "expovariate", "betavariate", "paretovariate", "weibullvariate",
    "triangular", "vonmisesvariate",
})
_ORDER_FUNCS = frozenset({"sorted", "min", "max"})
_QUEUE_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "add", "push", "put",
    "heappush", "sort",
})
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "remove", "pop",
    "popleft", "clear", "add", "discard", "update", "sort", "reverse",
    "push", "put", "setdefault", "heappush",
})


def _scope_nodes(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Nodes of a function body, excluding nested def/class subtrees."""
    stack: List[ast.AST] = list(getattr(fn_node, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                   ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _target_names(target: ast.AST) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def _map_call_args(
    callee: FunctionInfo, call: ast.Call
) -> Dict[str, ast.AST]:
    """Best-effort mapping of call-site expressions onto callee params."""
    params = list(callee.params)
    if callee.class_qname is not None and params and params[0] in (
        "self", "cls"
    ):
        params = params[1:]
    mapping: Dict[str, ast.AST] = {}
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if i < len(params):
            mapping[params[i]] = arg
    for kw in call.keywords:
        if kw.arg is not None and kw.arg in callee.params:
            mapping[kw.arg] = kw.value
    return mapping


# ======================================================================
# FLOW001 — observer-effect freedom
# ======================================================================


class _TaintAnalysis:
    """Project-wide fixpoint: which names/returns carry telemetry state."""

    def __init__(self, project: ProjectContext):
        self.project = project
        self.graph: CallGraph = project.callgraph
        self.config = project.config
        # Modules whose files live under flow-observer-paths.
        self.observer_modules: Set[str] = {
            module
            for module, path in project.modgraph.modules.items()
            if path_matches(path, self.config.flow_observer_paths)
        }
        # Per-module names imported from observer modules (facade refs).
        self.module_refs: Dict[str, Set[str]] = {}
        for module, sources in self.graph.module_import_sources.items():
            refs = {
                local
                for local, target in sources.items()
                if self._targets_observer(target)
            }
            if refs:
                self.module_refs[module] = refs
        # Inflow maps, grown monotonically until fixpoint.
        self.param_refs: Dict[str, Set[str]] = {}
        self.param_taint: Dict[str, Set[str]] = {}
        self.returns_taint: Set[str] = set()
        self.returns_ref: Set[str] = set()
        for qname, info in self.graph.functions.items():
            if (
                info.module in self.observer_modules
                and not qname.endswith(".__init__")
            ):
                # Anything an observer function hands back IS telemetry
                # state as far as decision code is concerned.
                self.returns_taint.add(qname)
        # id(call node) -> callee qname, per caller.
        self.call_targets: Dict[str, Dict[int, str]] = {}
        for caller, pairs in self.graph.calls_from.items():
            self.call_targets[caller] = {
                id(node): callee for callee, node in pairs
            }

    def _targets_observer(self, dotted: str) -> bool:
        for module in self.observer_modules:
            if dotted == module or dotted.startswith(module + "."):
                return True
        return False

    def run(self) -> List[Tuple[str, int, int, str]]:
        ordered = sorted(self.graph.functions)
        for _ in range(12):
            changed = False
            for qname in ordered:
                changed |= self._summarise(qname)
            if not changed:
                break
        findings: List[Tuple[str, int, int, str]] = []
        for qname in ordered:
            info = self.graph.functions[qname]
            if not path_matches(info.path, self.config.flow_decision_paths):
                continue
            if path_matches(info.path, self.config.flow_observer_paths):
                continue
            findings.extend(self._sinks(qname))
        findings.sort()
        return findings

    # -- per-function analysis -----------------------------------------

    def _facts(self, qname: str) -> Tuple[Set[str], Set[str]]:
        """(refs, tainted) local-name sets for one function."""
        info = self.graph.functions[qname]
        refs: Set[str] = set(self.module_refs.get(info.module, ()))
        refs |= {p for p in info.params if p in _TELEMETRY_NAMES}
        refs |= self.param_refs.get(qname, set())
        tainted: Set[str] = set(self.param_taint.get(qname, set()))
        targets = self.call_targets.get(qname, {})

        def is_ref(node: ast.AST) -> bool:
            if isinstance(node, ast.Name):
                return node.id in refs
            if isinstance(node, ast.Attribute):
                return node.attr in _TELEMETRY_NAMES
            if isinstance(node, ast.Call):
                callee = targets.get(id(node))
                if callee is not None:
                    if callee.endswith(".__init__"):
                        cls = callee.rsplit(".", 1)[0]
                        cinfo = self.graph.classes.get(cls)
                        return (
                            cinfo is not None
                            and cinfo.module in self.observer_modules
                        )
                    return callee in self.returns_ref
                func = node.func
                # Unresolved constructor-style call on a facade name
                # imported from telemetry: result is a facade instance.
                return isinstance(func, ast.Name) and func.id in refs
            return False

        def is_read(node: ast.AST) -> bool:
            """True when ``node`` reads *through* a telemetry reference."""
            if isinstance(node, ast.Attribute):
                return is_ref(node.value) or is_read(node.value)
            if isinstance(node, ast.Subscript):
                return is_ref(node.value) or is_read(node.value)
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    return is_ref(func.value) or is_read(func.value)
                return is_read(func)
            return False

        def is_tainted(node: Optional[ast.AST]) -> bool:
            if node is None:
                return False
            if isinstance(node, ast.Name):
                return node.id in tainted
            if is_ref(node):
                return False
            if is_read(node):
                return True
            if isinstance(node, ast.Call):
                callee = targets.get(id(node))
                if callee is not None and callee in self.returns_taint:
                    return True
                return any(is_tainted(a) for a in node.args) or any(
                    is_tainted(kw.value) for kw in node.keywords
                )
            if isinstance(node, ast.Attribute):
                return is_tainted(node.value)
            return any(
                is_tainted(child)
                for child in ast.iter_child_nodes(node)
                if isinstance(child, ast.expr)
            )

        # Local fixpoint over assignments (flow-insensitive).
        for _ in range(6):
            grew = False
            for node in _scope_nodes(info.node):
                if isinstance(node, ast.Assign):
                    value = node.value
                    names = [
                        n for t in node.targets for n in _target_names(t)
                    ]
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    value = node.value
                    names = list(_target_names(node.target))
                elif isinstance(node, ast.AugAssign):
                    value = node.value
                    names = list(_target_names(node.target))
                elif isinstance(node, ast.For):
                    value = node.iter
                    names = list(_target_names(node.target))
                else:
                    continue
                if names and is_ref(value) and not set(names) <= refs:
                    refs.update(names)
                    grew = True
                if names and is_tainted(value) and not set(names) <= tainted:
                    tainted.update(names)
                    grew = True
            if not grew:
                break

        self._is_ref = is_ref
        self._is_tainted = is_tainted
        self._is_read = is_read
        return refs, tainted

    def _summarise(self, qname: str) -> bool:
        """Recompute one function's summary + outflows; True if changed."""
        info = self.graph.functions[qname]
        if path_matches(info.path, self.config.flow_offline_paths):
            # Offline replay harness: observations of a finished run may
            # parameterise a fresh one — taint stops at this boundary.
            return False
        self._facts(qname)
        is_ref, is_tainted = self._is_ref, self._is_tainted
        changed = False
        for node in _scope_nodes(info.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if is_tainted(node.value) and qname not in self.returns_taint:
                    self.returns_taint.add(qname)
                    changed = True
                if is_ref(node.value) and qname not in self.returns_ref:
                    self.returns_ref.add(qname)
                    changed = True
            elif isinstance(node, ast.Call):
                callee = self.call_targets.get(qname, {}).get(id(node))
                if callee is None:
                    continue
                callee_info = self.graph.functions.get(callee)
                if callee_info is None:
                    continue
                for param, expr in _map_call_args(callee_info, node).items():
                    if is_ref(expr):
                        bucket = self.param_refs.setdefault(callee, set())
                        if param not in bucket:
                            bucket.add(param)
                            changed = True
                    elif is_tainted(expr):
                        bucket = self.param_taint.setdefault(callee, set())
                        if param not in bucket:
                            bucket.add(param)
                            changed = True
        return changed

    def _sinks(self, qname: str) -> Iterator[Tuple[str, int, int, str]]:
        info = self.graph.functions[qname]
        self._facts(qname)
        is_tainted = self._is_tainted

        def finding(node: ast.AST, what: str):
            return (
                info.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                f"telemetry-derived value reaches {what} in decision code "
                f"({qname}); schedulers must be observer-effect-free",
            )

        for node in _scope_nodes(info.node):
            if isinstance(node, (ast.If, ast.While)) and is_tainted(node.test):
                yield finding(node.test, "a branch condition")
            elif isinstance(node, ast.IfExp) and is_tainted(node.test):
                yield finding(node.test, "a conditional expression")
            elif isinstance(node, ast.Assign):
                if any(
                    isinstance(t, ast.Attribute) for t in node.targets
                ) and is_tainted(node.value):
                    yield finding(node, "a state attribute store")
            elif isinstance(node, ast.Call):
                func = node.func
                args_tainted = any(is_tainted(a) for a in node.args) or any(
                    is_tainted(kw.value) for kw in node.keywords
                )
                if not args_tainted:
                    continue
                if isinstance(func, ast.Attribute):
                    if func.attr in _RNG_DRAW_METHODS:
                        yield finding(node, f"an RNG draw ({func.attr})")
                    elif func.attr in _QUEUE_METHODS:
                        yield finding(
                            node, f"queue ordering ({func.attr})"
                        )
                elif isinstance(func, ast.Name) and func.id in _ORDER_FUNCS:
                    yield finding(node, f"an ordering primitive ({func.id})")


@register
class ObserverEffectRule(ProjectRule):
    rule_id = "FLOW001"
    name = "observer-effect-freedom"
    summary = (
        "no value from telemetry state may reach branches, RNG draws, or "
        "queue ordering in scheduler/driver/device decision code"
    )

    def analyze(self, project: ProjectContext):
        return iter(_TaintAnalysis(project).run())


# ======================================================================
# FLOW002 — RNG seed provenance
# ======================================================================


class _SeedProvenance:
    """Prove a seed expression reaches back to a derive_seed call."""

    def __init__(self, project: ProjectContext):
        self.project = project
        self.graph = project.callgraph
        self.config = project.config
        # id(node) -> enclosing function qname, per path.
        self.enclosing: Dict[str, Dict[int, str]] = {}
        for qname, info in self.graph.functions.items():
            per_file = self.enclosing.setdefault(info.path, {})
            for node in _scope_nodes(info.node):
                per_file[id(node)] = qname

    def enclosing_function(
        self, path: str, node: ast.AST
    ) -> Optional[FunctionInfo]:
        qname = self.enclosing.get(path, {}).get(id(node))
        if qname is None:
            return None
        return self.graph.functions.get(qname)

    def is_seed_helper_call(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        dotted = dotted_name(node.func)
        if dotted is None:
            return False
        return dotted.rsplit(".", 1)[-1] in self.config.seed_helpers

    def proven(
        self,
        expr: ast.AST,
        owner: Optional[FunctionInfo],
        path: str,
        visited: Optional[Set[Tuple[str, str]]] = None,
        depth: int = 0,
    ) -> bool:
        """True when ``expr`` provably carries a derive_seed namespace."""
        if depth > 10:
            return False
        visited = visited if visited is not None else set()
        if self.is_seed_helper_call(expr):
            return True
        if isinstance(expr, ast.BinOp):
            return self.proven(
                expr.left, owner, path, visited, depth + 1
            ) or self.proven(expr.right, owner, path, visited, depth + 1)
        if isinstance(expr, ast.Call):
            callee = self._callee_of(owner, expr)
            if callee is None:
                return False
            return self._returns_proven(callee, visited, depth + 1)
        if isinstance(expr, ast.Name):
            return self._name_proven(expr.id, owner, path, visited, depth + 1)
        if isinstance(expr, ast.Attribute):
            return self._attr_proven(expr, owner, path, visited, depth + 1)
        return False

    def _callee_of(
        self, owner: Optional[FunctionInfo], call: ast.Call
    ) -> Optional[FunctionInfo]:
        if owner is None:
            return None
        for callee, node in self.graph.calls_from.get(owner.qname, []):
            if node is call:
                return self.graph.functions.get(callee)
        return None

    def _returns_proven(
        self,
        callee: FunctionInfo,
        visited: Set[Tuple[str, str]],
        depth: int,
    ) -> bool:
        key = (callee.qname, "<returns>")
        if key in visited:
            return False
        visited.add(key)
        returns = [
            node
            for node in _scope_nodes(callee.node)
            if isinstance(node, ast.Return) and node.value is not None
        ]
        if not returns:
            return False
        return all(
            self.proven(node.value, callee, callee.path, visited, depth)
            for node in returns
        )

    def _name_proven(
        self,
        name: str,
        owner: Optional[FunctionInfo],
        path: str,
        visited: Set[Tuple[str, str]],
        depth: int,
    ) -> bool:
        owner_key = owner.qname if owner is not None else f"<module:{path}>"
        key = (owner_key, name)
        if key in visited:
            return False
        visited.add(key)
        if owner is not None and name in owner.params:
            # Prove every project call site passes a derived value; an
            # unobserved caller means we cannot prove it — report.
            callers = self.graph.callers_of(owner.qname)
            if not callers:
                return False
            for caller_qname, call in callers:
                caller = self.graph.functions.get(caller_qname)
                mapping = _map_call_args(owner, call)
                if name not in mapping:
                    return False
                if not self.proven(
                    mapping[name],
                    caller,
                    caller.path if caller else path,
                    visited,
                    depth,
                ):
                    return False
            return True
        # Reaching assignments in the owning scope.
        scope_node = owner.node if owner is not None else None
        if scope_node is None:
            ctx = self.project.files.get(path)
            if ctx is None:
                return False
            scope_iter = list(getattr(ctx.tree, "body", []))
            nodes: List[ast.AST] = []
            stack = scope_iter
            while stack:
                node = stack.pop()
                if isinstance(
                    node,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue
                nodes.append(node)
                stack.extend(
                    c for c in ast.iter_child_nodes(node)
                    if isinstance(c, ast.stmt)
                )
        else:
            nodes = list(_scope_nodes(scope_node))
        assignments = []
        for node in nodes:
            if isinstance(node, ast.Assign):
                if any(
                    isinstance(t, ast.Name) and t.id == name
                    for t in node.targets
                ):
                    assignments.append(node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if (
                    isinstance(node.target, ast.Name)
                    and node.target.id == name
                ):
                    assignments.append(node.value)
        if not assignments:
            return False
        return all(
            self.proven(value, owner, path, visited, depth)
            for value in assignments
        )

    def _attr_proven(
        self,
        expr: ast.Attribute,
        owner: Optional[FunctionInfo],
        path: str,
        visited: Set[Tuple[str, str]],
        depth: int,
    ) -> bool:
        # Only self.<attr> within a known class is traceable.
        if not (
            isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and owner is not None
            and owner.class_qname is not None
        ):
            return False
        cinfo = self.graph.classes.get(owner.class_qname)
        if cinfo is None:
            return False
        key = (owner.class_qname, f"self.{expr.attr}")
        if key in visited:
            return False
        visited.add(key)
        stores: List[Tuple[ast.AST, Optional[FunctionInfo]]] = []
        for method_name, method_qname in cinfo.methods.items():
            method = self.graph.functions.get(method_qname)
            if method is None:
                continue
            for node in _scope_nodes(method.node):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == expr.attr
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        stores.append((node.value, method))
        if not stores:
            return False
        return all(
            self.proven(value, method, method.path, visited, depth)
            for value, method in stores
        )


@register
class SeedProvenanceRule(ProjectRule):
    rule_id = "FLOW002"
    name = "seed-provenance"
    summary = (
        "every random.Random seed must trace back to derive_seed through "
        "calls and constructors (interprocedural DET003)"
    )
    supersedes = ("DET003",)

    def analyze(self, project: ProjectContext):
        config = project.config
        provenance = _SeedProvenance(project)
        findings: List[Tuple[str, int, int, str]] = []
        for path, ctx in sorted(project.files.items()):
            if not path_matches(path, config.determinism_paths):
                continue
            if path_matches(path, config.rng_whitelist):
                continue
            for node in ctx.nodes_of((ast.Call,)):
                if not self._is_random_ctor(node, ctx):
                    continue
                line = node.lineno
                col = node.col_offset
                if not node.args:
                    findings.append((
                        path, line, col,
                        "random.Random() constructed without a seed; "
                        "derive one with derive_seed(seed, name)",
                    ))
                    continue
                owner = provenance.enclosing_function(path, node)
                if not provenance.proven(node.args[0], owner, path):
                    findings.append((
                        path, line, col,
                        "seed for random.Random cannot be traced to a "
                        "derive_seed(...) namespace through any call path; "
                        "thread the derived seed explicitly",
                    ))
        findings.sort()
        return iter(findings)

    @staticmethod
    def _is_random_ctor(node: ast.Call, ctx) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in ctx.random_class_aliases
        dotted = dotted_name(func)
        if dotted is None:
            return False
        for alias in ctx.random_module_aliases:
            if dotted == f"{alias}.Random":
                return True
        return dotted == "random.Random"


# ======================================================================
# FLOW003 — observer mutation of scheduler-visible state
# ======================================================================


@register
class ObserverMutationRule(ProjectRule):
    rule_id = "FLOW003"
    name = "observer-mutation"
    summary = (
        "telemetry/observer code must not mutate foreign state except "
        "the sanctioned wiring attributes"
    )

    def analyze(self, project: ProjectContext):
        config = project.config
        findings: List[Tuple[str, int, int, str]] = []
        for qname in sorted(project.callgraph.functions):
            info = project.callgraph.functions[qname]
            if not path_matches(info.path, config.flow_observer_paths):
                continue
            findings.extend(self._check_function(info, config, project))
        findings.sort()
        return iter(findings)

    def _param_locally_rooted(
        self,
        project: ProjectContext,
        qname: str,
        param: str,
        visited: Set[Tuple[str, str]],
    ) -> bool:
        """Every call site passes an observer-created container?

        Accumulator idiom: ``errors = []`` in a validator, handed to a
        ``_require(errors, ...)`` helper.  Mutating it is observation's
        own bookkeeping, not foreign state.

        ``visited`` guards against recursion while a query is *in
        progress*; a successfully proven key is removed again on the way
        out so that a helper invoked from several call sites of the same
        caller re-proves (cheaply) instead of reading its own stack
        entry as a cycle.
        """
        key = (qname, param)
        if key in visited:
            return False
        visited.add(key)
        graph = project.callgraph
        info = graph.functions.get(qname)
        callers = graph.callers_of(qname)
        if info is None or not callers:
            return False
        config = project.config
        for caller_qname, call in callers:
            caller = graph.functions.get(caller_qname)
            if caller is None or not path_matches(
                caller.path, config.flow_observer_paths
            ):
                return False
            mapping = _map_call_args(info, call)
            arg = mapping.get(param)
            if arg is None:
                return False
            if not self._locally_created(project, caller, arg, visited):
                return False
        visited.discard(key)
        return True

    def _locally_created(
        self,
        project: ProjectContext,
        owner: FunctionInfo,
        expr: ast.AST,
        visited: Set[Tuple[str, str]],
    ) -> bool:
        if isinstance(
            expr,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        ):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            if expr.func.id in ("list", "dict", "set", "deque", "defaultdict",
                                "Counter", "OrderedDict"):
                return True
        if isinstance(expr, ast.Name):
            if expr.id in owner.params:
                return self._param_locally_rooted(
                    project, owner.qname, expr.id, visited
                )
            assignments = [
                node.value
                for node in _scope_nodes(owner.node)
                if isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == expr.id
                    for t in node.targets
                )
            ] + [
                node.value
                for node in _scope_nodes(owner.node)
                if isinstance(node, ast.AnnAssign)
                and node.value is not None
                and isinstance(node.target, ast.Name)
                and node.target.id == expr.id
            ]
            return bool(assignments) and all(
                self._locally_created(project, owner, value, visited)
                for value in assignments
            )
        return False

    def _check_function(
        self, info: FunctionInfo, config: LintConfig, project: ProjectContext
    ) -> Iterator[Tuple[str, int, int, str]]:
        foreign: Set[str] = {
            p for p in info.params if p not in ("self", "cls")
        }
        captured = set(config.flow_captured_attrs)
        wiring = set(config.flow_wiring_attrs)

        def root_is_foreign(node: ast.AST) -> bool:
            """Attribute/Subscript chain rooted in foreign state?"""
            while isinstance(node, (ast.Attribute, ast.Subscript)):
                parent = node.value
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(parent, ast.Name)
                    and parent.id == "self"
                ):
                    return node.attr in captured
                node = parent
            return isinstance(node, ast.Name) and node.id in foreign

        # Alias pass: locals assigned from foreign-rooted expressions.
        for _ in range(4):
            grew = False
            for node in _scope_nodes(info.node):
                if not isinstance(node, ast.Assign):
                    continue
                value = node.value
                if isinstance(value, (ast.Attribute, ast.Name)) and (
                    root_is_foreign(value)
                    or (
                        isinstance(value, ast.Name) and value.id in foreign
                    )
                ):
                    for name in (
                        n for t in node.targets for n in _target_names(t)
                    ):
                        if name not in foreign:
                            foreign.add(name)
                            grew = True
            if not grew:
                break

        for node in _scope_nodes(info.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    if target.attr in wiring:
                        continue
                    # `self.x = v` stores the observer's OWN attribute
                    # (capturing references is the attach idiom); only
                    # stores through foreign objects are mutations.
                    if (
                        isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    if root_is_foreign(target):
                        yield (
                            info.path,
                            target.lineno,
                            target.col_offset,
                            f"observer code writes foreign attribute "
                            f"{target.attr!r} (in {info.qname}); only the "
                            "wiring attrs "
                            f"{sorted(wiring)} may be installed",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id == "setattr"
                    and node.args
                    and (
                        root_is_foreign(node.args[0])
                        or (
                            isinstance(node.args[0], ast.Name)
                            and node.args[0].id in foreign
                        )
                    )
                ):
                    yield (
                        info.path,
                        node.lineno,
                        node.col_offset,
                        f"observer code calls setattr on foreign state "
                        f"(in {info.qname})",
                    )
                    continue
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in _MUTATOR_METHODS:
                    continue
                base = func.value
                if root_is_foreign(base) or (
                    isinstance(base, ast.Name) and base.id in foreign
                ):
                    # Accumulator exemption: a parameter every caller
                    # fills with an observer-created container.
                    root = base
                    while isinstance(root, (ast.Attribute, ast.Subscript)):
                        root = root.value
                    if (
                        isinstance(root, ast.Name)
                        and root.id in info.params
                        and self._param_locally_rooted(
                            project, info.qname, root.id, set()
                        )
                    ):
                        continue
                    yield (
                        info.path,
                        node.lineno,
                        node.col_offset,
                        f"observer code mutates foreign state via "
                        f".{func.attr}() (in {info.qname}); observation "
                        "must be read-only",
                    )
