"""Findings: what the linter reports.

A :class:`Finding` is one rule violation at one source location.  It is
deliberately a plain value object — hashable, orderable, serialisable —
so reporters, tests and the CI gate can treat lint output as data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["Finding", "PARSE_ERROR_ID"]

# Pseudo-rule id used when a file cannot be parsed at all.
PARSE_ERROR_ID = "E001"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    Ordering is (path, line, col, rule_id) so rendered reports are
    stable regardless of rule execution order — the linter's own output
    must be deterministic.
    """

    path: str
    line: int
    col: int
    rule_id: str = field(compare=True)
    message: str = field(compare=False)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
