"""Reporters: render a lint run for humans (text) or machines (JSON).

Both render the same :class:`LintReport`; both are byte-stable for a
given tree — the linter that polices determinism must itself be
deterministic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

from .findings import Finding

__all__ = ["LintReport", "render_text", "render_json"]


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in sorted(self.findings):
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts


def render_text(report: LintReport) -> str:
    """``path:line:col: RULE message`` lines plus a one-line summary."""
    lines = [finding.render() for finding in sorted(report.findings)]
    if report.clean:
        lines.append(f"repro.lint: {report.files_checked} file(s) clean")
    else:
        breakdown = ", ".join(
            f"{rule} x{count}" for rule, count in sorted(report.by_rule().items())
        )
        lines.append(
            f"repro.lint: {len(report.findings)} finding(s) in "
            f"{report.files_checked} file(s) ({breakdown})"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    payload = {
        "clean": report.clean,
        "files_checked": report.files_checked,
        "counts": report.by_rule(),
        "findings": [finding.to_dict() for finding in sorted(report.findings)],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
