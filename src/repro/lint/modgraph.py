"""Project module dependency graph.

Maps every linted file to a dotted module name, resolves each import
statement against the set of project modules (stdlib and third-party
imports are ignored), and records whether the edge is *eager* (executed
at module import time: top level, or inside a top-level ``if``/``try``)
or *lazy* (function-local, the sanctioned cycle-breaker).

The ARCH rule family consumes this graph; ``repro lint --graph`` exports
it as DOT or JSON.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = ["ImportEdge", "ModuleGraph", "module_name_for"]


def module_name_for(path: str, root: str) -> Tuple[str, bool]:
    """``(dotted_module, in_root)`` for a file path.

    The dotted name starts at the last path segment equal to ``root``
    (``src/repro/core/scheduler.py`` -> ``repro.core.scheduler``).
    Files outside the root package get a path-derived dotted name (so
    relative imports between them still resolve) with ``in_root`` False.
    ``__init__.py`` maps to its package name.
    """
    parts = list(PurePosixPath(Path(path).as_posix()).parts)
    if parts and parts[0] == "/":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    in_root = False
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == root:
            parts = parts[i:]
            in_root = True
            break
    return ".".join(parts), in_root


@dataclass(frozen=True)
class ImportEdge:
    src: str
    dst: str
    line: int
    eager: bool


class ModuleGraph:
    """Import edges between project modules, eager and lazy."""

    def __init__(self, root: str):
        self.root = root
        # module name -> file path
        self.modules: Dict[str, str] = {}
        # module name -> True when the module lives under the root pkg
        self.in_root: Dict[str, bool] = {}
        self.edges: List[ImportEdge] = []

    @classmethod
    def build(
        cls, files: Dict[str, ast.AST], root: str
    ) -> "ModuleGraph":
        """``files`` maps path -> parsed module AST."""
        graph = cls(root)
        for path in sorted(files):
            name, in_root = module_name_for(path, root)
            graph.modules[name] = path
            graph.in_root[name] = in_root
        known = set(graph.modules)
        # Packages exist implicitly: "repro.core" is known if any
        # "repro.core.x" is, so `from ..core import scheduler` resolves
        # even when core/__init__.py was not in the linted file set.
        packages: Set[str] = set()
        for name in known:
            parts = name.split(".")
            for i in range(1, len(parts)):
                packages.add(".".join(parts[:i]))
        resolvable = known | packages
        for path in sorted(files):
            name, _ = module_name_for(path, root)
            graph._collect_imports(name, path, files[path], known, resolvable)
        graph.edges.sort(key=lambda e: (e.src, e.dst, e.line))
        return graph

    def _collect_imports(
        self,
        module: str,
        path: str,
        tree: ast.AST,
        known: Set[str],
        resolvable: Set[str],
    ) -> None:
        is_package = Path(path).name == "__init__.py"
        eager_nodes = _eager_statements(tree)
        for node in ast.walk(tree):
            eager = node in eager_nodes
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = self._resolve(alias.name, known, resolvable)
                    if target is not None:
                        self._add(module, target, node.lineno, eager)
            elif isinstance(node, ast.ImportFrom):
                base = _from_base(module, is_package, node)
                if base is None:
                    continue
                for alias in node.names:
                    candidate = f"{base}.{alias.name}" if base else alias.name
                    target = self._resolve(candidate, known, resolvable)
                    if target is None:
                        target = self._resolve(base, known, resolvable)
                    if target is not None:
                        self._add(module, target, node.lineno, eager)

    def _resolve(
        self,
        candidate: Optional[str],
        known: Set[str],
        resolvable: Set[str],
    ) -> Optional[str]:
        """Resolve an import target, refusing to invent package edges.

        On partial file sets (``--changed``), an import of a submodule
        that exists on disk but was not linted would otherwise collapse
        onto its package ``__init__``, fabricating eager edges — and
        false ARCH002 cycles — that the full-tree run does not have.
        """
        target = _best_target(candidate, known, resolvable)
        if target is None or candidate is None or target == candidate:
            return target
        path = self.modules.get(target)
        if path is None or Path(path).name != "__init__.py":
            return target
        child = candidate[len(target) + 1 :].split(".")[0]
        pkg_dir = Path(path).parent
        if (pkg_dir / f"{child}.py").exists() or (
            pkg_dir / child / "__init__.py"
        ).exists():
            return None
        return target

    def _add(self, src: str, dst: str, line: int, eager: bool) -> None:
        if src == dst:
            return
        self.edges.append(ImportEdge(src, dst, line, eager))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def component_of(self, module: str) -> Optional[str]:
        """First segment below the root package, or None outside it."""
        if not self.in_root.get(module, False):
            return None
        parts = module.split(".")
        if len(parts) < 2:
            return None
        return parts[1]

    def eager_cycles(self) -> List[List[str]]:
        """Cycles in the eager (import-time) graph among root modules.

        Returns each strongly connected component of size > 1 as a
        sorted module list; deterministic order.
        """
        adjacency: Dict[str, Set[str]] = {}
        for edge in self.edges:
            if not edge.eager:
                continue
            if not self.in_root.get(edge.src) or not self.in_root.get(edge.dst):
                continue
            adjacency.setdefault(edge.src, set()).add(edge.dst)
            adjacency.setdefault(edge.dst, set())
        return _sccs(adjacency)

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "modules": [
                {"name": name, "path": self.modules[name]}
                for name in sorted(self.modules)
            ],
            "edges": [
                {
                    "from": edge.src,
                    "to": edge.dst,
                    "line": edge.line,
                    "eager": edge.eager,
                }
                for edge in self.edges
            ],
        }

    def to_dot(self) -> str:
        lines = ["digraph modules {", "  rankdir=LR;"]
        for name in sorted(self.modules):
            lines.append(f'  "{name}";')
        for edge in self.edges:
            style = "" if edge.eager else " [style=dashed]"
            lines.append(f'  "{edge.src}" -> "{edge.dst}"{style};')
        lines.append("}")
        return "\n".join(lines) + "\n"


def _eager_statements(tree: ast.AST) -> Set[ast.AST]:
    """Import nodes executed at module import time.

    Top-level imports, plus imports nested only in top-level ``if`` /
    ``try`` blocks (version guards run eagerly too).  Anything inside a
    function or class body is lazy.
    """
    eager: Set[ast.AST] = set()
    stack: List[ast.stmt] = list(getattr(tree, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            eager.add(node)
        elif isinstance(node, ast.If):
            # `if TYPE_CHECKING:` bodies never execute — those imports
            # are annotation-only and count as lazy edges.
            if not _is_type_checking_test(node.test):
                stack.extend(node.body)
            stack.extend(node.orelse)
        elif isinstance(node, ast.Try):
            stack.extend(node.body)
            stack.extend(node.orelse)
            stack.extend(node.finalbody)
            for handler in node.handlers:
                stack.extend(handler.body)
        elif isinstance(node, (ast.With,)):
            stack.extend(node.body)
    return eager


def _is_type_checking_test(test: ast.AST) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _from_base(
    module: str, is_package: bool, node: ast.ImportFrom
) -> Optional[str]:
    """Absolute dotted base of a ``from X import y`` statement."""
    if node.level == 0:
        return node.module or ""
    parts = module.split(".")
    # For a package __init__, level 1 refers to the package itself.
    if not is_package:
        parts = parts[:-1]
    drop = node.level - 1
    if drop > len(parts):
        return None
    base_parts = parts[: len(parts) - drop] if drop else parts
    if node.module:
        base_parts = base_parts + node.module.split(".")
    return ".".join(base_parts)


def _best_target(
    candidate: Optional[str], known: Set[str], resolvable: Set[str]
) -> Optional[str]:
    """Resolve a dotted import target to a project module, if any.

    Prefers an exact file match; falls back to the longest known prefix
    (importing ``repro.core.scheduler.GangScheduler`` hits the module;
    importing a bare package hits its ``__init__`` module if linted).
    """
    if not candidate:
        return None
    parts = candidate.split(".")
    for end in range(len(parts), 0, -1):
        name = ".".join(parts[:end])
        if name in known:
            return name
        if name in resolvable and end < len(parts):
            # A known package prefix without a linted file: keep
            # shrinking — deeper segments were attribute names.
            continue
    return None


def _sccs(adjacency: Dict[str, Set[str]]) -> List[List[str]]:
    """Iterative Tarjan; returns sorted non-trivial SCCs, sorted."""
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    result: List[List[str]] = []
    counter = [0]

    for start in sorted(adjacency):
        if start in index_of:
            continue
        work: List[Tuple[str, Iterator[str]]] = [
            (start, iter(sorted(adjacency.get(start, ()))))
        ]
        index_of[start] = lowlink[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index_of:
                    index_of[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(adjacency.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    result.append(sorted(component))
    result.sort()
    return result
