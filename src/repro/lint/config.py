"""Lint configuration: baked-in defaults plus ``pyproject.toml`` overrides.

The defaults encode this repository's determinism discipline (see
``docs/LINTING.md``); a ``[tool.repro.lint]`` table can narrow or widen
any of them.  Keys use dashes in TOML (``env-guard-paths``) and map to
the underscored dataclass fields here.

Python 3.9 has no ``tomllib``, and this repo installs nothing it does
not already have — so when ``tomllib`` is missing we fall back to a
deliberately tiny parser that understands exactly the subset the lint
table uses: string/bool/int scalars and (possibly multi-line) lists of
strings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, fields, replace
from pathlib import Path, PurePosixPath
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

__all__ = ["LintConfig", "load_config", "find_pyproject", "path_matches"]


def path_matches(path: str, patterns: Sequence[str]) -> bool:
    """True if any pattern's path segments appear contiguously in ``path``.

    ``"src/repro"`` matches ``/home/x/src/repro/cli.py`` and
    ``src/repro/cli.py`` alike; a full filename pattern like
    ``"src/repro/sim/rng.py"`` matches only that file.  Segment-based
    matching keeps relative vs. absolute invocation equivalent.
    """
    parts = PurePosixPath(Path(path).as_posix()).parts
    for pattern in patterns:
        want = PurePosixPath(pattern).parts
        if not want:
            continue
        for i in range(len(parts) - len(want) + 1):
            if parts[i:i + len(want)] == want:
                return True
    return False


@dataclass(frozen=True)
class LintConfig:
    """Effective rule set and the path scopes each rule family honours."""

    # Rule selection: empty select = all registered rules.
    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    # Directory-expansion excludes (explicitly named files are always
    # linted, so the fixture corpus can be linted on purpose).
    exclude: Tuple[str, ...] = (
        "tests/lint/fixtures",
        "__pycache__",
        ".git",
        "build",
        "dist",
    )
    # Where the determinism family (DET001-DET006) applies.
    determinism_paths: Tuple[str, ...] = ("src/repro",)
    # Where the performance family (PERF001/PERF002) applies: hot-path
    # code.
    perf_paths: Tuple[str, ...] = ("src/repro",)
    # Files allowed to import heapq (PERF002): the calendar-queue
    # kernel wraps it; everything else schedules through the Simulator.
    heapq_whitelist: Tuple[str, ...] = ("src/repro/sim/wheel.py",)
    # Where OBS001 bans ad-hoc print() in favour of structured logging.
    print_ban_paths: Tuple[str, ...] = ("src/repro",)
    # Where OBS002 checks bus emissions: every string-literal event
    # kind passed to ``*.emit(...)`` must appear in the catalogue.
    event_kind_paths: Tuple[str, ...] = ("src/repro",)
    # The telemetry event catalogue.  This is a copy of
    # ``repro.telemetry.events.EVENT_KINDS`` — the lint layer may not
    # import telemetry (ARCH003: ``lint -> *``), so the catalogue is
    # configuration here and a cross-check test keeps the two in sync.
    event_catalogue: Tuple[str, ...] = (
        "request.created",
        "request.submitted",
        "request.finished",
        "request.retry",
        "batch.enqueued",
        "batch.dispatched",
        "session.started",
        "session.finished",
        "sched.decision",
        "sched.tenure_begin",
        "sched.tenure_end",
        "sched.eviction",
        "kernel.submitted",
        "kernel.rejected",
        "kernel.started",
        "kernel.finished",
        "monitor.drift",
        "device.crashed",
        "device.reset",
        "job.failed_over",
        "job.shed",
        "breaker.state",
        "health.state",
        "stream.occupancy",
        "admission.decision",
        "admission.dispatch",
        "journal.recovered",
    )
    # Where ROB001 flags broad/bare except handlers that neither
    # re-raise nor log (silent error swallowing).
    robust_paths: Tuple[str, ...] = ("src/repro",)
    # Call names that sanction a retry loop (ROB002): a `while True`
    # whose except-handler `continue`s must consult one of these —
    # the RetryPolicy surface plus the recovery manager's failover
    # predicate — or be rewritten on top of them.
    retry_helpers: Tuple[str, ...] = (
        "should_retry",
        "_should_retry",
        "should_failover",
        "_should_failover",
        "backoff",
        "backoff_for",
    )
    # The CLI presentation layer may print: its job is stdout.
    print_allow: Tuple[str, ...] = ("src/repro/cli.py",)
    # Where environment reads are banned (DET004): sim/scheduler paths.
    env_guard_paths: Tuple[str, ...] = (
        "src/repro/sim",
        "src/repro/core",
        "src/repro/serving",
        "src/repro/gpu",
        "src/repro/host",
        "src/repro/faults",
    )
    # Files allowed to construct raw random.Random (the stream factory).
    rng_whitelist: Tuple[str, ...] = ("src/repro/sim/rng.py",)
    # Call names that namespace a seed (DET003 accepts these as args).
    seed_helpers: Tuple[str, ...] = ("derive_seed",)
    # Files whose acquisition order feeds the CON002 cycle check.
    lock_order_files: Tuple[str, ...] = (
        "src/repro/core/scheduler.py",
        "src/repro/sim/resources.py",
        "src/repro/serving/session.py",
    )
    # "attr:fn1,fn2" — attribute writes allowed only in the named
    # functions (CON003 token-holder heuristic).
    guarded_attrs: Tuple[str, ...] = (
        "holder:_grant,__init__",
        "cumulated_cost:on_node_done,__init__,rollback",
    )
    # ------------------------------------------------------------------
    # FLOW family (whole-program taint analysis) scopes.
    # ------------------------------------------------------------------
    # Decision code: modules whose branches / RNG draws / queue ordering
    # must never consume telemetry-derived values (FLOW001 sinks).
    flow_decision_paths: Tuple[str, ...] = (
        "src/repro/core",
        "src/repro/gpu",
        "src/repro/sim",
    )
    # Observer code: modules whose functions are treated as telemetry
    # state sources (FLOW001) and checked for foreign-state mutation
    # (FLOW003).
    flow_observer_paths: Tuple[str, ...] = ("src/repro/telemetry",)
    # Attribute names the observer layer is sanctioned to *write* on
    # foreign objects: the wiring seams installed by Telemetry.attach.
    flow_wiring_attrs: Tuple[str, ...] = ("telemetry", "on_drift")
    # self.<attr> references inside observer code that alias captured
    # core objects (mutating through them is a FLOW003 violation).
    flow_captured_attrs: Tuple[str, ...] = (
        "server",
        "scheduler",
        "device",
        "driver",
        "sim",
    )
    # Offline replay harnesses: code here consumes telemetry from a
    # *completed* run to parameterise a *fresh* simulation (what-if
    # analysis).  The observer-effect property protects a run from its
    # own observer; it cannot be violated by a run that is already
    # over, so FLOW001 taint does not propagate out of these modules.
    flow_offline_paths: Tuple[str, ...] = (
        "src/repro/experiments/whatif.py",
    )
    # ------------------------------------------------------------------
    # ARCH family (layer contracts over the module dependency graph).
    # ------------------------------------------------------------------
    # Root package the module graph is rooted at; files outside it are
    # mapped by their path but exempt from layer checks.
    arch_root: str = "repro"
    # Bottom-up layers; each entry is a space-separated group of sibling
    # top-level components that may import each other and anything in a
    # lower layer (eager, module-level imports only — ARCH001).
    arch_layers: Tuple[str, ...] = (
        "sim sanitize",
        "graph host",
        "gpu zoo",
        "workloads",
        "core serving faults",
        "metrics slo recovery telemetry cluster lint durability",
        "analysis experiments",
        "bench cli __main__",
    )
    # "src -> dst" component edges banned outright (ARCH003; counts
    # lazy, function-level imports too).  "*" wildcards either side.
    arch_forbid: Tuple[str, ...] = (
        "sim -> *",
        "telemetry -> *",
        "lint -> *",
        "sanitize -> *",
        "* -> cli",
        "* -> bench",
    )
    # Exact "src -> dst" pairs exempted from the forbid list.
    arch_allow: Tuple[str, ...] = (
        "__main__ -> cli",
        "cli -> bench",
    )
    # Reject eager import cycles among root-package modules (ARCH002).
    arch_no_cycles: bool = True
    parsed_guards: Dict[str, Tuple[str, ...]] = field(
        default_factory=dict, compare=False
    )

    def __post_init__(self) -> None:
        guards: Dict[str, Tuple[str, ...]] = {}
        for entry in self.guarded_attrs:
            attr, _, funcs = entry.partition(":")
            attr = attr.strip()
            if not attr:
                raise ValueError(f"bad guarded-attrs entry: {entry!r}")
            guards[attr] = tuple(
                fn.strip() for fn in funcs.split(",") if fn.strip()
            )
        object.__setattr__(self, "parsed_guards", guards)

    def with_overrides(self, **overrides: Any) -> "LintConfig":
        return replace(self, **overrides)


_FIELDS = {f.name: f for f in fields(LintConfig) if f.name != "parsed_guards"}
_FIELD_NAMES = set(_FIELDS)


def _coerce_value(name: str, key: str, value: Any) -> Any:
    """Coerce a TOML value to the dataclass field's default type."""
    default = _FIELDS[name].default
    if isinstance(default, bool):
        if not isinstance(value, bool):
            raise ValueError(f"[tool.repro.lint] {key} must be a boolean")
        return value
    if isinstance(default, str):
        if not isinstance(value, str):
            raise ValueError(f"[tool.repro.lint] {key} must be a string")
        return value
    # Tuple-typed fields accept a list or a single string.
    if isinstance(value, (list, tuple)):
        return tuple(str(item) for item in value)
    if isinstance(value, str):
        return (value,)
    raise ValueError(f"[tool.repro.lint] {key} must be a string/list")


def _config_from_table(table: Mapping[str, Any]) -> LintConfig:
    overrides: Dict[str, Any] = {}
    for key, value in table.items():
        if key == "arch" and isinstance(value, Mapping):
            # Nested [tool.repro.lint.arch] table: its keys map onto the
            # arch_* dataclass fields.
            for sub_key, sub_value in value.items():
                name = "arch_" + sub_key.replace("-", "_")
                if name not in _FIELD_NAMES:
                    raise ValueError(
                        f"unknown [tool.repro.lint.arch] key: {sub_key!r}"
                    )
                overrides[name] = _coerce_value(name, sub_key, sub_value)
            continue
        name = key.replace("-", "_")
        if name not in _FIELD_NAMES:
            raise ValueError(f"unknown [tool.repro.lint] key: {key!r}")
        overrides[name] = _coerce_value(name, key, value)
    return LintConfig(**overrides)


# ----------------------------------------------------------------------
# TOML loading (tomllib when present, mini-parser otherwise)
# ----------------------------------------------------------------------

_SECTION = re.compile(r"^\s*\[(?P<name>[^\]]+)\]\s*$")
_KEY = re.compile(r"^\s*(?P<key>[A-Za-z0-9_-]+)\s*=\s*(?P<value>.*)$")
_STRING = re.compile(r'"((?:[^"\\]|\\.)*)"')


def _parse_lint_table_fallback(text: str) -> Dict[str, Any]:
    """Extract ``[tool.repro.lint]`` without tomllib (Python 3.9).

    Supports ``key = "str"`` / ``key = ["a", "b"]`` (lists may span
    lines) / bare ints and booleans — the full subset this table uses.
    The nested ``[tool.repro.lint.arch]`` section lands under the
    ``"arch"`` key, mirroring tomllib's shape.
    """
    lines = text.splitlines()
    root_table: Dict[str, Any] = {}
    table: Optional[Dict[str, Any]] = None
    i = 0
    while i < len(lines):
        line = lines[i]
        section = _SECTION.match(line)
        if section is not None:
            name = section.group("name").strip()
            if name == "tool.repro.lint":
                table = root_table
            elif name == "tool.repro.lint.arch":
                table = root_table.setdefault("arch", {})
            else:
                table = None
            i += 1
            continue
        if table is None:
            i += 1
            continue
        entry = _KEY.match(line)
        if entry is None:
            i += 1
            continue
        key, value = entry.group("key"), entry.group("value").strip()
        if value.startswith("["):
            # Accumulate until the closing bracket (comments stripped by
            # the string regex, which only pulls quoted items).
            buffer = value
            while "]" not in buffer and i + 1 < len(lines):
                i += 1
                buffer += " " + lines[i].strip()
            table[key] = _STRING.findall(buffer)
        elif value.startswith('"'):
            match = _STRING.match(value)
            table[key] = match.group(1) if match else value.strip('"')
        elif value in ("true", "false"):
            table[key] = value == "true"
        else:
            comment_free = value.split("#", 1)[0].strip()
            try:
                table[key] = int(comment_free)
            except ValueError:
                table[key] = comment_free
        i += 1
    return root_table


def _load_lint_table(pyproject: Path) -> Dict[str, Any]:
    text = pyproject.read_text(encoding="utf-8")
    try:
        import tomllib
    except ImportError:
        return _parse_lint_table_fallback(text)
    data = tomllib.loads(text)
    tool = data.get("tool", {})
    return dict(tool.get("repro", {}).get("lint", {}))


def find_pyproject(start: Path) -> Optional[Path]:
    """Walk up from ``start`` looking for a ``pyproject.toml``."""
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for candidate in [node, *node.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(pyproject: Optional[Path] = None) -> LintConfig:
    """Defaults merged with ``[tool.repro.lint]`` if the file is given."""
    if pyproject is None:
        return LintConfig()
    return _config_from_table(_load_lint_table(pyproject))
