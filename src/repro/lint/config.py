"""Lint configuration: baked-in defaults plus ``pyproject.toml`` overrides.

The defaults encode this repository's determinism discipline (see
``docs/LINTING.md``); a ``[tool.repro.lint]`` table can narrow or widen
any of them.  Keys use dashes in TOML (``env-guard-paths``) and map to
the underscored dataclass fields here.

Python 3.9 has no ``tomllib``, and this repo installs nothing it does
not already have — so when ``tomllib`` is missing we fall back to a
deliberately tiny parser that understands exactly the subset the lint
table uses: string/bool/int scalars and (possibly multi-line) lists of
strings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, fields, replace
from pathlib import Path, PurePosixPath
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

__all__ = ["LintConfig", "load_config", "find_pyproject", "path_matches"]


def path_matches(path: str, patterns: Sequence[str]) -> bool:
    """True if any pattern's path segments appear contiguously in ``path``.

    ``"src/repro"`` matches ``/home/x/src/repro/cli.py`` and
    ``src/repro/cli.py`` alike; a full filename pattern like
    ``"src/repro/sim/rng.py"`` matches only that file.  Segment-based
    matching keeps relative vs. absolute invocation equivalent.
    """
    parts = PurePosixPath(Path(path).as_posix()).parts
    for pattern in patterns:
        want = PurePosixPath(pattern).parts
        if not want:
            continue
        for i in range(len(parts) - len(want) + 1):
            if parts[i:i + len(want)] == want:
                return True
    return False


@dataclass(frozen=True)
class LintConfig:
    """Effective rule set and the path scopes each rule family honours."""

    # Rule selection: empty select = all registered rules.
    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    # Directory-expansion excludes (explicitly named files are always
    # linted, so the fixture corpus can be linted on purpose).
    exclude: Tuple[str, ...] = (
        "tests/lint/fixtures",
        "__pycache__",
        ".git",
        "build",
        "dist",
    )
    # Where the determinism family (DET001-DET006) applies.
    determinism_paths: Tuple[str, ...] = ("src/repro",)
    # Where the performance family (PERF001) applies: hot-path code.
    perf_paths: Tuple[str, ...] = ("src/repro",)
    # Where OBS001 bans ad-hoc print() in favour of structured logging.
    print_ban_paths: Tuple[str, ...] = ("src/repro",)
    # Where ROB001 flags broad/bare except handlers that neither
    # re-raise nor log (silent error swallowing).
    robust_paths: Tuple[str, ...] = ("src/repro",)
    # The CLI presentation layer may print: its job is stdout.
    print_allow: Tuple[str, ...] = ("src/repro/cli.py",)
    # Where environment reads are banned (DET004): sim/scheduler paths.
    env_guard_paths: Tuple[str, ...] = (
        "src/repro/sim",
        "src/repro/core",
        "src/repro/serving",
        "src/repro/gpu",
        "src/repro/host",
        "src/repro/faults",
    )
    # Files allowed to construct raw random.Random (the stream factory).
    rng_whitelist: Tuple[str, ...] = ("src/repro/sim/rng.py",)
    # Call names that namespace a seed (DET003 accepts these as args).
    seed_helpers: Tuple[str, ...] = ("derive_seed",)
    # Files whose acquisition order feeds the CON002 cycle check.
    lock_order_files: Tuple[str, ...] = (
        "src/repro/core/scheduler.py",
        "src/repro/sim/resources.py",
        "src/repro/serving/session.py",
    )
    # "attr:fn1,fn2" — attribute writes allowed only in the named
    # functions (CON003 token-holder heuristic).
    guarded_attrs: Tuple[str, ...] = (
        "holder:_grant,__init__",
        "cumulated_cost:on_node_done,__init__,rollback",
    )
    parsed_guards: Dict[str, Tuple[str, ...]] = field(
        default_factory=dict, compare=False
    )

    def __post_init__(self) -> None:
        guards: Dict[str, Tuple[str, ...]] = {}
        for entry in self.guarded_attrs:
            attr, _, funcs = entry.partition(":")
            attr = attr.strip()
            if not attr:
                raise ValueError(f"bad guarded-attrs entry: {entry!r}")
            guards[attr] = tuple(
                fn.strip() for fn in funcs.split(",") if fn.strip()
            )
        object.__setattr__(self, "parsed_guards", guards)

    def with_overrides(self, **overrides: Any) -> "LintConfig":
        return replace(self, **overrides)


_FIELD_NAMES = {f.name for f in fields(LintConfig) if f.name != "parsed_guards"}


def _config_from_table(table: Mapping[str, Any]) -> LintConfig:
    overrides: Dict[str, Any] = {}
    for key, value in table.items():
        name = key.replace("-", "_")
        if name not in _FIELD_NAMES:
            raise ValueError(f"unknown [tool.repro.lint] key: {key!r}")
        if isinstance(value, (list, tuple)):
            value = tuple(str(item) for item in value)
        elif not isinstance(value, str):
            raise ValueError(f"[tool.repro.lint] {key} must be a string/list")
        else:
            value = (value,)
        overrides[name] = value
    return LintConfig(**overrides)


# ----------------------------------------------------------------------
# TOML loading (tomllib when present, mini-parser otherwise)
# ----------------------------------------------------------------------

_SECTION = re.compile(r"^\s*\[(?P<name>[^\]]+)\]\s*$")
_KEY = re.compile(r"^\s*(?P<key>[A-Za-z0-9_-]+)\s*=\s*(?P<value>.*)$")
_STRING = re.compile(r'"((?:[^"\\]|\\.)*)"')


def _parse_lint_table_fallback(text: str) -> Dict[str, Any]:
    """Extract ``[tool.repro.lint]`` without tomllib (Python 3.9).

    Supports ``key = "str"`` / ``key = ["a", "b"]`` (lists may span
    lines) / bare ints and booleans — the full subset this table uses.
    """
    lines = text.splitlines()
    table: Dict[str, Any] = {}
    in_section = False
    i = 0
    while i < len(lines):
        line = lines[i]
        section = _SECTION.match(line)
        if section is not None:
            in_section = section.group("name").strip() == "tool.repro.lint"
            i += 1
            continue
        if not in_section:
            i += 1
            continue
        entry = _KEY.match(line)
        if entry is None:
            i += 1
            continue
        key, value = entry.group("key"), entry.group("value").strip()
        if value.startswith("["):
            # Accumulate until the closing bracket (comments stripped by
            # the string regex, which only pulls quoted items).
            buffer = value
            while "]" not in buffer and i + 1 < len(lines):
                i += 1
                buffer += " " + lines[i].strip()
            table[key] = _STRING.findall(buffer)
        elif value.startswith('"'):
            match = _STRING.match(value)
            table[key] = match.group(1) if match else value.strip('"')
        elif value in ("true", "false"):
            table[key] = value == "true"
        else:
            comment_free = value.split("#", 1)[0].strip()
            try:
                table[key] = int(comment_free)
            except ValueError:
                table[key] = comment_free
        i += 1
    return table


def _load_lint_table(pyproject: Path) -> Dict[str, Any]:
    text = pyproject.read_text(encoding="utf-8")
    try:
        import tomllib
    except ImportError:
        return _parse_lint_table_fallback(text)
    data = tomllib.loads(text)
    tool = data.get("tool", {})
    return dict(tool.get("repro", {}).get("lint", {}))


def find_pyproject(start: Path) -> Optional[Path]:
    """Walk up from ``start`` looking for a ``pyproject.toml``."""
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for candidate in [node, *node.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(pyproject: Optional[Path] = None) -> LintConfig:
    """Defaults merged with ``[tool.repro.lint]`` if the file is given."""
    if pyproject is None:
        return LintConfig()
    return _config_from_table(_load_lint_table(pyproject))
