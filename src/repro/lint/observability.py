"""Observability rules (OBS001, OBS002).

The runtime telemetry subsystem (:mod:`repro.telemetry`) gives every
component a structured, sim-timestamped logging path; an ad-hoc
``print()`` in library code bypasses it — the output carries no
timestamp, no component, no level, cannot be filtered or captured by a
sink, and interleaves unpredictably with real reports.  OBS001 bans
``print()`` under the configured paths so diagnostics go through
``repro.telemetry.logs.get_logger(...)`` instead.

The CLI presentation layer is exempt (``print-allow``): its job *is*
writing to stdout for a human.  A deliberate print elsewhere — e.g. a
debugging session you intend to delete — is silenced with
``# lint: disable=OBS001``, never by widening the allow list.

OBS002 keeps the event catalogue exhaustive: every string-literal
event kind passed to a telemetry ``emit(...)`` seam must be declared in
``repro.telemetry.events.EVENT_KINDS`` (mirrored into
``LintConfig.event_catalogue`` — the lint layer cannot import
telemetry).  Subscribers are promised the catalogue covers everything
on the bus; an uncatalogued kind silently falls through every handler
table, metrics fold, and span builder.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence, Tuple

from .config import LintConfig, path_matches
from .rules import Rule, register

__all__ = ["PrintCallRule", "UnknownEventKindRule"]


@register
class PrintCallRule(Rule):
    rule_id = "OBS001"
    name = "print-call"
    summary = "print() in library code; use repro.telemetry.logs.get_logger"
    node_types = (ast.Call,)

    def scopes(self, config: LintConfig) -> Optional[Sequence[str]]:
        return config.print_ban_paths

    def check(self, node: ast.Call, ctx) -> Iterator[Tuple[ast.AST, str]]:
        func = node.func
        if not (isinstance(func, ast.Name) and func.id == "print"):
            return
        if path_matches(ctx.path, ctx.config.print_allow):
            return
        yield node, (
            "`print()` bypasses structured logging (no timestamp, "
            "component, or level, and no sink can capture it); use "
            "`repro.telemetry.logs.get_logger(component)` instead"
        )


@register
class UnknownEventKindRule(Rule):
    rule_id = "OBS002"
    name = "unknown-event-kind"
    summary = "emit() event kind missing from the telemetry catalogue"
    node_types = (ast.Call,)

    def scopes(self, config: LintConfig) -> Optional[Sequence[str]]:
        return config.event_kind_paths

    def check(self, node: ast.Call, ctx) -> Iterator[Tuple[ast.AST, str]]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
            return
        if not node.args:
            return
        first = node.args[0]
        # Only string-literal kinds are checkable statically; a computed
        # kind is the log-sink path (LogRecord), not a bus emission.
        if not (
            isinstance(first, ast.Constant) and isinstance(first.value, str)
        ):
            return
        kind = first.value
        if kind in ctx.config.event_catalogue:
            return
        yield node, (
            f"event kind {kind!r} is not declared in the telemetry "
            f"event catalogue (repro.telemetry.events.EVENT_KINDS); "
            f"uncatalogued kinds silently miss every subscriber's "
            f"handler table — declare it there and in "
            f"LintConfig.event_catalogue"
        )
