"""Observability rules (OBS001).

The runtime telemetry subsystem (:mod:`repro.telemetry`) gives every
component a structured, sim-timestamped logging path; an ad-hoc
``print()`` in library code bypasses it — the output carries no
timestamp, no component, no level, cannot be filtered or captured by a
sink, and interleaves unpredictably with real reports.  OBS001 bans
``print()`` under the configured paths so diagnostics go through
``repro.telemetry.logs.get_logger(...)`` instead.

The CLI presentation layer is exempt (``print-allow``): its job *is*
writing to stdout for a human.  A deliberate print elsewhere — e.g. a
debugging session you intend to delete — is silenced with
``# lint: disable=OBS001``, never by widening the allow list.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence, Tuple

from .config import LintConfig, path_matches
from .rules import Rule, register

__all__ = ["PrintCallRule"]


@register
class PrintCallRule(Rule):
    rule_id = "OBS001"
    name = "print-call"
    summary = "print() in library code; use repro.telemetry.logs.get_logger"
    node_types = (ast.Call,)

    def scopes(self, config: LintConfig) -> Optional[Sequence[str]]:
        return config.print_ban_paths

    def check(self, node: ast.Call, ctx) -> Iterator[Tuple[ast.AST, str]]:
        func = node.func
        if not (isinstance(func, ast.Name) and func.id == "print"):
            return
        if path_matches(ctx.path, ctx.config.print_allow):
            return
        yield node, (
            "`print()` bypasses structured logging (no timestamp, "
            "component, or level, and no sink can capture it); use "
            "`repro.telemetry.logs.get_logger(component)` instead"
        )
