"""Changed-file discovery for ``repro lint --changed``.

Asks git for files differing from ``merge-base(HEAD, base)`` plus
untracked files, so the pre-commit path lints only what the branch
touched.  Any git failure (not a repo, unknown base, no git binary)
returns ``None`` and the caller falls back to a full run — fast paths
must never be able to *hide* findings, only defer them to CI, which
always runs the whole program.

Note the approximation: whole-program rules (FLOW/ARCH) see only the
changed files' subgraph under ``--changed``, so a feedback edge whose
endpoints are both in unchanged files surfaces in CI, not pre-commit.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import List, Optional, Set

__all__ = ["changed_python_files"]


def _git(args: List[str], cwd: Path) -> str:
    return subprocess.run(
        ["git", *args],
        cwd=str(cwd),
        check=True,
        capture_output=True,
        text=True,
    ).stdout


def changed_python_files(
    base: str = "main", cwd: Optional[Path] = None
) -> Optional[Set[Path]]:
    """Resolved paths of .py files changed since merge-base, or None.

    ``None`` signals "could not determine" (outside a git repo, unknown
    base ref, git missing) — the caller should lint everything.
    """
    cwd = cwd if cwd is not None else Path.cwd()
    try:
        top = _git(["rev-parse", "--show-toplevel"], cwd).strip()
        merge_base = _git(["merge-base", "HEAD", base], cwd).strip()
        diff = _git(
            ["diff", "--name-only", "-z", merge_base, "--", "*.py"], cwd
        )
        untracked = _git(
            ["ls-files", "--others", "--exclude-standard", "-z", "--", "*.py"],
            cwd,
        )
    except (subprocess.CalledProcessError, FileNotFoundError, OSError):
        return None
    root = Path(top)
    changed: Set[Path] = set()
    for blob in (diff, untracked):
        for name in blob.split("\0"):
            if not name:
                continue
            candidate = (root / name).resolve()
            # Deleted files still show in the diff; skip them.
            if candidate.is_file():
                changed.add(candidate)
    return changed
