"""Concurrency rules (CON001-CON003) for the cooperative gang scheduler.

PR 1 fixed a latent deadlock where a parked gang's condition variable
was never re-signalled; the postmortem class is "wait without a
predicate loop" plus "shared scheduler state mutated from the wrong
place".  These rules make that class a static error:

* CON001 — every ``yield <cv>.wait()`` must sit inside a ``while``
  whose test re-checks a real predicate (a woken waiter must re-verify
  the world before proceeding; `while True` re-waits but re-checks
  nothing).
* CON002 — a cross-file acquisition-order graph over the configured
  scheduler/resource/session files; a cycle means two code paths
  acquire the same primitives in opposite orders, the classic deadlock
  shape.
* CON003 — writes to guarded scheduler state (``holder``,
  ``cumulated_cost``) are only legal inside the whitelisted
  token-machinery functions; anything else is a bypass of the token
  protocol.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .config import LintConfig, path_matches
from .rules import CrossFileRule, Rule, dotted_name, register

__all__ = ["WaitPredicateLoopRule", "LockOrderRule", "GuardedStateWriteRule"]

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@register
class WaitPredicateLoopRule(Rule):
    rule_id = "CON001"
    name = "wait-outside-predicate-loop"
    summary = "ConditionVariable.wait not re-checked in a while-predicate loop"
    node_types = (ast.Yield,)

    def check(self, node: ast.Yield, ctx) -> Iterator[Tuple[ast.AST, str]]:
        value = node.value
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "wait"
        ):
            return
        loop = self._enclosing_while(node, ctx)
        if loop is None:
            yield node, (
                "`.wait()` outside a while-predicate loop: a waiter woken "
                "by notify_all must re-check its predicate or it runs on "
                "stale state (the PR-1 parked-gang deadlock class)"
            )
        elif isinstance(loop.test, ast.Constant) and loop.test.value:
            yield node, (
                "`.wait()` inside `while True`: the loop re-waits but "
                "re-checks nothing; spell the predicate in the loop test "
                "(`while not <predicate>:`)"
            )

    @staticmethod
    def _enclosing_while(node: ast.AST, ctx) -> Optional[ast.While]:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.While):
                return ancestor
            if isinstance(ancestor, _FUNCTION_NODES):
                return None
        return None


def _ordered_children(node: ast.AST) -> Iterator[ast.AST]:
    """Pre-order DFS (lexical order), not descending into nested defs."""
    for child in ast.iter_child_nodes(node):
        yield child
        if not isinstance(child, (*_FUNCTION_NODES, ast.ClassDef, ast.Lambda)):
            yield from _ordered_children(child)


_ACQUIRE_METHODS = ("request", "wait", "acquire")

# One acquisition-order edge: (before, after, path, line, col).
_Edge = Tuple[str, str, str, int, int]


@register
class LockOrderRule(CrossFileRule):
    rule_id = "CON002"
    name = "lock-order-cycle"
    summary = "acquisition-order cycle across scheduler/resource files"

    def scopes(self, config: LintConfig) -> Optional[Sequence[str]]:
        return config.lock_order_files

    def collect(self, ctx) -> List[_Edge]:
        edges: List[_Edge] = []
        for func in ast.walk(ctx.tree):
            if not isinstance(func, _FUNCTION_NODES):
                continue
            held: List[Tuple[str, ast.AST]] = []
            for node in _ordered_children(func):
                label = self._acquisition_label(node)
                if label is None:
                    continue
                for prior, _site in held:
                    if prior != label:
                        edges.append(
                            (prior, label, ctx.path, node.lineno, node.col_offset)
                        )
                held.append((label, node))
        return edges

    @staticmethod
    def _acquisition_label(node: ast.AST) -> Optional[str]:
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _ACQUIRE_METHODS
        ):
            return None
        receiver = dotted_name(node.func.value)
        if receiver is None:
            return None
        # Normalise away the instance prefix so `self.cores` in one
        # method and `self.cores` in another share a node.
        return receiver

    def finalize(
        self, collected: List[Tuple[str, Any]]
    ) -> Iterator[Tuple[str, int, int, str]]:
        edges: List[_Edge] = []
        for _path, data in collected:
            edges.extend(data)
        graph: Dict[str, Set[str]] = {}
        sites: Dict[Tuple[str, str], Tuple[str, int, int]] = {}
        for before, after, path, line, col in edges:
            graph.setdefault(before, set()).add(after)
            graph.setdefault(after, set())
            sites.setdefault((before, after), (path, line, col))
        for cycle in _find_cycles(graph):
            first_edge = (cycle[0], cycle[1])
            path, line, col = sites[first_edge]
            pretty = " -> ".join(cycle)
            yield path, line, col, (
                f"potential deadlock: acquisition order cycle {pretty}; "
                "two code paths acquire these primitives in opposite "
                "orders"
            )


def _find_cycles(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Minimal deterministic cycle enumeration (one per back edge)."""
    cycles: List[List[str]] = []
    seen_cycles: Set[Tuple[str, ...]] = set()
    state: Dict[str, int] = {}  # 0 unvisited, 1 on stack, 2 done
    stack: List[str] = []

    def visit(node: str) -> None:
        state[node] = 1
        stack.append(node)
        for neighbour in sorted(graph.get(node, ())):
            mark = state.get(neighbour, 0)
            if mark == 0:
                visit(neighbour)
            elif mark == 1:
                cycle = stack[stack.index(neighbour):] + [neighbour]
                # Canonicalise by rotating the smallest label first so
                # the same loop reported from two entries dedupes.
                body = cycle[:-1]
                pivot = body.index(min(body))
                canonical = tuple(body[pivot:] + body[:pivot])
                if canonical not in seen_cycles:
                    seen_cycles.add(canonical)
                    cycles.append(list(canonical) + [canonical[0]])
        stack.pop()
        state[node] = 2

    for node in sorted(graph):
        if state.get(node, 0) == 0:
            visit(node)
    return cycles


@register
class GuardedStateWriteRule(Rule):
    rule_id = "CON003"
    name = "guarded-state-write"
    summary = "scheduler shared state written outside token-holder sections"
    node_types = (ast.Assign, ast.AugAssign, ast.AnnAssign)

    def check(self, node: ast.AST, ctx) -> Iterator[Tuple[ast.AST, str]]:
        guards = ctx.config.parsed_guards
        if not guards:
            return
        targets: List[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
        else:
            targets = [node.target]
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            allowed = guards.get(target.attr)
            if allowed is None:
                continue
            func = self._enclosing_function(node, ctx)
            func_name = func.name if func is not None else "<module>"
            if func_name in allowed:
                continue
            yield target, (
                f"write to guarded scheduler state `.{target.attr}` in "
                f"`{func_name}`; only {', '.join(allowed)} may mutate it "
                "(token-holder discipline)"
            )

    @staticmethod
    def _enclosing_function(node: ast.AST, ctx):
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, _FUNCTION_NODES):
                return ancestor
        return None
