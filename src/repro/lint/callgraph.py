"""Project call graph (heuristic, precision-first).

Functions are indexed by qualified name (``repro.core.scheduler.
GangScheduler._grant``).  Call sites resolve to project functions only
when the receiver is unambiguous:

* a name bound by ``def`` in an enclosing scope of the same module,
* a name imported from a project module (``from x import f``),
* a dotted call through a module alias (``import repro.sim.rng as r``),
* ``self.m()`` / ``cls.m()`` — the enclosing class or a project base,
* a call on a local variable assigned from a project constructor
  (``d = Driver(...)`` then ``d.launch(...)``), or on a parameter whose
  annotation names a project class.

Constructor calls resolve to ``Class.__init__`` so seed provenance
(FLOW002) and taint (FLOW001) flow through object construction.
Anything else stays unresolved — for taint analysis a missing edge is a
missed propagation, but a wrong edge is a false positive in CI, and the
FLOW fixtures pin the cases that must resolve.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .modgraph import module_name_for

__all__ = ["FunctionInfo", "CallGraph"]


@dataclass
class FunctionInfo:
    qname: str
    module: str
    path: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_qname: Optional[str] = None
    params: Tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.qname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    qname: str
    module: str
    node: ast.ClassDef
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fn qname
    base_qnames: Tuple[str, ...] = ()


@dataclass(frozen=True)
class CallEdge:
    caller: str
    callee: str
    line: int


class CallGraph:
    """Functions, classes, and resolved call edges for the project."""

    def __init__(self, root: str):
        self.root = root
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.edges: List[CallEdge] = []
        # caller qname -> [(callee qname, call node)]
        self.calls_from: Dict[str, List[Tuple[str, ast.Call]]] = {}
        # callee qname -> [(caller qname, call node)]
        self.calls_to: Dict[str, List[Tuple[str, ast.Call]]] = {}
        # module -> {local name -> project qname} (imports + defs)
        self.module_bindings: Dict[str, Dict[str, str]] = {}
        # module -> set of names bound by `from repro.telemetry import X`
        self.module_import_sources: Dict[str, Dict[str, str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, files: Dict[str, ast.AST], root: str) -> "CallGraph":
        graph = cls(root)
        module_of_path: Dict[str, str] = {}
        for path in sorted(files):
            module, _ = module_name_for(path, root)
            module_of_path[path] = module
        # Pass 1: index defs, classes, imports.
        for path in sorted(files):
            graph._index_module(module_of_path[path], path, files[path])
        graph._resolve_bases()
        # Pass 2: resolve call sites.
        for path in sorted(files):
            graph._resolve_calls(module_of_path[path], path, files[path])
        graph.edges.sort(key=lambda e: (e.caller, e.callee, e.line))
        return graph

    def _index_module(self, module: str, path: str, tree: ast.AST) -> None:
        bindings = self.module_bindings.setdefault(module, {})
        sources = self.module_import_sources.setdefault(module, {})

        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                base = _absolute_from_base(module, path, node)
                if base is None:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    target = f"{base}.{alias.name}" if base else alias.name
                    sources[local] = target
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.asname:
                        sources[local] = alias.name
                    else:
                        sources[local] = alias.name.split(".")[0]

        def visit(body: Sequence[ast.stmt], prefix: str,
                  class_info: Optional[ClassInfo]) -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qname = f"{prefix}.{node.name}"
                    params = tuple(
                        a.arg
                        for a in [
                            *node.args.posonlyargs,
                            *node.args.args,
                            *node.args.kwonlyargs,
                        ]
                    )
                    info = FunctionInfo(
                        qname=qname,
                        module=module,
                        path=path,
                        node=node,
                        class_qname=(
                            class_info.qname if class_info is not None else None
                        ),
                        params=params,
                    )
                    self.functions[qname] = info
                    if class_info is not None:
                        class_info.methods[node.name] = qname
                    elif prefix == module:
                        bindings[node.name] = qname
                    visit(node.body, qname, None)
                elif isinstance(node, ast.ClassDef):
                    qname = f"{prefix}.{node.name}"
                    cinfo = ClassInfo(qname=qname, module=module, node=node)
                    self.classes[qname] = cinfo
                    if prefix == module:
                        bindings[node.name] = qname
                    visit(node.body, qname, cinfo)

        visit(getattr(tree, "body", []), module, None)

    def _resolve_bases(self) -> None:
        for cinfo in self.classes.values():
            bases: List[str] = []
            for base in cinfo.node.bases:
                qname = self._resolve_symbol(cinfo.module, base)
                if qname is not None and qname in self.classes:
                    bases.append(qname)
            cinfo.base_qnames = tuple(bases)

    def _resolve_symbol(self, module: str, node: ast.AST) -> Optional[str]:
        """Project qname for a Name/Attribute symbol reference."""
        if isinstance(node, ast.Name):
            local = self.module_bindings.get(module, {}).get(node.id)
            if local is not None:
                return local
            imported = self.module_import_sources.get(module, {}).get(node.id)
            if imported is not None:
                return self._canonical(imported)
            return None
        if isinstance(node, ast.Attribute):
            parts: List[str] = []
            cursor: ast.AST = node
            while isinstance(cursor, ast.Attribute):
                parts.append(cursor.attr)
                cursor = cursor.value
            if not isinstance(cursor, ast.Name):
                return None
            rooted = self.module_import_sources.get(module, {}).get(cursor.id)
            if rooted is None:
                return None
            dotted = ".".join([rooted, *reversed(parts)])
            return self._canonical(dotted)
        return None

    def _canonical(self, dotted: str) -> Optional[str]:
        """Map a dotted target onto a known function/class qname."""
        if dotted in self.functions or dotted in self.classes:
            return dotted
        return None

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------

    def _resolve_calls(self, module: str, path: str, tree: ast.AST) -> None:
        graph = self

        def enclosing_functions(
            body: Sequence[ast.stmt],
            prefix: str,
            class_info: Optional[ClassInfo],
            local_defs: Dict[str, str],
        ) -> None:
            # Collect sibling defs first so forward references resolve.
            scope_defs = dict(local_defs)
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scope_defs[node.name] = f"{prefix}.{node.name}"
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qname = f"{prefix}.{node.name}"
                    graph._resolve_function(
                        module, qname, node, class_info, scope_defs
                    )
                    enclosing_functions(node.body, qname, None, scope_defs)
                elif isinstance(node, ast.ClassDef):
                    cinfo = graph.classes.get(f"{prefix}.{node.name}")
                    enclosing_functions(
                        node.body, f"{prefix}.{node.name}", cinfo, scope_defs
                    )

        enclosing_functions(getattr(tree, "body", []), module, None, {})

    def _method_in_class(
        self, class_qname: str, method: str, seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        seen = seen or set()
        if class_qname in seen:
            return None
        seen.add(class_qname)
        cinfo = self.classes.get(class_qname)
        if cinfo is None:
            return None
        if method in cinfo.methods:
            return cinfo.methods[method]
        for base in cinfo.base_qnames:
            found = self._method_in_class(base, method, seen)
            if found is not None:
                return found
        return None

    def _constructor_of(self, class_qname: str) -> Optional[str]:
        return self._method_in_class(class_qname, "__init__")

    def _resolve_function(
        self,
        module: str,
        qname: str,
        fn: ast.AST,
        class_info: Optional[ClassInfo],
        scope_defs: Dict[str, str],
    ) -> None:
        # Local variable -> project class qname, from constructor calls
        # and annotations.
        var_types: Dict[str, str] = {}
        args = fn.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None:
                resolved = self._resolve_symbol(module, arg.annotation)
                if resolved is not None and resolved in self.classes:
                    var_types[arg.arg] = resolved

        def callee_for(call: ast.Call) -> Optional[str]:
            func = call.func
            if isinstance(func, ast.Name):
                target = scope_defs.get(func.id)
                if target is None:
                    target = self._resolve_symbol(module, func)
                if target is None:
                    return None
                if target in self.classes:
                    return self._constructor_of(target)
                if target in self.functions:
                    return target
                return None
            if isinstance(func, ast.Attribute):
                base = func.value
                if isinstance(base, ast.Name):
                    if base.id in ("self", "cls") and class_info is not None:
                        return self._method_in_class(
                            class_info.qname, func.attr
                        )
                    typed = var_types.get(base.id)
                    if typed is not None:
                        return self._method_in_class(typed, func.attr)
                # Dotted module access: repro.sim.rng.derive_seed(...)
                resolved = self._resolve_symbol(module, func)
                if resolved is not None:
                    if resolved in self.classes:
                        return self._constructor_of(resolved)
                    if resolved in self.functions:
                        return resolved
                return None
            return None

        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                target_cls = None
                func = node.value.func
                sym = (
                    scope_defs.get(func.id)
                    if isinstance(func, ast.Name)
                    else None
                )
                if sym is None:
                    sym = self._resolve_symbol(module, func)
                if sym is not None and sym in self.classes:
                    target_cls = sym
                if target_cls is not None:
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            var_types[tgt.id] = target_cls
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                resolved = self._resolve_symbol(module, node.annotation)
                if resolved is not None and resolved in self.classes:
                    var_types[node.target.id] = resolved

        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            callee = callee_for(node)
            if callee is None or callee == qname:
                continue
            self.edges.append(CallEdge(qname, callee, node.lineno))
            self.calls_from.setdefault(qname, []).append((callee, node))
            self.calls_to.setdefault(callee, []).append((qname, node))

    # ------------------------------------------------------------------
    # Queries / exports
    # ------------------------------------------------------------------

    def callers_of(self, qname: str) -> List[Tuple[str, ast.Call]]:
        return self.calls_to.get(qname, [])

    def resolve_call(self, module: str, call_expr: ast.AST) -> Optional[str]:
        """Best-effort resolution of an arbitrary symbol (for rules)."""
        return self._resolve_symbol(module, call_expr)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "functions": sorted(self.functions),
            "edges": [
                {"caller": e.caller, "callee": e.callee, "line": e.line}
                for e in self.edges
            ],
        }

    def to_dot(self) -> str:
        lines = ["digraph calls {", "  rankdir=LR;"]
        for edge in self.edges:
            lines.append(f'  "{edge.caller}" -> "{edge.callee}";')
        lines.append("}")
        return "\n".join(lines) + "\n"


def _absolute_from_base(
    module: str, path: str, node: ast.ImportFrom
) -> Optional[str]:
    if node.level == 0:
        return node.module or ""
    parts = module.split(".")
    if Path(path).name != "__init__.py":
        parts = parts[:-1]
    drop = node.level - 1
    if drop > len(parts):
        return None
    base_parts = parts[: len(parts) - drop] if drop else parts
    if node.module:
        base_parts = base_parts + node.module.split(".")
    return ".".join(base_parts)
