"""Robustness rules (ROB001, ROB002).

A broad ``except Exception`` (or a bare ``except:``) that neither
re-raises nor records the failure swallows errors silently: a device
crash, an invariant violation, or a plain bug disappears and the run
keeps going on corrupt state.  The failure-recovery layer
(:mod:`repro.recovery`) depends on exceptions propagating to the
supervision machinery — or at minimum leaving a structured-log trail —
so ROB001 flags any broad handler under the configured paths whose body
contains neither a ``raise`` nor a logging call.

Narrow handlers (``except JobFailed:``) are fine: catching a specific
exception is a decision, catching *everything* is an accident waiting
to happen.  The few justified catch-alls (process-boundary workers
that ship the error onward as data, client loops that record the
failure as their outcome) are suppressed in place with
``# lint: disable=ROB001`` and catalogued in ``docs/LINTING.md``.

ROB002 targets ad-hoc retry loops: a ``while True:`` whose exception
handler ``continue``s is an unbounded retry with no attempt cap, no
backoff, and no failure classification — precisely the bugs
:class:`repro.serving.failures.RetryPolicy` and the recovery layer's
failover bookkeeping exist to prevent.  A loop is sanctioned when it
consults one of the configured ``retry_helpers`` (``should_retry``,
``backoff_for``, ``should_failover``, ...), because those carry the
attempt budget and the deterministic backoff schedule.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence, Tuple

from .config import LintConfig
from .rules import Rule, register

__all__ = ["SilentBroadExceptRule", "AdHocRetryLoopRule"]

# Method names that count as "recording the failure": the structured
# logging surface plus the telemetry emit path.
_LOGGING_METHODS = frozenset(
    {
        "debug",
        "info",
        "warning",
        "error",
        "exception",
        "critical",
        "log",
        "emit",
    }
)

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare `except:`
        return True
    node = handler.type
    if isinstance(node, ast.Name):
        return node.id in _BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(
            isinstance(elt, ast.Name) and elt.id in _BROAD_NAMES
            for elt in node.elts
        )
    return False


def _handles_failure(handler: ast.ExceptHandler) -> bool:
    """True if the body re-raises or calls a logging-ish method."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _LOGGING_METHODS
            ):
                return True
    return False


@register
class SilentBroadExceptRule(Rule):
    rule_id = "ROB001"
    name = "silent-broad-except"
    summary = "broad except that neither re-raises nor logs the failure"
    node_types = (ast.ExceptHandler,)

    def scopes(self, config: LintConfig) -> Optional[Sequence[str]]:
        return config.robust_paths

    def check(
        self, node: ast.ExceptHandler, ctx
    ) -> Iterator[Tuple[ast.AST, str]]:
        if not _is_broad(node):
            return
        if _handles_failure(node):
            return
        caught = "bare except" if node.type is None else "except Exception"
        yield node, (
            f"`{caught}` swallows every failure silently; catch the "
            "specific exception, re-raise after cleanup, or record it "
            "via `repro.telemetry.logs.get_logger(component)`"
        )


# ----------------------------------------------------------------------
# ROB002 — ad-hoc retry loops
# ----------------------------------------------------------------------

# Node types that open a new retry scope: handlers inside them belong
# to *that* construct, not to the loop being inspected.
_NESTED_SCOPES = (
    ast.While,
    ast.For,
    ast.AsyncFor,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.Lambda,
)


def _is_while_true(node: ast.While) -> bool:
    test = node.test
    return isinstance(test, ast.Constant) and test.value is True


def _own_nodes(loop: ast.While) -> Iterator[ast.AST]:
    """The loop's own statements — no descent into nested loops or
    function definitions (their handlers retry *their* scope)."""
    stack: list = list(loop.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _NESTED_SCOPES):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _handler_continues(handler: ast.ExceptHandler) -> bool:
    """True if the handler's body reaches ``continue`` (same loop)."""
    stack: list = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Continue):
            return True
        if isinstance(node, _NESTED_SCOPES):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def _uses_retry_helper(loop: ast.While, helpers: Sequence[str]) -> bool:
    """True if any name/attribute in the loop is a sanctioned helper."""
    wanted = frozenset(helpers)
    for node in ast.walk(loop):
        if isinstance(node, ast.Attribute) and node.attr in wanted:
            return True
        if isinstance(node, ast.Name) and node.id in wanted:
            return True
    return False


@register
class AdHocRetryLoopRule(Rule):
    rule_id = "ROB002"
    name = "ad-hoc-retry-loop"
    summary = "unbounded except-and-continue retry loop bypassing RetryPolicy"
    node_types = (ast.While,)

    def scopes(self, config: LintConfig) -> Optional[Sequence[str]]:
        return config.robust_paths

    def check(
        self, node: ast.While, ctx
    ) -> Iterator[Tuple[ast.AST, str]]:
        if not _is_while_true(node):
            return
        retrying = None
        for child in _own_nodes(node):
            if isinstance(child, ast.ExceptHandler) and _handler_continues(
                child
            ):
                retrying = child
                break
        if retrying is None:
            return
        if _uses_retry_helper(node, ctx.config.retry_helpers):
            return
        yield retrying, (
            "`while True` retries on exception with no attempt budget or "
            "backoff; route the retry through "
            "`repro.serving.failures.RetryPolicy` (should_retry/"
            "backoff_for) or the recovery layer's failover helpers"
        )
