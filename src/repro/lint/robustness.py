"""Robustness rules (ROB001).

A broad ``except Exception`` (or a bare ``except:``) that neither
re-raises nor records the failure swallows errors silently: a device
crash, an invariant violation, or a plain bug disappears and the run
keeps going on corrupt state.  The failure-recovery layer
(:mod:`repro.recovery`) depends on exceptions propagating to the
supervision machinery — or at minimum leaving a structured-log trail —
so ROB001 flags any broad handler under the configured paths whose body
contains neither a ``raise`` nor a logging call.

Narrow handlers (``except JobFailed:``) are fine: catching a specific
exception is a decision, catching *everything* is an accident waiting
to happen.  The few justified catch-alls (process-boundary workers
that ship the error onward as data, client loops that record the
failure as their outcome) are suppressed in place with
``# lint: disable=ROB001`` and catalogued in ``docs/LINTING.md``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence, Tuple

from .config import LintConfig
from .rules import Rule, register

__all__ = ["SilentBroadExceptRule"]

# Method names that count as "recording the failure": the structured
# logging surface plus the telemetry emit path.
_LOGGING_METHODS = frozenset(
    {
        "debug",
        "info",
        "warning",
        "error",
        "exception",
        "critical",
        "log",
        "emit",
    }
)

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare `except:`
        return True
    node = handler.type
    if isinstance(node, ast.Name):
        return node.id in _BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(
            isinstance(elt, ast.Name) and elt.id in _BROAD_NAMES
            for elt in node.elts
        )
    return False


def _handles_failure(handler: ast.ExceptHandler) -> bool:
    """True if the body re-raises or calls a logging-ish method."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _LOGGING_METHODS
            ):
                return True
    return False


@register
class SilentBroadExceptRule(Rule):
    rule_id = "ROB001"
    name = "silent-broad-except"
    summary = "broad except that neither re-raises nor logs the failure"
    node_types = (ast.ExceptHandler,)

    def scopes(self, config: LintConfig) -> Optional[Sequence[str]]:
        return config.robust_paths

    def check(
        self, node: ast.ExceptHandler, ctx
    ) -> Iterator[Tuple[ast.AST, str]]:
        if not _is_broad(node):
            return
        if _handles_failure(node):
            return
        caught = "bare except" if node.type is None else "except Exception"
        yield node, (
            f"`{caught}` swallows every failure silently; catch the "
            "specific exception, re-raise after cleanup, or record it "
            "via `repro.telemetry.logs.get_logger(component)`"
        )
