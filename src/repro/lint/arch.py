"""ARCH rule family: layer contracts over the module dependency graph.

The contracts live in ``[tool.repro.lint.arch]`` in pyproject:

* ``layers`` — bottom-up groups of sibling top-level components under
  the root package.  **ARCH001** rejects any *eager* (module-level)
  import from a lower layer into a higher one: ``sim`` imports nothing
  above it, ever.  Function-local imports are the sanctioned runtime
  cycle-breaker and are not layer-checked — use ``forbid`` to ban them
  for a component outright.
* ``no-cycles`` — **ARCH002** rejects eager import cycles among root
  modules (a cycle at import time is one refactor away from an
  ``ImportError`` and makes layering meaningless).
* ``forbid`` / ``allow`` — **ARCH003** bans component edges outright,
  counting lazy imports too (``telemetry -> *`` keeps the observer
  import-read-only; ``* -> cli`` keeps the presentation layer a leaf).
  ``*`` wildcards match either side; ``allow`` lists exact exemptions.

Components not named in any layer are unconstrained by ARCH001 — add
new top-level packages to the table when they appear.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .project import ProjectContext
from .rules import ProjectRule, register

__all__ = ["LayerContractRule", "ImportCycleRule", "ForbiddenEdgeRule"]


def _layer_index(layers: Tuple[str, ...]) -> Dict[str, int]:
    """component -> layer position (0 = bottom)."""
    index: Dict[str, int] = {}
    for i, group in enumerate(layers):
        for component in group.split():
            index[component] = i
    return index


def _parse_edge_patterns(
    entries: Tuple[str, ...], what: str
) -> List[Tuple[str, str]]:
    parsed: List[Tuple[str, str]] = []
    for entry in entries:
        src, sep, dst = entry.partition("->")
        if not sep:
            raise ValueError(
                f"bad [tool.repro.lint.arch] {what} entry {entry!r}; "
                "expected 'src -> dst'"
            )
        parsed.append((src.strip(), dst.strip()))
    return parsed


@register
class LayerContractRule(ProjectRule):
    rule_id = "ARCH001"
    name = "layer-contract"
    summary = (
        "module-level imports must point downward through the declared "
        "[tool.repro.lint.arch] layers"
    )

    def analyze(self, project: ProjectContext):
        config = project.config
        graph = project.modgraph
        index = _layer_index(config.arch_layers)
        findings: List[Tuple[str, int, int, str]] = []
        for edge in graph.edges:
            if not edge.eager:
                continue
            src = graph.component_of(edge.src)
            dst = graph.component_of(edge.dst)
            if src is None or dst is None or src == dst:
                continue
            if src not in index or dst not in index:
                continue
            if index[src] >= index[dst]:
                continue
            path = graph.modules[edge.src]
            findings.append((
                path,
                edge.line,
                0,
                f"layer contract: {src!r} (layer {index[src]}) imports "
                f"{dst!r} (layer {index[dst]}) at module import time "
                f"({edge.src} -> {edge.dst}); move the import below it "
                "in the layer table or make it function-local",
            ))
        findings.sort()
        return iter(findings)


@register
class ImportCycleRule(ProjectRule):
    rule_id = "ARCH002"
    name = "import-cycle"
    summary = "no eager import cycles among root-package modules"

    def analyze(self, project: ProjectContext):
        config = project.config
        if not config.arch_no_cycles:
            return iter(())
        graph = project.modgraph
        findings: List[Tuple[str, int, int, str]] = []
        for cycle in graph.eager_cycles():
            members = set(cycle)
            anchor: Optional[Tuple[str, int]] = None
            for edge in graph.edges:
                if edge.eager and edge.src in members and edge.dst in members:
                    candidate = (graph.modules[edge.src], edge.line)
                    if anchor is None or candidate < anchor:
                        anchor = candidate
            path, line = anchor if anchor is not None else (cycle[0], 1)
            findings.append((
                path,
                line,
                0,
                "eager import cycle among root modules: "
                + " <-> ".join(cycle)
                + "; break it with a function-local import",
            ))
        findings.sort()
        return iter(findings)


@register
class ForbiddenEdgeRule(ProjectRule):
    rule_id = "ARCH003"
    name = "forbidden-dependency"
    summary = (
        "component edges banned by [tool.repro.lint.arch] forbid "
        "(lazy imports count too)"
    )

    def analyze(self, project: ProjectContext):
        config = project.config
        graph = project.modgraph
        forbid = _parse_edge_patterns(config.arch_forbid, "forbid")
        allow: Set[Tuple[str, str]] = {
            (src, dst)
            for src, dst in _parse_edge_patterns(config.arch_allow, "allow")
        }
        findings: List[Tuple[str, int, int, str]] = []
        seen: Set[Tuple[str, str, int]] = set()
        for edge in graph.edges:
            src = graph.component_of(edge.src)
            dst = graph.component_of(edge.dst)
            if src is None or dst is None or src == dst:
                continue
            if (src, dst) in allow:
                continue
            matched = next(
                (
                    f"{p_src} -> {p_dst}"
                    for p_src, p_dst in forbid
                    if fnmatchcase(src, p_src) and fnmatchcase(dst, p_dst)
                ),
                None,
            )
            if matched is None:
                continue
            key = (edge.src, edge.dst, edge.line)
            if key in seen:
                continue
            seen.add(key)
            kind = "eagerly" if edge.eager else "lazily"
            findings.append((
                graph.modules[edge.src],
                edge.line,
                0,
                f"forbidden dependency {src} -> {dst}: {edge.src} "
                f"{kind} imports {edge.dst} (banned by arch rule "
                f"{matched!r})",
            ))
        findings.sort()
        return iter(findings)
