"""Top-level orchestration: discover files, run rules, finalise.

File discovery is deterministic (sorted recursive glob) and honours the
config's ``exclude`` patterns when *expanding directories* — a file
named explicitly on the command line is always linted, which is how the
test fixtures with deliberate violations get checked without tripping
the CI sweep over ``tests/``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .config import LintConfig, path_matches
from .engine import FileContext, analyze_source
from .findings import Finding
from .project import ProjectContext
from .reporters import LintReport
from .rules import CrossFileRule, ProjectRule, Rule, resolve_rules

__all__ = [
    "discover_files",
    "lint_paths",
    "lint_files",
    "build_project_context",
]


def discover_files(
    paths: Sequence[str], config: LintConfig
) -> List[Path]:
    """Expand ``paths`` into the sorted list of Python files to lint."""
    files: List[Path] = []
    seen = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        explicit = path.is_file()
        for candidate in candidates:
            if not explicit and path_matches(str(candidate), config.exclude):
                continue
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                files.append(candidate)
    return files


def lint_files(
    files: Sequence[Path],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint an explicit file list (no discovery, no excludes)."""
    config = config if config is not None else LintConfig()
    if rules is None:
        rules = resolve_rules(config.select, config.ignore)
    findings: List[Finding] = []
    cross: Dict[CrossFileRule, List[Tuple[str, Any]]] = {}
    contexts: Dict[str, FileContext] = {}
    for path in files:
        source = path.read_text(encoding="utf-8")
        file_findings, collections, ctx = analyze_source(
            str(path), source, config, rules
        )
        if ctx is not None:
            contexts[str(path)] = ctx
        findings.extend(file_findings)
        for rule, data in collections:
            cross.setdefault(rule, []).append((str(path), data))
    for rule, collected in cross.items():
        for path_str, line, col, message in rule.finalize(collected):
            findings.append(Finding(path_str, line, col, rule.rule_id, message))
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    if project_rules and contexts:
        project = ProjectContext.build(contexts, config)
        for rule in project_rules:
            for path_str, line, col, message in rule.analyze(project):
                ctx = contexts.get(path_str)
                if ctx is not None and ctx.suppressions.is_suppressed(
                    rule.rule_id, line
                ):
                    continue
                findings.append(
                    Finding(path_str, line, col, rule.rule_id, message)
                )
    return LintReport(findings=sorted(findings), files_checked=len(files))


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Discover and lint; the library entry point behind the CLI."""
    config = config if config is not None else LintConfig()
    return lint_files(discover_files(paths, config), config, rules)


def build_project_context(
    files: Sequence[Path], config: Optional[LintConfig] = None
) -> ProjectContext:
    """Parse ``files`` and build the whole-program context (for --graph).

    Files that do not parse are skipped — the lint pass proper reports
    them; a graph export should not die on one bad file.
    """
    config = config if config is not None else LintConfig()
    contexts: Dict[str, FileContext] = {}
    for path in files:
        source = path.read_text(encoding="utf-8")
        _, _, ctx = analyze_source(str(path), source, config, rules=())
        if ctx is not None:
            contexts[str(path)] = ctx
    return ProjectContext.build(contexts, config)
