"""Top-level orchestration: discover files, run rules, finalise.

File discovery is deterministic (sorted recursive glob) and honours the
config's ``exclude`` patterns when *expanding directories* — a file
named explicitly on the command line is always linted, which is how the
test fixtures with deliberate violations get checked without tripping
the CI sweep over ``tests/``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .config import LintConfig, path_matches
from .engine import lint_source
from .findings import Finding
from .reporters import LintReport
from .rules import CrossFileRule, Rule, resolve_rules

__all__ = ["discover_files", "lint_paths", "lint_files"]


def discover_files(
    paths: Sequence[str], config: LintConfig
) -> List[Path]:
    """Expand ``paths`` into the sorted list of Python files to lint."""
    files: List[Path] = []
    seen = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        explicit = path.is_file()
        for candidate in candidates:
            if not explicit and path_matches(str(candidate), config.exclude):
                continue
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                files.append(candidate)
    return files


def lint_files(
    files: Sequence[Path],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint an explicit file list (no discovery, no excludes)."""
    config = config if config is not None else LintConfig()
    if rules is None:
        rules = resolve_rules(config.select, config.ignore)
    findings: List[Finding] = []
    cross: Dict[CrossFileRule, List[Tuple[str, Any]]] = {}
    for path in files:
        source = path.read_text(encoding="utf-8")
        file_findings, collections = lint_source(
            str(path), source, config, rules
        )
        findings.extend(file_findings)
        for rule, data in collections:
            cross.setdefault(rule, []).append((str(path), data))
    for rule, collected in cross.items():
        for path_str, line, col, message in rule.finalize(collected):
            findings.append(Finding(path_str, line, col, rule.rule_id, message))
    return LintReport(findings=sorted(findings), files_checked=len(files))


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Discover and lint; the library entry point behind the CLI."""
    config = config if config is not None else LintConfig()
    return lint_files(discover_files(paths, config), config, rules)
