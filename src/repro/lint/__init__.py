"""``repro.lint`` — determinism & concurrency static analysis.

The reproduction's credibility rests on two properties nothing used to
enforce: bit-identical replay (same seed, same trace digest) and a
deadlock-free cooperative gang scheduler.  This package checks both
*statically*, before the code ever runs:

* **Determinism rules** (DET001-DET007) ban wall-clock reads, ambient
  global RNG state, seeds that skip ``derive_seed`` namespacing,
  environment reads in sim/scheduler paths, hash-order set iteration,
  ``id()``-based ordering, and mutable default arguments.
* **Concurrency rules** (CON001-CON003) require every
  ``ConditionVariable.wait`` to sit in a while-predicate loop, detect
  acquisition-order cycles across the scheduler/resource/session files,
  and confine writes to guarded scheduler state to the token machinery.
* **Performance rules** (PERF001) ban O(n) list head-shifts
  (``list.pop(0)``/``list.insert(0, ...)``) in hot-path code.
* **Robustness rules** (ROB001) flag broad/bare ``except`` handlers
  that neither re-raise nor log — silent error swallowing hides the
  very failures the recovery layer exists to handle.

Run it as ``python -m repro.cli lint src tests benchmarks`` (the CI
gate) or call :func:`lint_paths` directly.  Rules are catalogued in
``docs/LINTING.md``; suppressions use ``# lint: disable=RULE`` /
``# lint: disable-file=RULE`` comments.
"""

from __future__ import annotations

# Importing the rule modules registers every rule.
from . import concurrency as _concurrency  # noqa: F401
from . import determinism as _determinism  # noqa: F401
from . import observability as _observability  # noqa: F401
from . import perf as _perf  # noqa: F401
from . import robustness as _robustness  # noqa: F401
from .config import LintConfig, find_pyproject, load_config, path_matches
from .engine import FileContext, lint_source
from .findings import Finding, PARSE_ERROR_ID
from .reporters import LintReport, render_json, render_text
from .rules import CrossFileRule, Rule, all_rules, get_rule, resolve_rules
from .runner import discover_files, lint_files, lint_paths
from .suppress import SuppressionIndex

__all__ = [
    "LintConfig",
    "load_config",
    "find_pyproject",
    "path_matches",
    "Finding",
    "PARSE_ERROR_ID",
    "LintReport",
    "render_text",
    "render_json",
    "Rule",
    "CrossFileRule",
    "all_rules",
    "get_rule",
    "resolve_rules",
    "FileContext",
    "lint_source",
    "SuppressionIndex",
    "discover_files",
    "lint_files",
    "lint_paths",
]
