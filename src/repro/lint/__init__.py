"""``repro.lint`` — determinism & concurrency static analysis.

The reproduction's credibility rests on two properties nothing used to
enforce: bit-identical replay (same seed, same trace digest) and a
deadlock-free cooperative gang scheduler.  This package checks both
*statically*, before the code ever runs:

* **Determinism rules** (DET001-DET007) ban wall-clock reads, ambient
  global RNG state, seeds that skip ``derive_seed`` namespacing,
  environment reads in sim/scheduler paths, hash-order set iteration,
  ``id()``-based ordering, and mutable default arguments.
* **Concurrency rules** (CON001-CON003) require every
  ``ConditionVariable.wait`` to sit in a while-predicate loop, detect
  acquisition-order cycles across the scheduler/resource/session files,
  and confine writes to guarded scheduler state to the token machinery.
* **Performance rules** (PERF001, PERF002) ban O(n) list head-shifts
  (``list.pop(0)``/``list.insert(0, ...)``) in hot-path code and
  confine ``heapq`` imports to the calendar-queue kernel
  (``sim/wheel.py``), so no shadow event queue can fork tie-break
  ordering from the simulator's.
* **Robustness rules** (ROB001) flag broad/bare ``except`` handlers
  that neither re-raise nor log — silent error swallowing hides the
  very failures the recovery layer exists to handle.
* **Flow rules** (FLOW001-FLOW003) are whole-program: interprocedural
  taint analysis over the project call graph proves observer-effect
  freedom (no telemetry state reaches scheduler decisions), traces
  every RNG seed back to ``derive_seed`` across call boundaries
  (superseding DET003), and bans observer-side mutation of foreign
  state.
* **Architecture rules** (ARCH001-ARCH003) enforce the layer contracts
  declared in ``[tool.repro.lint.arch]`` over the module dependency
  graph: layered eager imports, no import cycles, and hard-forbidden
  component edges.

Run it as ``python -m repro.cli lint src tests benchmarks`` (the CI
gate) or call :func:`lint_paths` directly.  ``--graph dot|json``
exports the module/call graphs; ``--changed`` lints only files
differing from the git merge-base; ``--sanitize`` follows the static
pass with a runtime-checksummed smoke run (see :mod:`repro.sanitize`).
Rules are catalogued in ``docs/LINTING.md``; suppressions use
``# lint: disable=RULE`` / ``# lint: disable-file=RULE`` comments and
accept family wildcards (``FLOW*``).
"""

from __future__ import annotations

# Importing the rule modules registers every rule.
from . import arch as _arch  # noqa: F401
from . import concurrency as _concurrency  # noqa: F401
from . import determinism as _determinism  # noqa: F401
from . import flow as _flow  # noqa: F401
from . import observability as _observability  # noqa: F401
from . import perf as _perf  # noqa: F401
from . import robustness as _robustness  # noqa: F401
from .callgraph import CallGraph
from .changed import changed_python_files
from .config import LintConfig, find_pyproject, load_config, path_matches
from .engine import FileContext, analyze_source, lint_source
from .findings import Finding, PARSE_ERROR_ID
from .modgraph import ModuleGraph, module_name_for
from .project import ProjectContext
from .reporters import LintReport, render_json, render_text
from .rules import (
    CrossFileRule,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    resolve_rules,
)
from .runner import (
    build_project_context,
    discover_files,
    lint_files,
    lint_paths,
)
from .suppress import SuppressionIndex

__all__ = [
    "LintConfig",
    "load_config",
    "find_pyproject",
    "path_matches",
    "Finding",
    "PARSE_ERROR_ID",
    "LintReport",
    "render_text",
    "render_json",
    "Rule",
    "CrossFileRule",
    "ProjectRule",
    "all_rules",
    "get_rule",
    "resolve_rules",
    "FileContext",
    "lint_source",
    "analyze_source",
    "SuppressionIndex",
    "discover_files",
    "lint_files",
    "lint_paths",
    "build_project_context",
    "ProjectContext",
    "ModuleGraph",
    "CallGraph",
    "module_name_for",
    "changed_python_files",
]
