"""Determinism rules (DET001-DET007).

The reproduction's headline property is bit-identical replay: the same
seed must produce the same trace digest on every run, interpreter and
machine.  Each rule here bans one way that property has historically
been lost in simulation codebases: wall-clock reads, ambient RNG state,
seeds that are not namespaced per component, environment-dependent
branches, hash-order iteration, and ``id()``-based ordering.

All rules are AST-based heuristics: they see names and call shapes, not
runtime values.  A deliberate exception is silenced with a suppression
comment (see :mod:`repro.lint.suppress`), never by weakening the rule.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence, Tuple

from .config import LintConfig, path_matches
from .rules import Rule, dotted_name, register

__all__ = [
    "WallClockRule",
    "ModuleRandomRule",
    "RandomConstructionRule",
    "EnvReadRule",
    "SetIterationRule",
    "IdOrderingRule",
    "MutableDefaultRule",
]


class DeterminismRule(Rule):
    """Common scope: the ``determinism-paths`` config entry."""

    def scopes(self, config: LintConfig) -> Optional[Sequence[str]]:
        return config.determinism_paths


# Wall-clock reads, keyed by full dotted call name.
_WALL_CLOCK_EXACT = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
}
# Suffixes cover both `datetime.now()` (from datetime import datetime)
# and `datetime.datetime.now()` import styles.
_WALL_CLOCK_SUFFIXES = ("datetime.now", "datetime.utcnow", "date.today")


@register
class WallClockRule(DeterminismRule):
    rule_id = "DET001"
    name = "wall-clock-read"
    summary = "time.time()/datetime.now() in simulated code; use sim.now"
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx) -> Iterator[Tuple[ast.AST, str]]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        hit = dotted in _WALL_CLOCK_EXACT or any(
            dotted == suffix or dotted.endswith("." + suffix)
            for suffix in _WALL_CLOCK_SUFFIXES
        )
        if not hit and isinstance(node.func, ast.Attribute):
            # Aliased class imports: `from datetime import datetime as dt`.
            value = node.func.value
            hit = (
                isinstance(value, ast.Name)
                and value.id in ctx.datetime_aliases
                and node.func.attr in ("now", "utcnow", "today")
            )
        if hit:
            yield node, (
                f"wall-clock read `{dotted}()` breaks replay; simulated "
                "code must take time from `Simulator.now` (or accept a "
                "clock argument)"
            )


@register
class ModuleRandomRule(DeterminismRule):
    rule_id = "DET002"
    name = "module-level-random"
    summary = "random.<fn>() draws from ambient global RNG state"
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx) -> Iterator[Tuple[ast.AST, str]]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if not isinstance(func.value, ast.Name):
            return
        if func.value.id not in ctx.random_module_aliases:
            return
        if func.attr in ("Random", "SystemRandom"):
            return  # constructors are DET003's concern
        yield node, (
            f"`random.{func.attr}()` uses the interpreter-global RNG; "
            "draw from a named `RngRegistry` stream instead"
        )


@register
class RandomConstructionRule(DeterminismRule):
    rule_id = "DET003"
    name = "unnamespaced-random"
    summary = "random.Random() unseeded or seeded without derive_seed()"
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx) -> Iterator[Tuple[ast.AST, str]]:
        if path_matches(ctx.path, ctx.config.rng_whitelist):
            return
        func = node.func
        is_ctor = False
        if isinstance(func, ast.Attribute) and func.attr == "Random":
            value = func.value
            is_ctor = (
                isinstance(value, ast.Name)
                and value.id in ctx.random_module_aliases
            )
        elif isinstance(func, ast.Name):
            is_ctor = func.id in ctx.random_class_aliases
        if not is_ctor:
            return
        if not node.args and not node.keywords:
            yield node, (
                "unseeded `random.Random()` seeds from OS entropy; "
                "construct it from `derive_seed(seed, name)`"
            )
            return
        seed_arg = node.args[0] if node.args else node.keywords[0].value
        if isinstance(seed_arg, ast.Call):
            called = dotted_name(seed_arg.func)
            if called is not None and any(
                called == helper or called.endswith("." + helper)
                for helper in ctx.config.seed_helpers
            ):
                return
        yield node, (
            "`random.Random(seed)` without `derive_seed` namespacing: "
            "identical raw seeds across components produce correlated "
            "draws; use `random.Random(derive_seed(seed, \"<component>\"))`"
        )


@register
class EnvReadRule(Rule):
    rule_id = "DET004"
    name = "environment-read"
    summary = "os.environ/os.getenv read inside sim/scheduler paths"
    node_types = (ast.Call, ast.Subscript)

    def scopes(self, config: LintConfig) -> Optional[Sequence[str]]:
        return config.env_guard_paths

    def check(self, node: ast.AST, ctx) -> Iterator[Tuple[ast.AST, str]]:
        if isinstance(node, ast.Subscript):
            dotted = dotted_name(node.value)
            if dotted == "os.environ" and isinstance(node.ctx, ast.Load):
                yield node, self._message("os.environ[...]")
            return
        assert isinstance(node, ast.Call)
        dotted = dotted_name(node.func)
        if dotted in ("os.getenv", "os.environ.get"):
            yield node, self._message(f"{dotted}(...)")

    @staticmethod
    def _message(what: str) -> str:
        return (
            f"environment read `{what}` makes simulation behaviour "
            "depend on the host; thread configuration in explicitly"
        )


_SET_CTORS = ("set", "frozenset")


@register
class SetIterationRule(DeterminismRule):
    rule_id = "DET005"
    name = "set-iteration"
    summary = "iterating a set feeds hash order into event scheduling"
    node_types = (ast.For, ast.comprehension)

    def check(self, node: ast.AST, ctx) -> Iterator[Tuple[ast.AST, str]]:
        iterable = node.iter  # both For and comprehension carry .iter
        bad = isinstance(iterable, (ast.Set, ast.SetComp)) or (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in _SET_CTORS
        )
        if bad:
            anchor = node if isinstance(node, ast.For) else iterable
            yield anchor, (
                "iteration over a set: order is hash-salted per process "
                "and can leak into event ordering; iterate `sorted(...)` "
                "or an insertion-ordered container"
            )


def _lambda_calls_id(lam: ast.Lambda) -> bool:
    for sub in ast.walk(lam.body):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "id"
        ):
            return True
    return False


@register
class IdOrderingRule(DeterminismRule):
    rule_id = "DET006"
    name = "id-based-ordering"
    summary = "sorted/min/max/sort keyed on id(): addresses vary per run"
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx) -> Iterator[Tuple[ast.AST, str]]:
        func = node.func
        is_orderer = (
            isinstance(func, ast.Name) and func.id in ("sorted", "min", "max")
        ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
        if not is_orderer:
            return
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            value = keyword.value
            if (isinstance(value, ast.Name) and value.id == "id") or (
                isinstance(value, ast.Lambda) and _lambda_calls_id(value)
            ):
                yield keyword.value, (
                    "ordering by `id()` uses memory addresses, which "
                    "differ across runs; key on a stable field "
                    "(job_id, name, registration index)"
                )


_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CTORS = ("list", "dict", "set", "deque", "defaultdict", "OrderedDict", "Counter")


@register
class MutableDefaultRule(Rule):
    rule_id = "DET007"
    name = "mutable-default-argument"
    summary = "mutable default argument is shared across calls"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def check(self, node, ctx) -> Iterator[Tuple[ast.AST, str]]:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            bad = isinstance(default, _MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CTORS
            )
            if bad:
                yield default, (
                    f"mutable default argument in `{node.name}()` is "
                    "evaluated once and shared across calls; default to "
                    "None and construct inside the body"
                )
