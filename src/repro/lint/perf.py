"""Performance rules (PERF001).

The simulator's hot loops live or die by container choice: a
``list.pop(0)`` in a waiter queue is O(n) per wake-up and turns gang
scheduling into quadratic work as fan-out grows (the exact regression
fixed in ``sim/resources.py``).  PERF001 bans head-shifting list calls
in hot-path code so the class of bug cannot quietly return.

Like every rule here this is an AST heuristic: it sees the call shape
``<expr>.pop(0)`` / ``<expr>.insert(0, …)``, not the receiver's type.
A deliberate O(n) shift on a provably tiny list (or a ``dict.pop(0)``
false positive) is silenced with ``# lint: disable=PERF001``, never by
narrowing the rule.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence, Tuple

from .config import LintConfig
from .rules import Rule, register

__all__ = ["ListHeadShiftRule"]


def _is_zero_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
        and node.value == 0
    )


@register
class ListHeadShiftRule(Rule):
    rule_id = "PERF001"
    name = "list-head-shift"
    summary = "list.pop(0)/list.insert(0, ...) is O(n); use collections.deque"
    node_types = (ast.Call,)

    def scopes(self, config: LintConfig) -> Optional[Sequence[str]]:
        return config.perf_paths

    def check(self, node: ast.Call, ctx) -> Iterator[Tuple[ast.AST, str]]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr == "pop":
            if len(node.args) == 1 and _is_zero_literal(node.args[0]):
                yield node, (
                    "`.pop(0)` shifts every remaining element (O(n) per "
                    "call); use `collections.deque` and `.popleft()` for "
                    "FIFO queues"
                )
        elif func.attr == "insert":
            if node.args and _is_zero_literal(node.args[0]):
                yield node, (
                    "`.insert(0, ...)` shifts every element (O(n) per "
                    "call); use `collections.deque` and `.appendleft()` "
                    "for head insertion"
                )
