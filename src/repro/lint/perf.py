"""Performance rules (PERF001, PERF002).

The simulator's hot loops live or die by container choice: a
``list.pop(0)`` in a waiter queue is O(n) per wake-up and turns gang
scheduling into quadratic work as fan-out grows (the exact regression
fixed in ``sim/resources.py``).  PERF001 bans head-shifting list calls
in hot-path code so the class of bug cannot quietly return.

PERF002 guards the other calendar invariant: every timestamped event
must flow through the bucketed calendar queue in ``sim/wheel.py``.  A
stray ``import heapq`` elsewhere under ``src/repro`` is how a shadow
event queue starts — per-event heap tuples creep back in, tie-break
ordering forks from the kernel's bucket-sequence rule, and the trace
digests quietly depend on which queue a code path used.  The wheel
module itself is whitelisted (``heapq-whitelist`` in pyproject): it
wraps heapq behind the bucket layer and is the one sanctioned user.

Like every rule here these are AST heuristics: PERF001 sees the call
shape ``<expr>.pop(0)`` / ``<expr>.insert(0, …)``, not the receiver's
type.  A deliberate O(n) shift on a provably tiny list (or a
``dict.pop(0)`` false positive) is silenced with
``# lint: disable=PERF001``, never by narrowing the rule; the same
escape hatch spelling applies to PERF002.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence, Tuple

from .config import LintConfig, path_matches
from .rules import Rule, register

__all__ = ["ListHeadShiftRule", "HeapqImportRule"]


def _is_zero_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
        and node.value == 0
    )


@register
class ListHeadShiftRule(Rule):
    rule_id = "PERF001"
    name = "list-head-shift"
    summary = "list.pop(0)/list.insert(0, ...) is O(n); use collections.deque"
    node_types = (ast.Call,)

    def scopes(self, config: LintConfig) -> Optional[Sequence[str]]:
        return config.perf_paths

    def check(self, node: ast.Call, ctx) -> Iterator[Tuple[ast.AST, str]]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr == "pop":
            if len(node.args) == 1 and _is_zero_literal(node.args[0]):
                yield node, (
                    "`.pop(0)` shifts every remaining element (O(n) per "
                    "call); use `collections.deque` and `.popleft()` for "
                    "FIFO queues"
                )
        elif func.attr == "insert":
            if node.args and _is_zero_literal(node.args[0]):
                yield node, (
                    "`.insert(0, ...)` shifts every element (O(n) per "
                    "call); use `collections.deque` and `.appendleft()` "
                    "for head insertion"
                )


@register
class HeapqImportRule(Rule):
    rule_id = "PERF002"
    name = "heapq-outside-wheel"
    summary = "import heapq outside sim/wheel.py; use the calendar queue"
    node_types = (ast.Import, ast.ImportFrom)

    def scopes(self, config: LintConfig) -> Optional[Sequence[str]]:
        return config.perf_paths

    def check(self, node: ast.AST, ctx) -> Iterator[Tuple[ast.AST, str]]:
        if path_matches(ctx.path, ctx.config.heapq_whitelist):
            return
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            imported = module == "heapq" or module.startswith("heapq.")
        else:
            imported = any(
                alias.name == "heapq" or alias.name.startswith("heapq.")
                for alias in node.names
            )
        if imported:
            yield node, (
                "heapq imports are confined to the calendar-queue kernel "
                "(sim/wheel.py); schedule through Simulator.timeout / "
                "_insert so tie-break ordering stays bucket-sequenced "
                "and trace digests stay single-queue"
            )
