"""The visitor engine: one parse, one walk, every rule.

Per file the engine parses once, builds a parent map (rules need
ancestry: "is this wait inside a while?"), indexes nodes by type, and
dispatches each registered rule over exactly the node types it asked
for.  Findings pass through the suppression index before they are kept.

Cross-file rules get a ``collect`` call here and are finalised by the
runner once every file has been seen.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

from .config import LintConfig
from .findings import Finding, PARSE_ERROR_ID
from .rules import CrossFileRule, Rule
from .suppress import SuppressionIndex

__all__ = ["FileContext", "lint_source", "analyze_source"]


class FileContext:
    """Everything a rule may ask about the file being linted."""

    def __init__(self, path: str, source: str, tree: ast.AST, config: LintConfig):
        self.path = path
        self.source = source
        self.tree = tree
        self.config = config
        self.suppressions = SuppressionIndex.from_source(source)
        self._parents: Dict[ast.AST, ast.AST] = {}
        self._by_type: Dict[Type[ast.AST], List[ast.AST]] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
            self._by_type.setdefault(type(parent), []).append(parent)
        self.random_module_aliases: Set[str] = set()
        self.random_class_aliases: Set[str] = set()
        self.datetime_aliases: Set[str] = set()
        self._index_imports()

    def _index_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        self.random_module_aliases.add(
                            alias.asname or alias.name
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name == "Random":
                            self.random_class_aliases.add(
                                alias.asname or alias.name
                            )
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            self.datetime_aliases.add(
                                alias.asname or alias.name
                            )

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def nodes_of(self, node_types: Sequence[Type[ast.AST]]) -> Iterator[ast.AST]:
        for node_type in node_types:
            for node in self._by_type.get(node_type, ()):
                yield node


def _anchor_position(node: ast.AST) -> Tuple[int, int]:
    return getattr(node, "lineno", 1), getattr(node, "col_offset", 0)


def analyze_source(
    path: str,
    source: str,
    config: LintConfig,
    rules: Sequence[Rule],
) -> Tuple[List[Finding], List[Tuple[CrossFileRule, Any]], Optional[FileContext]]:
    """Lint one file; return (findings, cross-file collections, context).

    The context is ``None`` when the file does not parse — whole-program
    rules simply skip it (the parse-error pseudo-finding already fails
    the run).
    """
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        index = SuppressionIndex.from_source(source)
        line = getattr(exc, "lineno", None) or 1
        if index.is_suppressed(PARSE_ERROR_ID, line):
            return [], [], None
        msg = getattr(exc, "msg", None) or str(exc)
        return (
            [Finding(path, line, 0, PARSE_ERROR_ID, f"cannot parse: {msg}")],
            [],
            None,
        )

    ctx = FileContext(path, source, tree, config)
    findings: List[Finding] = []
    collections: List[Tuple[CrossFileRule, Any]] = []
    for rule in rules:
        if rule.project or not rule.applies_to(path, config):
            continue
        if isinstance(rule, CrossFileRule):
            collections.append((rule, rule.collect(ctx)))
            continue
        for node in ctx.nodes_of(rule.node_types):
            for anchor, message in rule.check(node, ctx):
                line, col = _anchor_position(anchor)
                if ctx.suppressions.is_suppressed(rule.rule_id, line):
                    continue
                findings.append(Finding(path, line, col, rule.rule_id, message))
    return findings, collections, ctx


def lint_source(
    path: str,
    source: str,
    config: LintConfig,
    rules: Sequence[Rule],
) -> Tuple[List[Finding], List[Tuple[CrossFileRule, Any]]]:
    """Lint one file; return (findings, cross-file collections)."""
    findings, collections, _ = analyze_source(path, source, config, rules)
    return findings, collections
