"""Host CPU model: a fixed number of cores shared by all gang threads.

CPU nodes of a dataflow graph execute here.  Contention for cores is a
real (if secondary) effect in the paper's testbed — an i7-8700 serving
ten clients' gangs — and is one of the noise sources behind TF-Serving's
run-to-run variability (Figure 3).
"""

from __future__ import annotations

from typing import Optional

from ..sim.core import Simulator
from ..sim.resources import Resource

__all__ = ["HostCpu"]


class HostCpu:
    """``n_cores`` CPU cores as a counted resource.

    ``execute`` is a process fragment (generator) that occupies one core
    for ``duration`` seconds; callers ``yield from`` it.
    """

    def __init__(self, sim: Simulator, n_cores: int = 12):
        self.sim = sim
        self.cores = Resource(sim, capacity=n_cores)
        self.busy_time = 0.0

    @property
    def n_cores(self) -> int:
        return self.cores.capacity

    def execute(self, duration: float):
        """Occupy one core for ``duration`` seconds (yield from this)."""
        if duration < 0:
            raise ValueError(f"negative CPU duration: {duration}")
        request = self.cores.request()
        yield request
        try:
            yield self.sim.timeout(duration)
            self.busy_time += duration
        finally:
            self.cores.release(request)
