"""The bounded inter-op thread pool (TF-Serving's ``threadPool``).

Algorithm 1 line 14: when a session encounters an asynchronous (GPU)
child node it *fetches a thread from the pool* to process it; "if no
threads are available, execution may be delayed".  We reproduce that
contract:

* :meth:`try_fetch` returns a ticket or ``None`` — on ``None`` the
  session executes the child inline on its current thread (the delay).
* Saturation events are counted; the scalability experiment (§4.3) uses
  them to find the client count at which Olympian — whose suspended
  gangs *hold* their threads — exhausts the pool long before TF-Serving
  does.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["ThreadTicket", "ThreadPool", "ThreadPoolExhausted"]


class ThreadPoolExhausted(Exception):
    """Raised by :meth:`ThreadPool.fetch` when no thread is available."""


class ThreadTicket:
    """A claim on one pool thread; must be returned via ``release``."""

    __slots__ = ("pool", "released")

    def __init__(self, pool: "ThreadPool"):
        self.pool = pool
        self.released = False

    def release(self) -> None:
        if not self.released:
            self.released = True
            self.pool._return_thread()


class ThreadPool:
    """A counted pool of host threads."""

    def __init__(self, size: int = 512):
        if size < 1:
            raise ValueError(f"pool size must be >= 1: {size}")
        self.size = size
        self._in_use = 0
        self.peak_in_use = 0
        self.saturation_events = 0
        self.total_fetches = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.size - self._in_use

    @property
    def saturated(self) -> bool:
        return self._in_use >= self.size

    def try_fetch(self) -> Optional[ThreadTicket]:
        """Claim a thread if one is free; records saturation otherwise."""
        self.total_fetches += 1
        if self._in_use >= self.size:
            self.saturation_events += 1
            return None
        self._in_use += 1
        if self._in_use > self.peak_in_use:
            self.peak_in_use = self._in_use
        return ThreadTicket(self)

    def fetch(self) -> ThreadTicket:
        """Claim a thread; raises :class:`ThreadPoolExhausted` if none."""
        ticket = self.try_fetch()
        if ticket is None:
            raise ThreadPoolExhausted(
                f"all {self.size} pool threads in use"
            )
        return ticket

    def _return_thread(self) -> None:
        self._in_use -= 1
        if self._in_use < 0:
            raise RuntimeError("thread pool released more threads than fetched")
