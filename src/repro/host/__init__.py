"""Host-side substrate: CPU cores and the inter-op thread pool."""

from .cpu import HostCpu
from .threadpool import ThreadPool, ThreadPoolExhausted, ThreadTicket

__all__ = ["HostCpu", "ThreadPool", "ThreadPoolExhausted", "ThreadTicket"]
