"""Command-line interface.

Four commands cover the operator workflow of Figure 7:

* ``repro models`` — the servable model zoo (Table 2 view).
* ``repro profile`` — run the offline profiler for some (model, batch)
  pairs and persist the bundle (profiles, curves, selected Q) to JSON.
* ``repro serve`` — run a serving experiment under a chosen scheduler,
  optionally loading a persisted profile bundle and/or injecting a
  fault plan (``--fault-plan``/``--fault-seed``).
* ``repro faults`` — generate, inspect, or persist deterministic
  fault-injection plans (see :mod:`repro.faults`).
* ``repro chaos`` — run a seeded chaos campaign: random fault storms
  (including device crashes) against every scheduler kind with failure
  recovery attached, asserting the recovery SLAs on each run; exits
  nonzero on any violation (see :mod:`repro.experiments.chaos`).
* ``repro soak`` — run a seeded soak: open-loop traffic through the
  admission gate while the serving process is killed and restarted
  mid-run (plus device crashes), recovering from the durable job
  journal; asserts the no-job-lost SLA and prints the byte-stable
  resume digests; exits nonzero on any violation
  (see :mod:`repro.experiments.soak`).
* ``repro lint`` — the determinism & concurrency static-analysis gate
  (see :mod:`repro.lint`); exits nonzero on findings.
* ``repro reproduce`` — regenerate paper tables/figures, optionally
  several at once across worker processes (``--jobs N``; output is
  byte-identical for every N — see :mod:`repro.experiments.parallel`).
* ``repro bench`` — performance microbenchmarks and the end-to-end
  Fig 16 wall-clock, with a committed-baseline regression check
  (see :mod:`repro.bench`).
* ``repro trace`` — run a workload with span tracing on and export an
  enriched Chrome/Perfetto trace (flow arrows linking request arrival
  → tenures → kernels), plus optional metrics/span documents; every
  artefact is schema-validated before the command exits 0.
* ``repro top`` — a terminal dashboard of a serving run: per-model
  tenure share, queue depths, GPU utilization, one frame per telemetry
  snapshot (``--follow`` replays them paced like a live ``top``).
* ``repro blame`` — per-request critical-path latency attribution: run
  a workload with span tracing and decompose every request's e2e
  latency into exactly-summing components (queue wait, HOL blocking
  with the blocking tenant named, arbitration, interference, kernel
  execution, ...), with JSON / folded-stack / Chrome-annotation
  exports (see :mod:`repro.analysis.blame`).
* ``repro whatif`` — deterministic causal profiling: replay the same
  workload with a perturbed cost model (scale one model's kernels,
  add streams, scale the quantum) and report the measured mean/p99
  movement per component next to the blame profile's prediction
  (see :mod:`repro.experiments.whatif`).

Invoke as ``python -m repro <command> ...``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional

__all__ = ["main", "build_parser"]


def _cmd_models(args: argparse.Namespace) -> int:
    from .metrics.report import render_table
    from .zoo import PAPER_MODELS

    rows = [
        [
            spec.name,
            spec.display_name,
            spec.ref_batch,
            spec.num_nodes,
            spec.num_gpu_nodes,
            f"{spec.solo_runtime:.2f} s",
            f"{spec.memory_mb} MB",
        ]
        for spec in PAPER_MODELS
    ]
    print(
        render_table(
            ["name", "model", "batch", "nodes", "GPU nodes", "solo runtime",
             "memory"],
            rows,
            title="Servable models (calibrated to the paper's Table 2)",
        )
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .core import OfflineProfiler, save_profiler_output
    from .experiments import get_graph
    from .zoo import MODEL_REGISTRY

    entries = []
    for item in args.model:
        if ":" in item:
            name, batch_text = item.split(":", 1)
            batch = int(batch_text)
        else:
            name, batch = item, None
        if name not in MODEL_REGISTRY:
            print(f"error: unknown model {name!r}", file=sys.stderr)
            return 2
        if batch is None:
            batch = MODEL_REGISTRY[name].ref_batch
        entries.append((get_graph(name, args.scale, args.graph_seed), batch))

    profiler = OfflineProfiler(seed=args.seed)
    output = profiler.build(
        entries,
        tolerance=args.tolerance,
        with_curves=args.quantum is None,
        fixed_quantum=args.quantum,
    )
    save_profiler_output(output, args.out)
    print(f"profiled {len(entries)} (model, batch) pair(s)")
    print(f"selected quantum Q = {output.quantum * 1e6:.0f} us")
    print(f"saved profile bundle to {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .core import load_profiler_output
    from .experiments import ExperimentConfig, run_workload
    from .faults import FaultPlan
    from .metrics.report import format_seconds, render_table
    from .serving import RetryPolicy
    from .workloads import homogeneous_workload

    if args.streams is not None and args.streams < 1:
        print(f"error: --streams must be >= 1: {args.streams}", file=sys.stderr)
        return 2
    if args.oversubscription < 1.0:
        print(
            f"error: --oversubscription must be >= 1.0: "
            f"{args.oversubscription}",
            file=sys.stderr,
        )
        return 2
    config = ExperimentConfig(
        scale=args.scale,
        seed=args.seed,
        quantum=args.quantum,
        stall_threshold=args.stall_threshold,
        streams=args.streams,
        oversubscription=args.oversubscription,
    )
    specs = homogeneous_workload(
        num_clients=args.clients,
        model=args.model,
        batch_size=args.batch,
        num_batches=args.batches,
    )
    bundle = None
    if args.profiles:
        bundle = load_profiler_output(args.profiles)
    plan = None
    if args.fault_plan and args.fault_seed is not None:
        print(
            "error: --fault-plan and --fault-seed are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.fault_plan:
        plan = FaultPlan.load(args.fault_plan)
    elif args.fault_seed is not None:
        plan = FaultPlan.generate(
            args.fault_seed,
            client_ids=[spec.client_id for spec in specs],
            kinds=("kernel_crash", "device_hang", "oom"),
            num_faults=args.num_faults,
        )
    retry_policy = None
    if args.retries > 0:
        retry_policy = RetryPolicy(max_attempts=1 + args.retries)
    telemetry_config = None
    if args.telemetry != "off":
        from .telemetry import TelemetryConfig

        telemetry_config = TelemetryConfig(
            verbosity=args.telemetry,
            snapshot_period=args.snapshot_period,
        )
    try:
        result = run_workload(
            specs,
            scheduler=args.scheduler,
            config=config,
            profiler_output=bundle,
            fault_plan=plan,
            retry_policy=retry_policy,
            require_completion=plan is None,
            telemetry=telemetry_config,
            monitor=args.monitor,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = [
        [
            client.client_id,
            format_seconds(client.finish_time, 3)
            if client.completed
            else f"DID NOT FINISH ({client.failure!r})",
        ]
        for client in sorted(result.clients, key=lambda c: str(c.client_id))
    ]
    print(
        render_table(
            ["client", "finish time"],
            rows,
            title=(
                f"{args.clients} x {args.model} (batch {args.batch}) under "
                f"{args.scheduler}"
            ),
        )
    )
    if result.quantum is not None:
        print(f"quantum Q = {result.quantum * 1e6:.0f} us")
    print(f"GPU utilization = {result.utilization():.1%}")
    if plan is not None:
        print(
            f"faults injected = {result.faults_injected} "
            f"(plan: {len(plan)} spec(s))   "
            f"retries = {result.total_retries}   "
            f"failed batches = {result.total_failed_batches}"
        )
        if result.scheduler is not None and result.scheduler.evictions:
            for eviction in result.scheduler.evictions:
                print(
                    f"evicted {eviction.job_id} at "
                    f"t={eviction.time:.4f}s: {eviction.reason}"
                )
        print(f"trace digest = {result.trace_digest()}")
    rollup = result.telemetry_rollup
    if rollup is not None:
        print(
            "telemetry    "
            f"events = {rollup['events_published']}   "
            f"snapshots = {rollup['snapshots']}   "
            f"decisions = {rollup['decisions']:.0f}   "
            f"switches = {rollup['switches']:.0f}   "
            f"overflow kernels = {rollup['overflow_kernels']:.0f}   "
            f"retries = {rollup['retries']:.0f}"
        )
        sheds = rollup.get("sheds_by_reason") or {}
        if sheds:
            breakdown = "   ".join(
                f"{reason} = {count:.0f}"
                for reason, count in sorted(sheds.items())
            )
            print(f"sheds        {breakdown}")
        decisions = rollup.get("admission_decisions") or {}
        if decisions:
            breakdown = "   ".join(
                f"{label} = {count:.0f}"
                for label, count in sorted(decisions.items())
            )
            print(f"admission    {breakdown}")
        for model, stats in sorted(rollup.get("latency", {}).items()):
            exemplar = stats.get("exemplar")
            jump = f"   slowest trace = {exemplar}" if exemplar else ""
            print(
                f"latency {model}: "
                f"p50 = {stats['p50'] * 1e3:.3f} ms   "
                f"p95 = {stats['p95'] * 1e3:.3f} ms   "
                f"p99 = {stats['p99'] * 1e3:.3f} ms{jump}"
            )
        if args.metrics_out:
            from .telemetry import render_prometheus

            snapshot = result.telemetry.snapshots[-1]
            with open(args.metrics_out, "w") as handle:
                handle.write(render_prometheus(snapshot))
            print(f"wrote metrics exposition to {args.metrics_out}")
    if result.monitor is not None:
        alerts = result.monitor.alerts
        print(f"profile drift alerts = {len(alerts)}")
        for alert in alerts:
            print(
                f"  drift {alert.model_name}: observed "
                f"{alert.observed_mean * 1e3:.3f} ms vs expected "
                f"{alert.expected * 1e3:.3f} ms "
                f"({alert.relative_error:+.1%})"
            )
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from .faults import FaultPlan

    if args.action == "show":
        if not args.plan:
            print("error: `faults show` needs a plan file", file=sys.stderr)
            return 2
        plan = FaultPlan.load(args.plan)
        print(plan.describe())
        return 0
    # action == "generate"
    client_ids = [c for c in args.clients.split(",") if c]
    if not client_ids:
        print("error: --clients must name at least one id", file=sys.stderr)
        return 2
    kinds = tuple(k for k in args.kinds.split(",") if k)
    plan = FaultPlan.generate(
        args.seed,
        client_ids=client_ids,
        kinds=kinds,
        num_faults=args.num_faults,
        horizon=args.horizon,
    )
    print(plan.describe())
    if args.out:
        plan.save(args.out)
        print(f"saved fault plan to {args.out}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .experiments import ChaosConfig, run_chaos_campaign

    if args.quick:
        config = ChaosConfig.quick(seed=args.seed)
    else:
        config = ChaosConfig(seed=args.seed)
    result = run_chaos_campaign(config)
    print(result.report())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(result.to_json())
        print(f"wrote campaign report to {args.out}")
    return 0 if result.ok else 1


def _cmd_soak(args: argparse.Namespace) -> int:
    from .experiments import SoakConfig, run_soak

    overrides = {}
    if args.gpus is not None:
        overrides["gpus"] = args.gpus
    if args.quick:
        config = SoakConfig.quick(seed=args.seed, **overrides)
    else:
        config = SoakConfig(seed=args.seed, **overrides)
    result = run_soak(config)
    print(result.report())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(result.to_json())
        print(f"wrote soak report to {args.out}")
    return 0 if result.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from .lint import (
        LintConfig,
        all_rules,
        build_project_context,
        changed_python_files,
        discover_files,
        find_pyproject,
        lint_files,
        load_config,
        render_json,
        render_text,
        resolve_rules,
    )

    if args.list_rules:
        try:
            for rule in all_rules():
                print(rule.catalogue_line())
        except BrokenPipeError:
            _ignore_broken_stdout()
        return 0

    if args.no_config:
        config = LintConfig()
    elif args.config is not None:
        pyproject = Path(args.config)
        if not pyproject.is_file():
            print(f"error: no such config file: {args.config}", file=sys.stderr)
            return 2
        config = load_config(pyproject)
    else:
        config = load_config(find_pyproject(Path(args.paths[0])))

    select = tuple(r for r in (args.select or "").split(",") if r) or config.select
    ignore = tuple(r for r in (args.ignore or "").split(",") if r) or config.ignore
    try:
        rules = resolve_rules(select, ignore)
        files = discover_files(args.paths, config)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.changed:
        changed = changed_python_files(args.base)
        if changed is None:
            print(
                "repro.lint: --changed needs a git repository; "
                "linting everything",
                file=sys.stderr,
            )
        else:
            files = [f for f in files if f.resolve() in changed]

    if args.graph is not None:
        project = build_project_context(files, config)
        try:
            if args.graph == "dot":
                print(project.modgraph.to_dot(), end="")
            else:
                document = {
                    "modules": project.modgraph.to_json_dict(),
                    "calls": project.callgraph.to_json_dict(),
                }
                print(_json.dumps(document, indent=2, sort_keys=True))
        except BrokenPipeError:
            _ignore_broken_stdout()
        return 0

    try:
        report = lint_files(files, config, rules)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.format == "json":
            print(render_json(report))
        else:
            print(render_text(report))
    except BrokenPipeError:
        _ignore_broken_stdout()
    if not report.clean:
        return 1
    if args.sanitize:
        return _lint_sanitize_smoke()
    return 0


def _lint_sanitize_smoke() -> int:
    """Run one fair-scheduler experiment with the sim sanitizer armed.

    The runtime complement to FLOW001: checksum guards around every
    telemetry emission seam catch any observer feedback the static
    analysis cannot see.  Telemetry must be on, or no seam executes.
    """
    from .experiments import ExperimentConfig, run_workload
    from .sanitize import SanitizerViolation, sim_sanitizer
    from .telemetry import TelemetryConfig
    from .workloads import homogeneous_workload

    was_enabled = sim_sanitizer.enabled
    sim_sanitizer.enable()
    sim_sanitizer.reset()
    try:
        specs = homogeneous_workload(num_clients=3, num_batches=2)
        run_workload(
            specs,
            scheduler="fair",
            config=ExperimentConfig(scale=0.05, quantum=0.04),
            telemetry=TelemetryConfig(verbosity="metrics"),
        )
    except SanitizerViolation as exc:
        print(f"repro.lint: sanitize smoke FAILED: {exc}", file=sys.stderr)
        return 1
    finally:
        checks = sim_sanitizer.checks
        if not was_enabled:
            sim_sanitizer.disable()
    print(f"repro.lint: sanitize smoke passed ({checks} seam checks)")
    return 0


def _ignore_broken_stdout() -> None:
    # A downstream `| head` closing the pipe is not a lint error; swap
    # stdout for devnull so the interpreter's exit-time flush stays quiet.
    devnull = os.open(os.devnull, os.O_WRONLY)
    os.dup2(devnull, sys.stdout.fileno())


# Artefact registry for `reproduce`: lives with the experiments layer
# (repro.experiments.registry) so the process-pool fan-out can resolve
# names without importing the CLI.
def _artefacts() -> Dict[str, Callable[[], object]]:
    from .experiments.registry import artefact_registry

    return artefact_registry()


def _cmd_validate(args: argparse.Namespace) -> int:
    from .zoo import MODEL_REGISTRY, PAPER_MODELS, validate_calibration

    names = args.model or [spec.name for spec in PAPER_MODELS]
    all_passed = True
    for name in names:
        if name not in MODEL_REGISTRY:
            print(f"error: unknown model {name!r}", file=sys.stderr)
            return 2
        report = validate_calibration(
            MODEL_REGISTRY[name], scale=args.scale,
            measure_runtime=args.runtime,
        )
        print(report.report())
        print()
        all_passed = all_passed and report.passed
    return 0 if all_passed else 1


def _cmd_reproduce(args: argparse.Namespace) -> int:
    artefacts = _artefacts()
    names = args.artefact
    if not names or names == ["list"]:
        try:
            print("available artefacts:")
            for name in artefacts:
                print(f"  {name}")
        except BrokenPipeError:
            _ignore_broken_stdout()
        return 0
    unknown = [name for name in names if name not in artefacts]
    if unknown:
        print(
            f"error: unknown artefact(s) {', '.join(map(repr, unknown))}; "
            f"try `reproduce list`",
            file=sys.stderr,
        )
        return 2
    from .experiments.parallel import run_artefacts

    # One code path for any --jobs value: outcomes merge in input
    # order, so the printed output is byte-identical for all N.
    outcomes = run_artefacts(names, jobs=args.jobs)
    status = 0
    for outcome in outcomes:
        if outcome.ok:
            print(outcome.report)
        else:
            print(
                f"error: artefact {outcome.name!r} failed: {outcome.error}",
                file=sys.stderr,
            )
            status = 1
    return status


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import main as bench_main

    return bench_main(
        quick=args.quick,
        check=args.check,
        out=args.out,
        baseline=args.baseline,
        profile_out=args.profile_out,
    )


def _trace_workload(args: argparse.Namespace):
    from .workloads import complex_workload, homogeneous_workload

    if args.workload == "fig16":
        return complex_workload(num_batches=args.batches)
    return homogeneous_workload(
        num_clients=args.clients,
        model=args.model,
        batch_size=args.batch,
        num_batches=args.batches,
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .analysis import export_chrome_trace
    from .experiments import ExperimentConfig, run_workload
    from .telemetry import (
        TelemetryConfig,
        render_metrics_json,
        render_prometheus,
        validate_chrome_trace,
        validate_metrics_document,
        validate_spans_document,
    )

    config = ExperimentConfig(scale=args.scale, seed=args.seed)
    telemetry_config = TelemetryConfig(
        verbosity="spans", snapshot_period=args.snapshot_period
    )
    result = run_workload(
        _trace_workload(args),
        scheduler=args.scheduler,
        config=config,
        telemetry=telemetry_config,
    )
    count = export_chrome_trace(
        result.server, args.out, scheduler=result.scheduler, flows=True
    )
    rollup = result.telemetry_rollup
    print(
        f"ran {args.workload} under {args.scheduler}: "
        f"{rollup['events_published']} events, "
        f"{rollup['spans_finished']} spans, "
        f"{rollup['snapshots']} snapshots"
    )
    print(f"wrote {count} trace events to {args.out}")
    errors = validate_chrome_trace(json.loads(open(args.out).read()))
    if args.metrics_out:
        snapshot = result.telemetry.snapshots[-1]
        if args.metrics_out.endswith((".prom", ".txt")):
            text = render_prometheus(snapshot)
        else:
            text = render_metrics_json(snapshot)
            errors += validate_metrics_document(json.loads(text))
        with open(args.metrics_out, "w") as handle:
            handle.write(text)
        print(f"wrote metrics exposition to {args.metrics_out}")
    if args.spans_out:
        spans = result.telemetry.tracer.to_dicts()
        with open(args.spans_out, "w") as handle:
            json.dump(spans, handle, indent=1)
        errors += validate_spans_document(spans)
        print(f"wrote {len(spans)} spans to {args.spans_out}")
    if errors:
        for error in errors:
            print(f"schema error: {error}", file=sys.stderr)
        return 1
    print("all exported artefacts validate against their schemas")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from .experiments import ExperimentConfig, run_workload
    from .telemetry import TelemetryConfig, TopView, render_frame

    config = ExperimentConfig(scale=args.scale, seed=args.seed)
    telemetry_config = TelemetryConfig(
        verbosity="metrics", snapshot_period=args.interval
    )
    # --follow collects frames and replays them paced against the wall
    # clock; the default streams each frame as the simulation produces
    # it (CI-friendly, no terminal control codes).
    view = TopView(
        stream=None if args.follow else sys.stdout,
        width=args.width,
        max_frames=args.frames,
    )
    result = run_workload(
        _trace_workload(args),
        scheduler=args.scheduler,
        config=config,
        telemetry=telemetry_config,
        on_snapshot=view.on_snapshot,
    )
    if args.follow:
        for frame in view.frames:
            sys.stdout.write("\x1b[H\x1b[2J" + frame + "\n")
            sys.stdout.flush()
            time.sleep(args.delay)
    # The finalize() snapshot lands after the run; render it as the
    # closing frame so totals are complete even with --frames 0.
    final = render_frame(
        result.telemetry.snapshots[-1], result.telemetry, width=args.width
    )
    sys.stdout.write(final + "\n")
    rollup = result.telemetry_rollup
    print(
        f"run complete: {rollup['requests_finished']:.0f} requests, "
        f"{rollup['kernels_finished']:.0f} kernels, "
        f"{len(view.frames)} frames rendered"
    )
    for model, stats in sorted(rollup.get("latency", {}).items()):
        exemplar = stats.get("exemplar")
        jump = f"   slowest trace = {exemplar}" if exemplar else ""
        print(
            f"latency {model}: "
            f"p50 = {stats['p50'] * 1e3:.3f} ms   "
            f"p95 = {stats['p95'] * 1e3:.3f} ms   "
            f"p99 = {stats['p99'] * 1e3:.3f} ms{jump}"
        )
    return 0


def _cmd_blame(args: argparse.Namespace) -> int:
    import json

    from .analysis import (
        blame_report,
        blame_trace_events,
        build_trace_events,
        write_folded,
    )
    from .experiments import ExperimentConfig, run_workload
    from .metrics.report import render_table
    from .telemetry import (
        TelemetryConfig,
        attribute_tracer,
        validate_blame_report,
        validate_chrome_trace,
    )

    config = ExperimentConfig(scale=args.scale, seed=args.seed)
    result = run_workload(
        _trace_workload(args),
        scheduler=args.scheduler,
        config=config,
        telemetry=TelemetryConfig(verbosity="spans"),
    )
    attributions = attribute_tracer(result.telemetry.tracer)
    report = blame_report(
        attributions, args.scheduler, include_requests=args.requests
    )
    rows = [
        [
            name,
            f"{entry['total'] * 1e3:.3f} ms",
            f"{entry['mean'] * 1e3:.3f} ms",
            f"{entry['share']:.1%}",
        ]
        for name, entry in report["components"].items()
    ]
    print(
        render_table(
            ["component", "total", "mean/req", "share"],
            rows,
            title=(
                f"latency blame under {args.scheduler} "
                f"({report['num_served']}/{report['num_requests']} served)"
            ),
        )
    )
    e2e = report["e2e"]
    print(
        f"e2e   mean = {e2e['mean'] * 1e3:.3f} ms   "
        f"p50 = {e2e['p50'] * 1e3:.3f} ms   "
        f"p95 = {e2e['p95'] * 1e3:.3f} ms   "
        f"p99 = {e2e['p99'] * 1e3:.3f} ms"
    )
    if report["blockers"]:
        print("top head-of-line blockers:")
        for blocker in report["blockers"]:
            print(
                f"  {blocker['job_id']} ({blocker['model']}): "
                f"{blocker['seconds'] * 1e3:.3f} ms of induced wait"
            )
    for model, stats in sorted(
        (result.telemetry_rollup or {}).get("latency", {}).items()
    ):
        if stats.get("exemplar"):
            print(
                f"slowest {model} bucket exemplar: {stats['exemplar']} "
                f"(find it in --trace-out / --out requests)"
            )
    errors = validate_blame_report(report)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
        print(f"wrote blame report to {args.out}")
    if args.folded:
        count = write_folded(args.folded, attributions, args.scheduler)
        print(f"wrote {count} folded stack(s) to {args.folded}")
    if args.trace_out:
        events = build_trace_events(
            result.server, scheduler=result.scheduler, flows=True
        )
        events += blame_trace_events(attributions)
        doc = {"traceEvents": events, "displayTimeUnit": "ms"}
        with open(args.trace_out, "w") as handle:
            json.dump(doc, handle)
        errors += validate_chrome_trace(doc)
        print(
            f"wrote {len(events)} trace events (with blame annotations) "
            f"to {args.trace_out}"
        )
    if errors:
        for error in errors:
            print(f"schema error: {error}", file=sys.stderr)
        return 1
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    import json

    from .experiments.whatif import Perturbation, run_whatif
    from .metrics.report import render_table
    from .telemetry import validate_whatif_report

    from .experiments import ExperimentConfig

    quantum = args.quantum
    batches = args.batches
    if args.quick:
        # CI smoke shape: fixed quantum (skips Overhead-Q curve
        # measurement) and a short workload.
        if quantum is None:
            quantum = 1.2e-3
        batches = min(batches, 2)
    args.batches = batches
    config = ExperimentConfig(
        scale=args.scale, seed=args.seed, quantum=quantum
    )
    perturbations = [
        Perturbation(
            f"kernels x{args.factor:g}",
            kernel_scale=(args.scale_model, args.factor),
        )
    ]
    if args.streams is not None:
        perturbations.append(
            Perturbation(f"streams={args.streams}", streams=args.streams)
        )
    if args.quantum_scale is not None:
        perturbations.append(
            Perturbation(
                f"quantum x{args.quantum_scale:g}",
                quantum_scale=args.quantum_scale,
            )
        )
    try:
        report = run_whatif(
            _trace_workload(args),
            scheduler=args.scheduler,
            config=config,
            perturbations=perturbations,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    base = report["baseline"]["e2e"]
    print(
        f"baseline under {args.scheduler}: "
        f"mean = {base['mean'] * 1e3:.3f} ms   "
        f"p99 = {base['p99'] * 1e3:.3f} ms   "
        f"({report['num_requests']} requests)"
    )
    rows = []
    for scenario in report["scenarios"]:
        predicted = scenario.get("predicted")
        rows.append(
            [
                scenario["perturbation"]["name"],
                f"{scenario['e2e']['mean'] * 1e3:.3f} ms",
                f"{scenario['delta']['mean'] * 1e3:+.3f} ms",
                f"{scenario['e2e']['p99'] * 1e3:.3f} ms",
                f"{scenario['delta']['p99'] * 1e3:+.3f} ms",
                f"{predicted['p99'] * 1e3:.3f} ms" if predicted else "-",
                f"{scenario['prediction_error_p99']:.1%}"
                if predicted
                else "-",
            ]
        )
    print(
        render_table(
            ["scenario", "mean", "d mean", "p99", "d p99",
             "predicted p99", "error"],
            rows,
            title="what-if: measured causal deltas vs blame prediction",
        )
    )
    for scenario in report["scenarios"]:
        kernel_scale = scenario["perturbation"].get("kernel_scale")
        if kernel_scale is not None:
            print(
                f"scaled model: {kernel_scale['model']} "
                f"(factor {kernel_scale['factor']:g})"
            )
    errors = validate_whatif_report(report)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
        print(f"wrote what-if report to {args.out}")
    if errors:
        for error in errors:
            print(f"schema error: {error}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Olympian (Middleware 2018) reproduction: fair GPU "
            "time-slicing for DNN model serving."
        ),
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("models", help="list the servable model zoo")

    profile = sub.add_parser(
        "profile", help="run the offline profiler and save a bundle"
    )
    profile.add_argument(
        "model",
        nargs="+",
        help="model name or name:batch (default batch = Table 2 reference)",
    )
    profile.add_argument("--out", default="profiles.json")
    profile.add_argument("--scale", type=float, default=0.05)
    profile.add_argument("--seed", type=int, default=7)
    profile.add_argument("--graph-seed", type=int, default=1)
    profile.add_argument("--tolerance", type=float, default=0.025)
    profile.add_argument(
        "--quantum", type=float, default=None,
        help="fixed quantum in seconds (skips Overhead-Q measurement)",
    )

    serve = sub.add_parser("serve", help="run a serving experiment")
    serve.add_argument("--model", default="inception_v4")
    serve.add_argument("--batch", type=int, default=100)
    serve.add_argument("--clients", type=int, default=10)
    serve.add_argument("--batches", type=int, default=10)
    serve.add_argument(
        "--scheduler",
        default="fair",
        choices=[
            "tf-serving", "fair", "weighted", "priority", "timer",
            "deficit-rr", "lottery", "edf", "srw",
            "spatial", "spatial-rt",
        ],
    )
    serve.add_argument("--scale", type=float, default=0.05)
    serve.add_argument("--seed", type=int, default=3)
    serve.add_argument("--quantum", type=float, default=None)
    serve.add_argument(
        "--streams", type=int, default=None,
        help="GPU compute streams (spatial sharing; default: spec's 1)",
    )
    serve.add_argument(
        "--oversubscription", type=float, default=1.0,
        help="spatial-rt logical capacity factor (>= 1.0; 1.0 selects "
             "the built-in real-time default)",
    )
    serve.add_argument(
        "--profiles", default=None, help="profile bundle from `profile`"
    )
    serve.add_argument(
        "--fault-plan", default=None,
        help="JSON fault plan to inject (see `repro faults`)",
    )
    serve.add_argument(
        "--fault-seed", type=int, default=None,
        help="generate a fault plan from this seed instead of a file",
    )
    serve.add_argument(
        "--num-faults", type=int, default=3,
        help="faults to generate with --fault-seed",
    )
    serve.add_argument(
        "--stall-threshold", type=float, default=None,
        help="evict a token holder stalled this long (simulated seconds)",
    )
    serve.add_argument(
        "--retries", type=int, default=0,
        help="client retries per failed batch (exponential backoff)",
    )
    serve.add_argument(
        "--telemetry", default="off",
        choices=["off", "metrics", "spans", "full"],
        help="runtime telemetry verbosity (default off; digest-neutral)",
    )
    serve.add_argument(
        "--snapshot-period", type=float, default=0.25,
        help="telemetry snapshot cadence in simulated seconds",
    )
    serve.add_argument(
        "--monitor", action="store_true",
        help="run the profile-drift quantum monitor (Olympian schedulers)",
    )
    serve.add_argument(
        "--metrics-out", default=None,
        help="write a Prometheus-text metrics exposition after the run "
             "(needs --telemetry)",
    )

    faults = sub.add_parser(
        "faults", help="generate or inspect deterministic fault plans"
    )
    faults.add_argument(
        "action", choices=["generate", "show"],
        help="generate a plan from a seed, or show a saved plan",
    )
    faults.add_argument(
        "plan", nargs="?", default=None, help="plan file (for `show`)"
    )
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument(
        "--clients", default="c0",
        help="comma-separated client ids faults may target",
    )
    faults.add_argument(
        "--kinds", default="kernel_crash",
        help="comma-separated kinds: "
             "kernel_crash,device_hang,oom,device_crash",
    )
    faults.add_argument("--num-faults", type=int, default=3)
    faults.add_argument(
        "--horizon", type=float, default=1.0,
        help="latest device_hang start time (simulated seconds)",
    )
    faults.add_argument("--out", default=None, help="save the plan as JSON")

    chaos = sub.add_parser(
        "chaos",
        help="run a seeded chaos campaign against every scheduler kind",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--quick", action="store_true",
        help="CI smoke shape: one trial per kind, shorter workload",
    )
    chaos.add_argument(
        "--out", default=None,
        help="write the full campaign record (runs + digest) as JSON",
    )

    soak = sub.add_parser(
        "soak",
        help="run a seeded kill/restart soak against the durable "
             "control plane",
    )
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument(
        "--quick", action="store_true",
        help="CI smoke shape: one scheduler kind, one process kill",
    )
    soak.add_argument(
        "--gpus", type=int, default=None,
        help="serve through a multi-GPU front with this many devices",
    )
    soak.add_argument(
        "--out", default=None,
        help="write the full soak record (runs + digests) as JSON",
    )

    lint = sub.add_parser(
        "lint",
        help="determinism & concurrency static analysis (CI gate)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to lint (default: src)",
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format",
    )
    lint.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--ignore", default=None,
        help="comma-separated rule ids to skip",
    )
    lint.add_argument(
        "--config", default=None,
        help="pyproject.toml to read [tool.repro.lint] from "
             "(default: discovered from the first path)",
    )
    lint.add_argument(
        "--no-config", action="store_true",
        help="ignore pyproject.toml; use built-in defaults",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.add_argument(
        "--graph", choices=["dot", "json"], default=None,
        help="export the module dependency graph (dot) or the module + "
             "call graphs (json) instead of linting",
    )
    lint.add_argument(
        "--changed", action="store_true",
        help="lint only files differing from the git merge-base "
             "(full run outside a git repo); whole-program rules see "
             "only the changed subgraph — CI always runs everything",
    )
    lint.add_argument(
        "--base", default="main",
        help="base ref for --changed (default: main)",
    )
    lint.add_argument(
        "--sanitize", action="store_true",
        help="after a clean static pass, run a fair-scheduler smoke "
             "experiment with REPRO_SANITIZE-style checksum guards armed",
    )

    validate = sub.add_parser(
        "validate", help="check zoo calibration against the Table 2 specs"
    )
    validate.add_argument("model", nargs="*", help="models (default: all)")
    validate.add_argument("--scale", type=float, default=0.05)
    validate.add_argument(
        "--runtime", action="store_true",
        help="also measure solo runtimes (slower)",
    )

    reproduce = sub.add_parser(
        "reproduce", help="regenerate paper tables/figures"
    )
    reproduce.add_argument(
        "artefact", nargs="*", default=None,
        help="artefact id(s) (e.g. fig11 fig16) or `list`",
    )
    reproduce.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for multiple artefacts (default 1); "
             "output is byte-identical for every N",
    )

    bench = sub.add_parser(
        "bench", help="performance benchmarks + regression check"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="reduced iteration counts (CI smoke variant)",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline; exit 1 on regression",
    )
    bench.add_argument(
        "--out", default=None,
        help="result JSON path (default BENCH_current.json)",
    )
    bench.add_argument(
        "--baseline", default=None,
        help="baseline JSON path (default BENCH_BASELINE.json)",
    )
    bench.add_argument(
        "--profile-out", default=None,
        help="also run the fig16 workload under cProfile and dump "
             "hotspot stats to this path",
    )

    def add_workload_args(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--workload", default="fig16",
            choices=["fig16", "homogeneous"],
            help="fig16 = 14 clients x 7 models; homogeneous uses "
                 "--model/--batch/--clients",
        )
        command.add_argument("--model", default="inception_v4")
        command.add_argument("--batch", type=int, default=100)
        command.add_argument("--clients", type=int, default=4)
        command.add_argument("--batches", type=int, default=2)
        command.add_argument(
            "--scheduler", default="fair",
            choices=[
                "tf-serving", "fair", "weighted", "priority", "timer",
                "deficit-rr", "lottery", "edf", "srw",
                "spatial", "spatial-rt",
            ],
        )
        command.add_argument("--scale", type=float, default=0.05)
        command.add_argument("--seed", type=int, default=3)

    trace = sub.add_parser(
        "trace",
        help="export an enriched Chrome/Perfetto trace from a traced run",
    )
    add_workload_args(trace)
    trace.add_argument(
        "--out", default="trace.json", help="Chrome trace output path"
    )
    trace.add_argument(
        "--metrics-out", default=None,
        help="also export metrics (.prom/.txt = Prometheus text, "
             "else JSON)",
    )
    trace.add_argument(
        "--spans-out", default=None,
        help="also export the span table as JSON",
    )
    trace.add_argument(
        "--snapshot-period", type=float, default=0.25,
        help="telemetry snapshot cadence in simulated seconds",
    )

    blame = sub.add_parser(
        "blame",
        help="per-request critical-path latency attribution",
    )
    add_workload_args(blame)
    blame.add_argument(
        "--out", default=None, help="write the blame report as JSON"
    )
    blame.add_argument(
        "--folded", default=None,
        help="write folded stacks (flamegraph.pl / speedscope input)",
    )
    blame.add_argument(
        "--trace-out", default=None,
        help="write a Chrome trace with per-request blame annotations",
    )
    blame.add_argument(
        "--requests", action="store_true",
        help="include the per-request decomposition in --out JSON",
    )

    whatif = sub.add_parser(
        "whatif",
        help="deterministic causal profiling (counterfactual replay)",
    )
    add_workload_args(whatif)
    whatif.add_argument(
        "--scale-model", default=None,
        help="model whose kernels to scale (default: heaviest by "
             "attributed execution time)",
    )
    whatif.add_argument(
        "--factor", type=float, default=0.5,
        help="kernel duration scale factor (default 0.5 = 2x faster)",
    )
    whatif.add_argument(
        "--streams", type=int, default=None,
        help="also try this many GPU compute streams",
    )
    whatif.add_argument(
        "--quantum-scale", type=float, default=None,
        help="also try scaling the scheduling quantum by this factor",
    )
    whatif.add_argument(
        "--quantum", type=float, default=None,
        help="fixed baseline quantum in seconds (skips Overhead-Q "
             "curve measurement)",
    )
    whatif.add_argument(
        "--quick", action="store_true",
        help="CI smoke shape: fixed quantum, at most 2 batches",
    )
    whatif.add_argument(
        "--out", default=None, help="write the what-if report as JSON"
    )

    top = sub.add_parser(
        "top", help="terminal dashboard of a serving run (repro top)"
    )
    add_workload_args(top)
    top.add_argument(
        "--interval", type=float, default=0.05,
        help="frame cadence in simulated seconds",
    )
    top.add_argument(
        "--frames", type=int, default=None,
        help="cap on rendered frames (default unlimited)",
    )
    top.add_argument(
        "--follow", action="store_true",
        help="replay frames in place with ANSI redraw, paced by --delay",
    )
    top.add_argument(
        "--delay", type=float, default=0.2,
        help="wall-clock seconds per frame with --follow",
    )
    top.add_argument(
        "--width", type=int, default=72, help="frame width in columns"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "models": _cmd_models,
        "profile": _cmd_profile,
        "serve": _cmd_serve,
        "faults": _cmd_faults,
        "chaos": _cmd_chaos,
        "soak": _cmd_soak,
        "lint": _cmd_lint,
        "validate": _cmd_validate,
        "reproduce": _cmd_reproduce,
        "bench": _cmd_bench,
        "trace": _cmd_trace,
        "top": _cmd_top,
        "blame": _cmd_blame,
        "whatif": _cmd_whatif,
    }
    if args.command is None:
        parser.print_help()
        return 0
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
