"""Arrival-pattern generators.

The paper starts all clients simultaneously; these helpers also provide
staggered and Poisson arrivals for the extension experiments the paper
lists as future work ("more realistic and dynamic workloads", §7.2).
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import List, Sequence

from ..sim.rng import derive_seed
from .scenarios import ClientSpec

__all__ = ["simultaneous", "staggered", "poisson_arrivals", "bursty_think_times"]


def simultaneous(specs: Sequence[ClientSpec]) -> List[ClientSpec]:
    """All clients start at t=0 (the paper's arrival model)."""
    return [replace(spec, start_delay=0.0) for spec in specs]


def staggered(specs: Sequence[ClientSpec], gap: float) -> List[ClientSpec]:
    """Client ``i`` starts at ``i * gap`` seconds."""
    if gap < 0:
        raise ValueError(f"gap must be >= 0: {gap}")
    return [
        replace(spec, start_delay=i * gap) for i, spec in enumerate(specs)
    ]


def poisson_arrivals(
    specs: Sequence[ClientSpec], rate: float, seed: int = 0
) -> List[ClientSpec]:
    """Clients arrive as a Poisson process with ``rate`` per second."""
    if rate <= 0:
        raise ValueError(f"rate must be positive: {rate}")
    rng = random.Random(derive_seed(seed, "poisson-arrivals"))
    out: List[ClientSpec] = []
    t = 0.0
    for spec in specs:
        t += rng.expovariate(rate)
        out.append(replace(spec, start_delay=t))
    return out


def bursty_think_times(
    specs: Sequence[ClientSpec], think_time: float
) -> List[ClientSpec]:
    """Insert idle think time between a client's batches.

    Models the "intermittent and bursty GPU usage" of practical
    applications the paper's introduction motivates multiplexing with.
    """
    if think_time < 0:
        raise ValueError(f"think_time must be >= 0: {think_time}")
    return [replace(spec, think_time=think_time) for spec in specs]
