"""Workload definitions for the paper's experiments.

A workload is a list of :class:`ClientSpec`; the experiment runner
materialises them into :class:`~repro.serving.client.Client` objects.
The four scenarios here are the paper's:

* **homogeneous** — N identical Inception clients (Figures 3, 11, 12,
  17, 18, 19-left, 20, 21).
* **heterogeneous** — half Inception, half ResNet-152 (Figures 13, 14,
  19-right), optionally with the batch-150 equalisation the paper uses.
* **complex** — 14 clients over all seven Table 2 models at their
  reference batch sizes (Figure 16).
* **scaling** — K clients of one model (the §4.3 scalability sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from ..zoo.catalog import INCEPTION_V4, PAPER_MODELS, RESNET_152

__all__ = [
    "ClientSpec",
    "homogeneous_workload",
    "heterogeneous_workload",
    "complex_workload",
    "scaling_workload",
    "with_weights",
    "with_priorities",
]

DEFAULT_NUM_BATCHES = 10


@dataclass(frozen=True)
class ClientSpec:
    """One client to run: model, batch size, policy inputs."""

    client_id: str
    model: str
    batch_size: int
    num_batches: int = DEFAULT_NUM_BATCHES
    weight: int = 1
    priority: int = 0
    start_delay: float = 0.0
    think_time: float = 0.0

    @property
    def models_used(self) -> str:
        return self.model


def homogeneous_workload(
    num_clients: int = 10,
    model: str = INCEPTION_V4.name,
    batch_size: int = 100,
    num_batches: int = DEFAULT_NUM_BATCHES,
) -> List[ClientSpec]:
    """The paper's default workload (§3.5): N identical clients."""
    return [
        ClientSpec(
            client_id=f"c{i}",
            model=model,
            batch_size=batch_size,
            num_batches=num_batches,
        )
        for i in range(num_clients)
    ]


def heterogeneous_workload(
    clients_per_model: int = 5,
    inception_batch: int = 100,
    resnet_batch: int = 100,
    num_batches: int = DEFAULT_NUM_BATCHES,
) -> List[ClientSpec]:
    """Figure 13/14: first half Inception, second half ResNet-152.

    The paper's second variant sets ``inception_batch=150`` to roughly
    equalise per-batch runtimes between the two models.
    """
    specs = [
        ClientSpec(
            client_id=f"c{i}",
            model=INCEPTION_V4.name,
            batch_size=inception_batch,
            num_batches=num_batches,
        )
        for i in range(clients_per_model)
    ]
    specs += [
        ClientSpec(
            client_id=f"c{clients_per_model + i}",
            model=RESNET_152.name,
            batch_size=resnet_batch,
            num_batches=num_batches,
        )
        for i in range(clients_per_model)
    ]
    return specs


def complex_workload(
    clients_per_model: int = 2,
    num_batches: int = DEFAULT_NUM_BATCHES,
) -> List[ClientSpec]:
    """Figure 16: 14 clients across all seven models, Table 2 batches."""
    specs: List[ClientSpec] = []
    index = 0
    for model_spec in PAPER_MODELS:
        for _ in range(clients_per_model):
            specs.append(
                ClientSpec(
                    client_id=f"c{index}",
                    model=model_spec.name,
                    batch_size=model_spec.ref_batch,
                    num_batches=num_batches,
                )
            )
            index += 1
    return specs


def scaling_workload(
    num_clients: int,
    model: str = INCEPTION_V4.name,
    batch_size: int = 100,
    num_batches: int = 2,
) -> List[ClientSpec]:
    """§4.3 scalability sweep: K concurrent clients of one model."""
    return [
        ClientSpec(
            client_id=f"c{i}",
            model=model,
            batch_size=batch_size,
            num_batches=num_batches,
        )
        for i in range(num_clients)
    ]


def with_weights(
    specs: Sequence[ClientSpec], weights: Sequence[int]
) -> List[ClientSpec]:
    """Assign per-client weights (Figure 17's weighted fair sharing)."""
    if len(weights) != len(specs):
        raise ValueError(
            f"{len(weights)} weights for {len(specs)} clients"
        )
    return [replace(spec, weight=w) for spec, w in zip(specs, weights)]


def with_priorities(
    specs: Sequence[ClientSpec], priorities: Sequence[int]
) -> List[ClientSpec]:
    """Assign per-client priorities (Figure 18; larger = higher)."""
    if len(priorities) != len(specs):
        raise ValueError(
            f"{len(priorities)} priorities for {len(specs)} clients"
        )
    return [replace(spec, priority=p) for spec, p in zip(specs, priorities)]
