"""Trace-driven workloads: record, generate, and replay request traces.

Production serving systems are driven by request logs, not by closed
loops of synthetic clients.  This module gives the reproduction that
missing piece (paper future work: "more realistic and dynamic
workloads"):

* :class:`TraceRequest` / :class:`RequestTrace` — a timestamped request
  log (arrival time, model, batch size, optional SLO), with JSON
  round-trip.
* Generators for the standard shapes: steady Poisson, diurnal
  (sinusoidal rate), and bursty on/off (a two-state MMPP) — the
  "intermittent and bursty GPU usage" the paper's introduction
  motivates multiplexing with.
* :func:`replay` — drive any server with a trace and collect per-request
  outcomes.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from ..sim.core import Simulator
from ..sim.rng import derive_seed

__all__ = [
    "TraceRequest",
    "RequestTrace",
    "iter_poisson",
    "iter_diurnal",
    "iter_bursty",
    "poisson_trace",
    "diurnal_trace",
    "bursty_trace",
    "replay",
    "ReplayOutcome",
]

_PathLike = Union[str, Path]


@dataclass(frozen=True)
class TraceRequest:
    """One request in a trace."""

    arrival: float
    model: str
    batch_size: int
    slo: Optional[float] = None

    def __post_init__(self):
        if self.arrival < 0:
            raise ValueError(f"negative arrival time: {self.arrival}")
        if self.batch_size < 1:
            raise ValueError(f"batch size must be >= 1: {self.batch_size}")
        if self.slo is not None and self.slo <= 0:
            raise ValueError(f"SLO must be positive: {self.slo}")


@dataclass
class RequestTrace:
    """An ordered request log."""

    requests: List[TraceRequest] = field(default_factory=list)

    def __post_init__(self):
        arrivals = [r.arrival for r in self.requests]
        if arrivals != sorted(arrivals):
            self.requests = sorted(self.requests, key=lambda r: r.arrival)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def duration(self) -> float:
        """Span from first to last arrival."""
        if not self.requests:
            return 0.0
        return self.requests[-1].arrival - self.requests[0].arrival

    @property
    def models(self) -> List[str]:
        return sorted({r.model for r in self.requests})

    def mean_rate(self) -> float:
        """Average arrivals per second over the trace span."""
        if len(self.requests) < 2 or self.duration == 0:
            raise ValueError("rate undefined for traces shorter than 2 requests")
        return (len(self.requests) - 1) / self.duration

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests": [
                {
                    "arrival": r.arrival,
                    "model": r.model,
                    "batch_size": r.batch_size,
                    "slo": r.slo,
                }
                for r in self.requests
            ]
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RequestTrace":
        return cls(
            requests=[
                TraceRequest(
                    arrival=entry["arrival"],
                    model=entry["model"],
                    batch_size=entry["batch_size"],
                    slo=entry.get("slo"),
                )
                for entry in data["requests"]
            ]
        )

    def save(self, path: _PathLike) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: _PathLike) -> "RequestTrace":
        return cls.from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
#
# Each shape comes as a lazy iterator (``iter_*``) plus an eager
# wrapper returning a :class:`RequestTrace`.  The iterators hold O(1)
# state — one RNG, one clock — so arbitrarily long arrival streams can
# be consumed without materialising them (the open-loop traffic engine
# and the soak harness both stream from these).  The wrappers draw in
# exactly the same order, so traces are bit-identical to the historical
# eager builders.


def iter_poisson(
    rate: float,
    duration: float,
    model: str,
    batch_size: int,
    seed: int = 0,
    slo: Optional[float] = None,
) -> Iterator[TraceRequest]:
    """Lazily yield steady Poisson arrivals at ``rate``/s."""
    if rate <= 0 or duration <= 0:
        raise ValueError("rate and duration must be positive")
    rng = random.Random(derive_seed(seed, "trace:poisson"))
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t > duration:
            return
        yield TraceRequest(t, model, batch_size, slo)


def poisson_trace(
    rate: float,
    duration: float,
    model: str,
    batch_size: int,
    seed: int = 0,
    slo: Optional[float] = None,
) -> RequestTrace:
    """Steady Poisson arrivals at ``rate``/s for ``duration`` seconds."""
    return RequestTrace(
        list(iter_poisson(rate, duration, model, batch_size, seed, slo))
    )


def iter_diurnal(
    base_rate: float,
    peak_rate: float,
    duration: float,
    model: str,
    batch_size: int,
    period: Optional[float] = None,
    seed: int = 0,
    slo: Optional[float] = None,
) -> Iterator[TraceRequest]:
    """Lazily yield sinusoidally modulated arrivals (thinned Poisson)."""
    if not 0 < base_rate <= peak_rate:
        raise ValueError("need 0 < base_rate <= peak_rate")
    if duration <= 0:
        raise ValueError("duration must be positive")
    period = period if period is not None else duration
    rng = random.Random(derive_seed(seed, "trace:diurnal"))
    t = 0.0
    while True:
        t += rng.expovariate(peak_rate)
        if t > duration:
            return
        phase = math.sin(2 * math.pi * t / period - math.pi / 2)  # trough first
        rate = base_rate + (peak_rate - base_rate) * (phase + 1) / 2
        if rng.random() <= rate / peak_rate:
            yield TraceRequest(t, model, batch_size, slo)


def diurnal_trace(
    base_rate: float,
    peak_rate: float,
    duration: float,
    model: str,
    batch_size: int,
    period: Optional[float] = None,
    seed: int = 0,
    slo: Optional[float] = None,
) -> RequestTrace:
    """Sinusoidally modulated arrivals (the daily load curve, scaled).

    Rate varies between ``base_rate`` and ``peak_rate`` over ``period``
    (default: the full duration is one day-night cycle).  Generated by
    thinning a Poisson process at the peak rate.
    """
    return RequestTrace(
        list(
            iter_diurnal(
                base_rate, peak_rate, duration, model, batch_size,
                period, seed, slo,
            )
        )
    )


def iter_bursty(
    burst_rate: float,
    idle_rate: float,
    mean_burst: float,
    mean_idle: float,
    duration: float,
    model: str,
    batch_size: int,
    seed: int = 0,
    slo: Optional[float] = None,
) -> Iterator[TraceRequest]:
    """Lazily yield two-state on/off (MMPP-2) arrivals."""
    if burst_rate <= 0 or idle_rate < 0:
        raise ValueError("rates must be positive (idle may be 0)")
    if mean_burst <= 0 or mean_idle <= 0 or duration <= 0:
        raise ValueError("durations must be positive")
    rng = random.Random(derive_seed(seed, "trace:bursty"))
    t = 0.0
    bursting = True
    phase_end = rng.expovariate(1.0 / mean_burst)
    while t < duration:
        rate = burst_rate if bursting else idle_rate
        if rate <= 0:
            t = phase_end
        else:
            t += rng.expovariate(rate)
            if t <= min(phase_end, duration):
                yield TraceRequest(t, model, batch_size, slo)
        if t >= phase_end:
            bursting = not bursting
            mean = mean_burst if bursting else mean_idle
            phase_end = t + rng.expovariate(1.0 / mean)


def bursty_trace(
    burst_rate: float,
    idle_rate: float,
    mean_burst: float,
    mean_idle: float,
    duration: float,
    model: str,
    batch_size: int,
    seed: int = 0,
    slo: Optional[float] = None,
) -> RequestTrace:
    """Two-state on/off arrivals (MMPP-2): bursts of ``burst_rate``
    separated by quiet periods — the "intermittent and bursty" usage
    of the paper's introduction."""
    return RequestTrace(
        list(
            iter_bursty(
                burst_rate, idle_rate, mean_burst, mean_idle, duration,
                model, batch_size, seed, slo,
            )
        )
    )


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------


@dataclass
class ReplayOutcome:
    """Per-request results of one trace replay."""

    latencies: List[float]
    slo_hits: int
    slo_misses: int
    rejected: int

    @property
    def completed(self) -> int:
        return len(self.latencies)

    def slo_attainment(self) -> float:
        total = self.slo_hits + self.slo_misses
        if total == 0:
            raise ValueError("trace carried no SLOs")
        return self.slo_hits / total


def replay(
    sim: Simulator,
    server,
    trace: Iterable[TraceRequest],
    admission_controller=None,
) -> ReplayOutcome:
    """Replay ``trace`` against ``server``; returns the outcome.

    ``server`` is anything with ``make_job``/``submit`` (a
    :class:`~repro.serving.server.ModelServer` or a
    :class:`~repro.cluster.server.MultiGpuServer`).  ``trace`` is a
    :class:`RequestTrace` or any (possibly lazy) iterable of
    time-ordered :class:`TraceRequest` — the driver pulls requests one
    at a time, so an ``iter_*`` generator streams without ever being
    materialised.  With an ``admission_controller`` (:mod:`repro.slo`),
    requests carrying an SLO go through admission.  The caller runs
    ``sim.run()`` afterwards.
    """
    outcome = ReplayOutcome(latencies=[], slo_hits=0, slo_misses=0, rejected=0)

    def track(request, job, done):
        submitted = sim.now
        yield done
        latency = job.finished_at - submitted
        outcome.latencies.append(latency)
        if request.slo is not None:
            if latency <= request.slo:
                outcome.slo_hits += 1
            else:
                outcome.slo_misses += 1

    def driver():
        start = sim.now
        for index, request in enumerate(trace):
            delay = start + request.arrival - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            job = server.make_job(f"trace{index}", request.model,
                                  request.batch_size)
            if admission_controller is not None and request.slo is not None:
                done = admission_controller.try_submit(job, slo=request.slo)
                if done is None:
                    outcome.rejected += 1
                    continue
            else:
                done = server.submit(job)
            sim.process(track(request, job, done))

    sim.process(driver(), name="trace-replay")
    return outcome
