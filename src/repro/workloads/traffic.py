"""Open-loop traffic engine: millions of users, O(1) memory.

The scripted workloads (:mod:`repro.workloads.scenarios`) are closed
loops: N clients, each waiting for its previous batch.  Production
serving faces the opposite regime — an *open loop* where arrivals keep
coming whether or not the server keeps up, drawn from a population of
millions of users spread over thousands of tenants.  This module
models that population without ever materialising it:

* Arrival **times** come from the same three processes as
  :mod:`repro.workloads.trace` (steady Poisson, diurnal thinning,
  bursty MMPP-2), generated lazily.
* **Who** arrives is drawn per event from heavy-tailed (Zipf-like)
  popularity over tenants and over each tenant's user space, via an
  O(1) inverse-CDF transform — no per-user or per-tenant state exists
  anywhere, so memory is constant in the population size.
* **What** they ask for comes from a weighted model mix
  (:class:`ModelMix`), each entry carrying batch size, optional SLO,
  and priority class.

Every draw is namespaced through
:func:`~repro.sim.rng.derive_seed`, so a (config, seed) pair fully
determines the arrival stream: re-iterating regenerates byte-identical
arrivals, which is what lets the durable control plane re-derive "the
rest of the traffic" after a crash-restart instead of persisting it.

:func:`drive` plugs the stream into any serving front (duck-typed like
:func:`repro.workloads.trace.replay`), optionally through an admission
gate, with callbacks for journaling — the seam the soak harness and
``experiments`` runners build on.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional, Tuple

from ..sim.core import Simulator
from ..sim.rng import derive_seed

__all__ = [
    "ModelMix",
    "TrafficConfig",
    "Arrival",
    "TrafficEngine",
    "TrafficStats",
    "drive",
]

TRAFFIC_PROCESSES = ("poisson", "diurnal", "bursty")


@dataclass(frozen=True)
class ModelMix:
    """One entry of the traffic's model mix."""

    model: str
    batch_size: int
    weight: float = 1.0
    slo: Optional[float] = None
    priority: int = 0

    def __post_init__(self):
        if self.batch_size < 1:
            raise ValueError(f"batch size must be >= 1: {self.batch_size}")
        if self.weight <= 0:
            raise ValueError(f"mix weight must be positive: {self.weight}")
        if self.slo is not None and self.slo <= 0:
            raise ValueError(f"SLO must be positive: {self.slo}")


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of one open-loop traffic stream.

    ``users``/``tenants`` size the simulated population (identifiers
    only — no state is kept per entity).  ``rate`` is the mean arrival
    rate in requests per simulated second; the ``process`` modulates it:

    * ``"poisson"`` — steady arrivals at ``rate``.
    * ``"diurnal"`` — sinusoidal between ``rate`` and
      ``rate * peak_ratio`` over ``period`` (default: one cycle per
      ``duration``).
    * ``"bursty"`` — MMPP-2 alternating ``rate * burst_ratio`` bursts
      with ``rate * idle_ratio`` lulls.

    ``user_skew``/``tenant_skew`` are Zipf exponents for the
    heavy-tailed popularity of users within a tenant and of tenants
    overall (1.0 = classic Zipf; higher = heavier head).
    """

    mix: Tuple[ModelMix, ...]
    users: int = 1_000_000
    tenants: int = 1_000
    rate: float = 100.0
    duration: Optional[float] = 1.0
    process: str = "poisson"
    peak_ratio: float = 4.0
    period: Optional[float] = None
    burst_ratio: float = 4.0
    idle_ratio: float = 0.25
    mean_burst: float = 0.05
    mean_idle: float = 0.1
    user_skew: float = 1.1
    tenant_skew: float = 0.9

    def __post_init__(self):
        if not self.mix:
            raise ValueError("traffic needs a non-empty model mix")
        if self.users < 1 or self.tenants < 1:
            raise ValueError("users and tenants must be >= 1")
        if self.tenants > self.users:
            raise ValueError("more tenants than users")
        if self.rate <= 0:
            raise ValueError(f"rate must be positive: {self.rate}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if self.process not in TRAFFIC_PROCESSES:
            raise ValueError(
                f"process must be one of {TRAFFIC_PROCESSES}: {self.process!r}"
            )
        if self.peak_ratio < 1.0 or self.burst_ratio <= 0:
            raise ValueError("peak_ratio must be >= 1, burst_ratio > 0")


@dataclass(frozen=True)
class Arrival:
    """One open-loop request: who arrives, when, asking for what."""

    index: int
    time: float
    tenant: str
    user: str
    model: str
    batch_size: int
    slo: Optional[float] = None
    priority: int = 0

    @property
    def request_id(self) -> str:
        """Stable identity: the same (config, seed) stream always
        assigns the same id to the same arrival — the key the durable
        job store journals under."""
        return f"r{self.index}"

    @property
    def deadline(self) -> Optional[float]:
        """Absolute deadline implied by the SLO, if any."""
        return None if self.slo is None else self.time + self.slo


def _zipf_index(u: float, skew: float, n: int) -> int:
    """Zero-based heavy-tailed rank from one uniform draw, O(1).

    Inverse CDF of the continuous Zipf approximation
    ``P(rank <= k) ~ (k^(1-s) - 1) / (n^(1-s) - 1)`` (``s != 1``;
    the ``s == 1`` limit is log-uniform).  Exact table-based Zipf would
    need O(n) state — the whole point here is that it must not.
    """
    if n <= 1:
        return 0
    if abs(skew - 1.0) < 1e-9:
        rank = math.exp(u * math.log(n))
    else:
        span = n ** (1.0 - skew) - 1.0
        rank = (1.0 + u * span) ** (1.0 / (1.0 - skew))
    return min(n, max(1, int(rank))) - 1


class TrafficEngine:
    """Lazy, seed-deterministic open-loop arrival stream."""

    def __init__(self, config: TrafficConfig, seed: int = 0):
        self.config = config
        self.seed = seed
        weights = [entry.weight for entry in config.mix]
        total = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0  # guard the float tail
        self._mix_cdf = tuple(cumulative)
        # Tenant user-spaces partition the population: tenant k owns
        # user indices [k * span, k * span + span).
        self._user_span = max(1, config.users // config.tenants)

    # ------------------------------------------------------------------
    # Stream generation
    # ------------------------------------------------------------------

    def _times(self) -> Iterator[float]:
        """Lazy arrival instants for the configured process."""
        config = self.config
        rng = random.Random(
            derive_seed(self.seed, f"traffic:times:{config.process}")
        )
        duration = config.duration
        horizon = math.inf if duration is None else duration
        t = 0.0
        if config.process == "poisson":
            while True:
                t += rng.expovariate(config.rate)
                if t > horizon:
                    return
                yield t
        elif config.process == "diurnal":
            base = config.rate
            peak = config.rate * config.peak_ratio
            period = config.period
            if period is None:
                period = duration if duration is not None else 1.0
            while True:
                t += rng.expovariate(peak)
                if t > horizon:
                    return
                phase = math.sin(2 * math.pi * t / period - math.pi / 2)
                rate = base + (peak - base) * (phase + 1) / 2
                if rng.random() <= rate / peak:
                    yield t
        else:  # bursty (MMPP-2)
            burst = config.rate * config.burst_ratio
            idle = config.rate * config.idle_ratio
            bursting = True
            phase_end = rng.expovariate(1.0 / config.mean_burst)
            while t < horizon:
                rate = burst if bursting else idle
                if rate <= 0:
                    t = phase_end
                else:
                    t += rng.expovariate(rate)
                    if t <= min(phase_end, horizon):
                        yield t
                if t >= phase_end:
                    bursting = not bursting
                    mean = (
                        config.mean_burst if bursting else config.mean_idle
                    )
                    phase_end = t + rng.expovariate(1.0 / mean)

    def arrivals(self, limit: Optional[int] = None) -> Iterator[Arrival]:
        """Lazily yield :class:`Arrival` records in time order.

        Re-calling restarts the deterministic stream from arrival 0.
        Memory is O(1): the generator owns two RNGs and a handful of
        scalars regardless of ``users``/``tenants``/stream length.
        """
        config = self.config
        entity_rng = random.Random(derive_seed(self.seed, "traffic:entities"))
        mix = config.mix
        mix_cdf = self._mix_cdf
        span = self._user_span
        for index, t in enumerate(self._times()):
            if limit is not None and index >= limit:
                return
            tenant_idx = _zipf_index(
                entity_rng.random(), config.tenant_skew, config.tenants
            )
            user_idx = _zipf_index(
                entity_rng.random(), config.user_skew, span
            )
            pick = entity_rng.random()
            choice = mix[-1]
            for cut, entry in zip(mix_cdf, mix):
                if pick <= cut:
                    choice = entry
                    break
            yield Arrival(
                index=index,
                time=t,
                tenant=f"t{tenant_idx}",
                user=f"u{tenant_idx * span + user_idx}",
                model=choice.model,
                batch_size=choice.batch_size,
                slo=choice.slo,
                priority=choice.priority,
            )

    def entries(self) -> List[Tuple[str, int]]:
        """Sorted (model, batch) pairs — what a serving stack must load."""
        return sorted({(m.model, m.batch_size) for m in self.config.mix})


# ----------------------------------------------------------------------
# Open-loop driver
# ----------------------------------------------------------------------


@dataclass
class TrafficStats:
    """Counters filled in while :func:`drive`'s processes run."""

    offered: int = 0
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    deferred: int = 0
    degraded: int = 0
    latencies: List[float] = field(default_factory=list)
    reject_reasons: dict = field(default_factory=dict)

    def note_reject(self, reason: str) -> None:
        self.rejected += 1
        self.reject_reasons[reason] = self.reject_reasons.get(reason, 0) + 1


def drive(
    sim: Simulator,
    server: Any,
    engine: TrafficEngine,
    gate: Any = None,
    stats: Optional[TrafficStats] = None,
    offset: float = 0.0,
    skip: Any = (),
    limit: Optional[int] = None,
    on_admitted: Optional[Callable[[Arrival, Any], None]] = None,
    on_outcome: Optional[Callable[[Arrival, Any, str], None]] = None,
) -> TrafficStats:
    """Stream ``engine``'s arrivals into ``server`` as an open loop.

    ``gate`` is an optional admission gate (anything with
    ``submit(job, tenant=..., slo=...) -> decision`` returning an
    object with ``action``/``reason``/``job``/``done``); without one,
    jobs go straight to ``server.submit``.  ``offset`` shifts the
    stream for a restarted incarnation: arrivals earlier than it are
    regenerated but not replayed, and the sim clock (restarted at 0)
    maps to stream time ``sim.now + offset``.  ``skip`` holds request
    ids already handled by a previous incarnation (the journal's
    admitted set), so a boundary arrival is never double-submitted.
    ``on_admitted``/``on_outcome`` are the journaling hooks.

    The caller runs ``sim.run()`` (or ``sim.run(until=...)``) after.
    """
    stats = stats if stats is not None else TrafficStats()
    skip_ids = frozenset(skip)

    def track(arrival: Arrival, job: Any, done: Any):
        submitted = sim.now
        try:
            yield done
        except Exception as exc:  # lint: disable=ROB001 — recorded as the
            # request's terminal outcome and surfaced via on_outcome.
            stats.failed += 1
            if on_outcome is not None:
                on_outcome(arrival, exc, "failed")
            return
        stats.completed += 1
        stats.latencies.append(sim.now - submitted)
        if on_outcome is not None:
            on_outcome(arrival, job, "completed")

    def pump():
        for arrival in engine.arrivals(limit=limit):
            if arrival.time < offset or arrival.request_id in skip_ids:
                continue
            delay = (arrival.time - offset) - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            stats.offered += 1
            job = server.make_job(
                arrival.user,
                arrival.model,
                arrival.batch_size,
                priority=arrival.priority,
            )
            job.job_id = arrival.request_id
            if arrival.slo is not None:
                job.deadline = sim.now + arrival.slo
            if gate is None:
                done = server.submit(job)
                stats.submitted += 1
                if on_admitted is not None:
                    on_admitted(arrival, job)
                sim.process(track(arrival, job, done))
                continue
            decision = gate.submit(
                job, tenant=arrival.tenant, slo=arrival.slo
            )
            if decision.action == "reject":
                stats.note_reject(decision.reason)
                if on_outcome is not None:
                    on_outcome(arrival, job, f"rejected:{decision.reason}")
                continue
            if decision.action == "defer":
                stats.deferred += 1
            elif decision.action == "degrade":
                stats.degraded += 1
            stats.submitted += 1
            if on_admitted is not None:
                on_admitted(arrival, decision.job)
            sim.process(track(arrival, decision.job, decision.done))

    sim.process(pump(), name="traffic-pump")
    return stats
