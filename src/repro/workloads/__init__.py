"""Workload construction: scenarios and arrival patterns."""

from .generators import (
    bursty_think_times,
    poisson_arrivals,
    simultaneous,
    staggered,
)
from .trace import (
    ReplayOutcome,
    RequestTrace,
    TraceRequest,
    bursty_trace,
    diurnal_trace,
    poisson_trace,
    replay,
)
from .scenarios import (
    DEFAULT_NUM_BATCHES,
    ClientSpec,
    complex_workload,
    heterogeneous_workload,
    homogeneous_workload,
    scaling_workload,
    with_priorities,
    with_weights,
)

__all__ = [
    "bursty_think_times",
    "poisson_arrivals",
    "simultaneous",
    "staggered",
    "DEFAULT_NUM_BATCHES",
    "ClientSpec",
    "complex_workload",
    "heterogeneous_workload",
    "homogeneous_workload",
    "scaling_workload",
    "with_priorities",
    "with_weights",
    "ReplayOutcome",
    "RequestTrace",
    "TraceRequest",
    "bursty_trace",
    "diurnal_trace",
    "poisson_trace",
    "replay",
]
