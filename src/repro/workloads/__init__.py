"""Workload construction: scenarios and arrival patterns."""

from .generators import (
    bursty_think_times,
    poisson_arrivals,
    simultaneous,
    staggered,
)
from .trace import (
    ReplayOutcome,
    RequestTrace,
    TraceRequest,
    bursty_trace,
    diurnal_trace,
    iter_bursty,
    iter_diurnal,
    iter_poisson,
    poisson_trace,
    replay,
)
from .traffic import (
    Arrival,
    ModelMix,
    TrafficConfig,
    TrafficEngine,
    TrafficStats,
    drive,
)
from .scenarios import (
    DEFAULT_NUM_BATCHES,
    ClientSpec,
    complex_workload,
    heterogeneous_workload,
    homogeneous_workload,
    scaling_workload,
    with_priorities,
    with_weights,
)

__all__ = [
    "bursty_think_times",
    "poisson_arrivals",
    "simultaneous",
    "staggered",
    "DEFAULT_NUM_BATCHES",
    "ClientSpec",
    "complex_workload",
    "heterogeneous_workload",
    "homogeneous_workload",
    "scaling_workload",
    "with_priorities",
    "with_weights",
    "ReplayOutcome",
    "RequestTrace",
    "TraceRequest",
    "bursty_trace",
    "diurnal_trace",
    "iter_bursty",
    "iter_diurnal",
    "iter_poisson",
    "poisson_trace",
    "replay",
    "Arrival",
    "ModelMix",
    "TrafficConfig",
    "TrafficEngine",
    "TrafficStats",
    "drive",
]
