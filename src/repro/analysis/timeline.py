"""Text-mode timeline and histogram rendering.

Terminal-friendly views of a run: a gantt chart of which job occupied
the GPU when (the Figure 9 picture), and histograms of per-quantum
durations (the Figure 12 picture).  Useful in examples, notebooks, and
failure triage without leaving the shell.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..gpu.device import GPU_GLOBAL_KEY
from ..serving.server import ModelServer

__all__ = ["render_gantt", "render_histogram"]


def render_gantt(
    server: ModelServer,
    window: Tuple[float, float],
    width: int = 80,
    max_rows: int = 12,
) -> str:
    """ASCII gantt of per-job GPU occupancy over ``window``.

    Each row is one job; a ``#`` cell means the job's kernels were
    running for the majority of that time slice, ``-`` means partially,
    space means idle.
    """
    lo, hi = window
    if hi <= lo:
        raise ValueError("window must have positive length")
    if width < 10:
        raise ValueError(f"width too small: {width}")
    jobs = [key for key in server.tracer.keys() if key != GPU_GLOBAL_KEY]
    jobs = jobs[:max_rows]
    if not jobs:
        return "(no GPU activity recorded)"
    slot = (hi - lo) / width
    label_width = max(len(str(job)) for job in jobs)
    lines = []
    for job in jobs:
        cells = []
        for i in range(width):
            cell_lo = lo + i * slot
            cell_hi = cell_lo + slot
            busy = server.tracer.duration_between(job, cell_lo, cell_hi)
            if busy >= 0.5 * slot:
                cells.append("#")
            elif busy > 0:
                cells.append("-")
            else:
                cells.append(" ")
        lines.append(f"{str(job).rjust(label_width)} |{''.join(cells)}|")
    header = (
        f"{' ' * label_width} +{'-' * width}+  "
        f"[{lo * 1e3:.1f} ms .. {hi * 1e3:.1f} ms]"
    )
    return "\n".join([header] + lines)


def render_histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 50,
    unit: float = 1e-6,
    unit_label: str = "us",
) -> str:
    """ASCII histogram of ``values`` (durations by default, in us)."""
    if not values:
        raise ValueError("histogram of empty sequence")
    if bins < 1:
        raise ValueError(f"bins must be >= 1: {bins}")
    lo = min(values)
    hi = max(values)
    if hi == lo:
        hi = lo + max(abs(lo), 1e-12)
    span = (hi - lo) / bins
    counts = [0] * bins
    for value in values:
        index = min(int((value - lo) / span), bins - 1)
        counts[index] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        bin_lo = (lo + i * span) / unit
        bin_hi = (lo + (i + 1) * span) / unit
        bar = "#" * (round(width * count / peak) if peak else 0)
        lines.append(
            f"{bin_lo:9.1f}-{bin_hi:9.1f} {unit_label} | "
            f"{bar.ljust(width)} {count}"
        )
    return "\n".join(lines)
