"""Blame profiles: aggregate latency attribution for a whole run.

Builds on :mod:`repro.telemetry.attribution` (per-request exact
decompositions) and aggregates them per scheduler kind into a *blame
profile* — which component of the serving stack the end-to-end latency
went to, who blocked whom, and where the tail lives.  Three export
shapes:

* a JSON report (``validate_blame_report`` in the telemetry schema),
* folded stacks (``scheduler;model;component weight_us``) for standard
  flamegraph tooling,
* Chrome-trace annotation events (an extra ``blame`` process whose rows
  show each request's latency partitioned into component slices).

Failed, cancelled and truncated attempts are reclassified wholly into
the ``overhead`` component — their time bought no answer — while
successful retry/failover clones keep their decomposition (they are the
serving work that did succeed) and are counted separately.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Union

from ..telemetry.attribution import (
    COMPONENTS,
    RequestAttribution,
    attribute_tracer,
)

__all__ = [
    "BLAME_SCHEMA_VERSION",
    "blame_report",
    "blame_report_for_result",
    "exact_percentile",
    "folded_stacks",
    "write_folded",
    "blame_trace_events",
]

BLAME_SCHEMA_VERSION = 1

_BLAME_PID = 4
_TOP_BLOCKERS = 10


def exact_percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile over raw values (deterministic)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _e2e_stats(values: Sequence[float]) -> Dict[str, float]:
    total = sum(values)
    return {
        "total": total,
        "mean": total / len(values) if values else 0.0,
        "p50": exact_percentile(values, 50),
        "p95": exact_percentile(values, 95),
        "p99": exact_percentile(values, 99),
    }


def blame_report(
    attributions: Iterable[RequestAttribution],
    scheduler: str,
    include_requests: bool = True,
) -> Dict[str, Any]:
    """Aggregate per-request attributions into the blame-profile report."""
    attributions = list(attributions)
    served = [a for a in attributions if a.status == "ok"]
    wasted = [a for a in attributions if a.status != "ok"]

    totals = dict.fromkeys(COMPONENTS, 0.0)
    for a in served:
        for name in COMPONENTS:
            totals[name] += a.components[name]
    for a in wasted:
        totals["overhead"] += a.e2e

    grand_total = sum(totals.values())
    components = {
        name: {
            "total": totals[name],
            "mean": totals[name] / len(served) if served else 0.0,
            "share": totals[name] / grand_total if grand_total > 0 else 0.0,
        }
        for name in COMPONENTS
    }

    model_of = {a.job_id: a.model for a in attributions}
    blocker_seconds: Dict[str, float] = {}
    for a in served:
        for job_id, seconds in a.blockers.items():
            blocker_seconds[job_id] = blocker_seconds.get(job_id, 0.0) + seconds
    blockers = [
        {
            "job_id": job_id,
            "model": model_of.get(job_id),
            "seconds": seconds,
        }
        for job_id, seconds in sorted(
            blocker_seconds.items(), key=lambda kv: (-kv[1], kv[0])
        )[:_TOP_BLOCKERS]
    ]

    report: Dict[str, Any] = {
        "schema": BLAME_SCHEMA_VERSION,
        "scheduler": scheduler,
        "num_requests": len(attributions),
        "num_served": len(served),
        "num_retries": sum(1 for a in attributions if a.is_retry),
        "num_failovers": sum(1 for a in attributions if a.is_failover),
        "e2e": _e2e_stats([a.e2e for a in served]),
        "components": components,
        "blockers": blockers,
    }
    if include_requests:
        report["requests"] = [a.to_dict() for a in attributions]
    return report


def blame_report_for_result(result, include_requests: bool = True) -> Dict[str, Any]:
    """Blame report straight from an ExperimentResult with span telemetry."""
    telemetry = result.telemetry
    tracer = getattr(telemetry, "tracer", None) if telemetry else None
    if tracer is None:
        raise ValueError(
            "blame needs span telemetry: run with "
            "TelemetryConfig(verbosity='spans' or 'full')"
        )
    return blame_report(
        attribute_tracer(tracer),
        scheduler=result.scheduler_kind,
        include_requests=include_requests,
    )


def folded_stacks(
    attributions: Iterable[RequestAttribution], scheduler: str
) -> List[str]:
    """Folded-stack lines (``frame;frame;frame weight``) in microseconds.

    Frames are ``scheduler;model;component``; weights are integer
    microseconds, aggregated over served requests, suitable for any
    flamegraph renderer.  Wasted attempts fold under an ``overhead``
    frame so retry storms are visible at a glance.
    """
    weights: Dict[str, float] = {}
    for a in attributions:
        if a.status != "ok":
            key = f"{scheduler};{a.model};overhead"
            weights[key] = weights.get(key, 0.0) + a.e2e
            continue
        for name in COMPONENTS:
            value = a.components[name]
            if value > 0.0:
                key = f"{scheduler};{a.model};{name}"
                weights[key] = weights.get(key, 0.0) + value
    lines = [
        f"{key} {int(round(value * 1e6))}"
        for key, value in sorted(weights.items())
        if int(round(value * 1e6)) > 0
    ]
    return lines


def write_folded(
    path: Union[str, Path],
    attributions: Iterable[RequestAttribution],
    scheduler: str,
) -> int:
    """Write folded stacks to ``path``; returns the line count."""
    lines = folded_stacks(attributions, scheduler)
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def blame_trace_events(
    attributions: Iterable[RequestAttribution],
) -> List[Dict[str, Any]]:
    """Chrome-trace annotation events: one row per request, one slice
    per latency component, laid out sequentially across the request's
    window so slice widths read as the blame decomposition.

    Appended to :func:`repro.analysis.build_trace_events` output they
    add a ``latency blame`` process alongside the GPU/scheduler/request
    tracks; the result still passes ``validate_chrome_trace``.
    """
    attributions = list(attributions)
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _BLAME_PID,
            "args": {"name": "latency blame"},
        }
    ]
    for tid, a in enumerate(
        sorted(attributions, key=lambda a: (a.start, a.job_id)), start=1
    ):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _BLAME_PID,
                "tid": tid,
                "args": {"name": f"req {a.job_id}"},
            }
        )
        cursor = a.start
        for name in COMPONENTS:
            value = a.components[name]
            if value <= 0.0:
                continue
            events.append(
                {
                    "name": name,
                    "cat": "blame",
                    "ph": "X",
                    "pid": _BLAME_PID,
                    "tid": tid,
                    "ts": cursor * 1e6,
                    "dur": value * 1e6,
                    "args": {
                        "job": a.job_id,
                        "model": a.model,
                        "seconds": value,
                    },
                }
            )
            cursor += value
    return events
