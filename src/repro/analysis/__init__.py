"""Run analysis: Chrome-trace export and text-mode timelines."""

from .chrome_trace import build_trace_events, export_chrome_trace
from .summary import summarize_run
from .timeline import render_gantt, render_histogram

__all__ = [
    "build_trace_events",
    "export_chrome_trace",
    "render_gantt",
    "render_histogram",
    "summarize_run",
]
