"""Run analysis: Chrome-trace export, latency blame, text timelines."""

from .blame import (
    blame_report,
    blame_report_for_result,
    blame_trace_events,
    exact_percentile,
    folded_stacks,
    write_folded,
)
from .chrome_trace import build_trace_events, export_chrome_trace
from .summary import summarize_run
from .timeline import render_gantt, render_histogram

__all__ = [
    "blame_report",
    "blame_report_for_result",
    "blame_trace_events",
    "build_trace_events",
    "exact_percentile",
    "export_chrome_trace",
    "folded_stacks",
    "render_gantt",
    "render_histogram",
    "summarize_run",
    "write_folded",
]
