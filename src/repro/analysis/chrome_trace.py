"""Chrome trace-event export.

Serialises a run's GPU busy intervals and scheduler tenures into the
Chrome trace-event JSON format, viewable in ``chrome://tracing`` or
Perfetto.  This is the visual counterpart of the paper's Figure 5/9
timelines: one row per job on the GPU track, plus a scheduler track
showing token tenures, so quantum boundaries and overflow kernels are
directly visible.

With ``flows=True`` the export adds flow events (``ph: "s"/"t"/"f"``)
tying each request's arrival slice to its token tenures and on to its
last kernel, so Perfetto draws causal arrows across the three tracks
instead of just bars.

Times are exported in microseconds (the trace-event convention).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..core.scheduler import GangScheduler
from ..gpu.device import GPU_GLOBAL_KEY
from ..serving.server import ModelServer

__all__ = ["build_trace_events", "export_chrome_trace"]

_PathLike = Union[str, Path]

_GPU_PID = 1
_SCHED_PID = 2
_REQ_PID = 3

# Width of the synthetic "arrival" slice flows start from, in us; long
# enough for trace viewers to hit-test, short against any real span.
_ARRIVAL_SLICE_US = 1.0


def build_trace_events(
    server: ModelServer,
    scheduler: Optional[GangScheduler] = None,
    window: Optional[tuple] = None,
    flows: bool = False,
) -> List[Dict[str, Any]]:
    """Build the trace-event list (``X``-phase complete events).

    ``flows=True`` appends a request track (one arrival slice per
    completed job) and flow events linking arrival → tenures → last
    kernel for every job.
    """
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _GPU_PID,
            "args": {"name": f"GPU ({server.config.gpu_spec.name})"},
        },
    ]
    # One tid per job on the GPU process, stable by first appearance.
    tids: Dict[str, int] = {}

    def tid_for(job_id: str) -> int:
        if job_id not in tids:
            tids[job_id] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _GPU_PID,
                    "tid": tids[job_id],
                    "args": {"name": f"job {job_id}"},
                }
            )
        return tids[job_id]

    lo, hi = window if window is not None else (float("-inf"), float("inf"))
    # Per-job intervals are recorded under the job key with the node id
    # as tag; the aggregate track duplicates them and is skipped.
    for key in server.tracer.keys():
        if key == GPU_GLOBAL_KEY:
            continue
        for interval in server.tracer.intervals(key):
            if interval.end < lo or interval.start > hi:
                continue
            events.append(
                {
                    "name": f"node {interval.tag}",
                    "cat": "kernel",
                    "ph": "X",
                    "pid": _GPU_PID,
                    "tid": tid_for(str(key)),
                    "ts": interval.start * 1e6,
                    "dur": interval.duration * 1e6,
                    "args": {"job": str(key), "node": interval.tag},
                }
            )

    if scheduler is not None:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": _SCHED_PID,
                "args": {"name": f"Olympian scheduler ({scheduler.name})"},
            }
        )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _SCHED_PID,
                "tid": 1,
                "args": {"name": "token holder"},
            }
        )
        for tenure in scheduler.closed_tenures():
            if tenure.end is None or tenure.end < lo or tenure.start > hi:
                continue
            events.append(
                {
                    "name": f"{tenure.client_id}",
                    "cat": "tenure",
                    "ph": "X",
                    "pid": _SCHED_PID,
                    "tid": 1,
                    "ts": tenure.start * 1e6,
                    "dur": (tenure.end - tenure.start) * 1e6,
                    "args": {
                        "job": tenure.job_id,
                        "model": tenure.model_name,
                    },
                }
            )
    if flows:
        events.extend(
            _build_flow_events(server, scheduler, tid_for, lo, hi)
        )
    return events


def _build_flow_events(
    server: ModelServer,
    scheduler: Optional[GangScheduler],
    tid_for,
    lo: float,
    hi: float,
) -> List[Dict[str, Any]]:
    """Arrival slices + ``s``/``t``/``f`` flow chains, one per job."""
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _REQ_PID,
            "args": {"name": "requests"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _REQ_PID,
            "tid": 1,
            "args": {"name": "arrivals"},
        },
    ]
    tenures_of: Dict[str, List[Any]] = {}
    if scheduler is not None:
        for tenure in scheduler.closed_tenures():
            if tenure.end is None or tenure.end < lo or tenure.start > hi:
                continue
            tenures_of.setdefault(tenure.job_id, []).append(tenure)
    # Stable flow ids: jobs ordered by submission time, then id.
    jobs = [
        job
        for job in server.completed_jobs
        if job.submitted_at is not None
        and lo <= job.submitted_at <= hi
    ]
    jobs.sort(key=lambda job: (job.submitted_at, str(job.job_id)))
    for flow_id, job in enumerate(jobs, start=1):
        job_id = str(job.job_id)
        arrival_ts = job.submitted_at * 1e6
        events.append(
            {
                "name": f"arrival {job_id}",
                "cat": "request",
                "ph": "X",
                "pid": _REQ_PID,
                "tid": 1,
                "ts": arrival_ts,
                "dur": _ARRIVAL_SLICE_US,
                "args": {"job": job_id, "model": job.model_name},
            }
        )
        events.append(
            {
                "name": "request",
                "cat": "flow",
                "ph": "s",
                "id": flow_id,
                "pid": _REQ_PID,
                "tid": 1,
                "ts": arrival_ts,
                "args": {"job": job_id},
            }
        )
        last_pid, last_tid, last_ts = _REQ_PID, 1, arrival_ts
        for tenure in tenures_of.get(job.job_id, ()):
            ts = tenure.start * 1e6
            events.append(
                {
                    "name": "request",
                    "cat": "flow",
                    "ph": "t",
                    "id": flow_id,
                    "pid": _SCHED_PID,
                    "tid": 1,
                    "ts": ts,
                    "args": {"job": job_id},
                }
            )
            last_pid, last_tid, last_ts = _SCHED_PID, 1, ts
        kernel_intervals = [
            interval
            for interval in server.tracer.intervals(job.job_id)
            if not (interval.end < lo or interval.start > hi)
        ]
        if kernel_intervals:
            last = kernel_intervals[-1]
            last_pid = _GPU_PID
            last_tid = tid_for(job_id)
            last_ts = last.start * 1e6
        # ``bp: "e"`` binds the finish to the slice enclosing ts, which
        # is how the arrow lands on the kernel bar itself.
        events.append(
            {
                "name": "request",
                "cat": "flow",
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                "pid": last_pid,
                "tid": last_tid,
                "ts": last_ts,
                "args": {"job": job_id},
            }
        )
    return events


def export_chrome_trace(
    server: ModelServer,
    path: _PathLike,
    scheduler: Optional[GangScheduler] = None,
    window: Optional[tuple] = None,
    flows: bool = False,
) -> int:
    """Write a Chrome trace JSON file; returns the event count."""
    events = build_trace_events(
        server, scheduler=scheduler, window=window, flows=flows
    )
    Path(path).write_text(
        json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})
    )
    return len(events)
