"""Chrome trace-event export.

Serialises a run's GPU busy intervals and scheduler tenures into the
Chrome trace-event JSON format, viewable in ``chrome://tracing`` or
Perfetto.  This is the visual counterpart of the paper's Figure 5/9
timelines: one row per job on the GPU track, plus a scheduler track
showing token tenures, so quantum boundaries and overflow kernels are
directly visible.

Times are exported in microseconds (the trace-event convention).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..core.scheduler import GangScheduler
from ..gpu.device import GPU_GLOBAL_KEY
from ..serving.server import ModelServer

__all__ = ["build_trace_events", "export_chrome_trace"]

_PathLike = Union[str, Path]

_GPU_PID = 1
_SCHED_PID = 2


def build_trace_events(
    server: ModelServer,
    scheduler: Optional[GangScheduler] = None,
    window: Optional[tuple] = None,
) -> List[Dict[str, Any]]:
    """Build the trace-event list (``X``-phase complete events)."""
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _GPU_PID,
            "args": {"name": f"GPU ({server.config.gpu_spec.name})"},
        },
    ]
    # One tid per job on the GPU process, stable by first appearance.
    tids: Dict[str, int] = {}

    def tid_for(job_id: str) -> int:
        if job_id not in tids:
            tids[job_id] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _GPU_PID,
                    "tid": tids[job_id],
                    "args": {"name": f"job {job_id}"},
                }
            )
        return tids[job_id]

    lo, hi = window if window is not None else (float("-inf"), float("inf"))
    # Per-job intervals are recorded under the job key with the node id
    # as tag; the aggregate track duplicates them and is skipped.
    for key in server.tracer.keys():
        if key == GPU_GLOBAL_KEY:
            continue
        for interval in server.tracer.intervals(key):
            if interval.end < lo or interval.start > hi:
                continue
            events.append(
                {
                    "name": f"node {interval.tag}",
                    "cat": "kernel",
                    "ph": "X",
                    "pid": _GPU_PID,
                    "tid": tid_for(str(key)),
                    "ts": interval.start * 1e6,
                    "dur": interval.duration * 1e6,
                    "args": {"job": str(key), "node": interval.tag},
                }
            )

    if scheduler is not None:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": _SCHED_PID,
                "args": {"name": f"Olympian scheduler ({scheduler.name})"},
            }
        )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _SCHED_PID,
                "tid": 1,
                "args": {"name": "token holder"},
            }
        )
        for tenure in scheduler.closed_tenures():
            if tenure.end is None or tenure.end < lo or tenure.start > hi:
                continue
            events.append(
                {
                    "name": f"{tenure.client_id}",
                    "cat": "tenure",
                    "ph": "X",
                    "pid": _SCHED_PID,
                    "tid": 1,
                    "ts": tenure.start * 1e6,
                    "dur": (tenure.end - tenure.start) * 1e6,
                    "args": {
                        "job": tenure.job_id,
                        "model": tenure.model_name,
                    },
                }
            )
    return events


def export_chrome_trace(
    server: ModelServer,
    path: _PathLike,
    scheduler: Optional[GangScheduler] = None,
    window: Optional[tuple] = None,
) -> int:
    """Write a Chrome trace JSON file; returns the event count."""
    events = build_trace_events(server, scheduler=scheduler, window=window)
    Path(path).write_text(
        json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})
    )
    return len(events)
