"""One-call run summaries.

``summarize_run`` turns an :class:`~repro.experiments.runner.ExperimentResult`
into a single comprehensive text report — finish times, GPU shares,
quantum statistics, scheduling intervals, utilization — the first thing
to look at when a serving run behaves unexpectedly.
"""

from __future__ import annotations

from typing import List

from ..experiments.runner import ExperimentResult
from ..metrics import stats
from ..metrics.report import (
    format_ms,
    format_percent,
    format_seconds,
    format_us,
    render_table,
)

__all__ = ["summarize_run"]


def summarize_run(result: ExperimentResult) -> str:
    """Render a full text summary of one experiment run."""
    sections: List[str] = []

    header = (
        f"run summary: scheduler={result.scheduler_kind}, "
        f"clients={len(result.clients)}, scale={result.config.scale}"
    )
    if result.quantum is not None:
        header += f", Q={format_us(result.quantum)}"
    sections.append(header)

    finish = result.finish_times
    rows = [
        [cid, format_seconds(t, 3)] for cid, t in sorted(finish.items())
    ]
    values = list(finish.values())
    rows.append(["spread", f"{stats.spread_ratio(values):.3f}x"])
    sections.append(render_table(["client", "finish"], rows,
                                 title="finish times"))

    shares = result.client_gpu_durations()
    rows = [
        [cid, format_seconds(s, 3)] for cid, s in sorted(shares.items())
    ]
    rows.append(["Jain index", f"{stats.jain_index(list(shares.values())):.4f}"])
    sections.append(render_table(["client", "GPU time"], rows,
                                 title="GPU shares"))

    if result.scheduler is not None:
        quanta = [
            value
            for values in result.quantum_gpu_durations().values()
            for value in values
        ]
        intervals = result.scheduling_intervals()
        rows = [
            ["quanta observed", str(len(quanta))],
            ["mean quantum GPU duration", format_us(stats.mean(quanta))],
            ["quantum rel. std", format_percent(stats.relative_stddev(quanta))],
            ["mean scheduling interval", format_ms(stats.mean(intervals))],
            ["token switches", str(result.scheduler.switch_count)],
        ]
        sections.append(render_table(["metric", "value"], rows,
                                     title="scheduler"))

    sections.append(
        f"GPU utilization over the serving window: "
        f"{format_percent(result.utilization())}"
    )
    return "\n\n".join(sections)
