"""Discrete-event simulation kernel.

This module is the substrate for every other subsystem in the
reproduction.  It implements a small, deterministic, SimPy-style
process-based simulator:

* :class:`Simulator` owns the virtual clock and the event queue.
* :class:`Event` is a one-shot occurrence that processes can wait on.
* :class:`Process` wraps a Python generator; the generator *yields*
  events (or other processes) and is resumed when they fire.
* :class:`Timeout` is an event that fires after a fixed delay.

All times are floats in **simulated seconds**.  The kernel is fully
deterministic: ties in the event queue are broken by insertion order, so
two runs of the same program produce identical schedules.

Performance
-----------
The kernel is the hottest code in the repository (a single Figure 16
replication pumps ~2.5 million events through it), so the dominant
cycle — create a :class:`Timeout`, pop it off the heap, dispatch its
callbacks, resume the waiting :class:`Process` — is hand-flattened:

* :meth:`Simulator.run` inlines the pop/advance/dispatch sequence
  instead of calling :meth:`Simulator.step` and ``Event._fire`` per
  event.  This is only sound because ``_fire``'s body is fixed;
  :class:`Event` therefore *forbids* subclasses from overriding it
  (enforced in ``__init_subclass__``).
* :class:`Timeout` construction and :meth:`Event.succeed` /
  :meth:`Event.fail` schedule directly onto the heap — a freshly
  triggered event can never already be queued, so the double-schedule
  guard in ``_schedule`` is statically unnecessary on those paths.
* :class:`Process` caches its bound ``_resume`` callback (one bound
  method per process instead of one per resumed event).

:meth:`Simulator.run_reference` keeps the naive ``step()`` loop alive
as an oracle; ``tests/sim/test_core.py`` asserts both loops produce
identical traces.  ``python -m repro bench`` guards the throughput.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker("a", 2.0))
>>> _ = sim.process(worker("b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Simulator",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "no value yet" from a triggered None value.
_PENDING = object()


class Event:
    """A one-shot occurrence that processes may wait on.

    An event starts *untriggered*.  Calling :meth:`succeed` (or
    :meth:`fail`) triggers it, schedules it on the simulator queue, and
    eventually runs its callbacks — resuming any process that yielded it.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_scheduled")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._exc: Optional[BaseException] = None
        self._scheduled = False

    def __init_subclass__(cls, **kwargs):
        # Simulator.run() dispatches callbacks inline (the body of
        # ``_fire``) without a per-event virtual call; an override would
        # silently be skipped on the fast path.
        if "_fire" in cls.__dict__:
            raise TypeError(
                f"{cls.__name__} must not override Event._fire: the "
                "simulator's fast path dispatches callbacks inline"
            )
        super().__init_subclass__(**kwargs)

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired yet)."""
        return self._value is not _PENDING or self._exc is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event with ``value`` at the current sim time."""
        if self._value is not _PENDING or self._exc is not None:
            raise SimulationError("event already triggered")
        self._value = value
        # An untriggered event is never on the queue, so schedule
        # directly (the _schedule double-schedule guard cannot fire).
        self._scheduled = True
        sim = self.sim
        heappush(sim._queue, (sim._now, sim._sequence, self))
        sim._sequence += 1
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on the event has ``exc`` raised at its yield
        point.
        """
        if self._value is not _PENDING or self._exc is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._exc = exc
        self._value = None
        self._scheduled = True
        sim = self.sim
        heappush(sim._queue, (sim._now, sim._sequence, self))
        sim._sequence += 1
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event has already been processed the callback runs
        immediately.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _fire(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        # Flattened Event.__init__ + _schedule: a fresh timeout cannot
        # already be queued, and the super().__init__ call is pure
        # overhead on the dominant event path.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._exc = None
        self._scheduled = True
        self.delay = delay
        heappush(sim._queue, (sim._now + delay, sim._sequence, self))
        sim._sequence += 1


class Process(Event):
    """A running simulation process.

    Wraps a generator that yields :class:`Event` instances.  The process
    itself is an event that fires with the generator's return value, so
    processes can wait for one another by yielding them.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_bound_resume")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator)!r}"
            )
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        resume = self._bound_resume = self._resume
        # Kick off the generator at the current time.
        bootstrap = Event(sim)
        bootstrap._value = None
        bootstrap._scheduled = True
        bootstrap.callbacks.append(resume)
        heappush(sim._queue, (sim._now, sim._sequence, bootstrap))
        sim._sequence += 1

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self.triggered:
            return
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            # Detach from whatever the process was waiting on.
            try:
                target.callbacks.remove(self._bound_resume)
            except ValueError:
                pass
        self._waiting_on = None
        wakeup = Event(self.sim)
        wakeup._exc = Interrupt(cause)
        wakeup._value = None
        self.sim._schedule(wakeup, 0.0)
        wakeup.add_callback(self._bound_resume)

    def _resume(self, event: Event) -> None:
        if self._value is not _PENDING or self._exc is not None:
            return  # already terminated
        self._waiting_on = None
        sim = self.sim
        sim._active_process = self
        try:
            if event._exc is not None:
                target = self.generator.throw(event._exc)
            else:
                target = self.generator.send(event._value)
        except StopIteration as stop:
            self._value = stop.value
            self._scheduled = True
            heappush(sim._queue, (sim._now, sim._sequence, self))
            sim._sequence += 1
            return
        except Interrupt as exc:
            # An un-caught interrupt terminates the process cleanly.
            self._exc = exc
            self._value = None
            self.sim._schedule(self, 0.0)
            return
        finally:
            sim._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; "
                "processes must yield Event instances"
            )
        if target.sim is not sim:
            raise SimulationError("yielded event belongs to another simulator")
        self._waiting_on = target
        callbacks = target.callbacks
        if callbacks is None:
            # Already processed: resume immediately (add_callback
            # semantics, without the extra call).
            self._bound_resume(target)
        else:
            callbacks.append(self._bound_resume)


class AnyOf(Event):
    """Fires when any of the given events fires.

    The value is a dict mapping each fired event to its value.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            self._value = {}
            sim._schedule(self, 0.0)
            return
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            # Fail fast: a failed constituent fails the combinator.
            self._exc = event._exc
            self._value = None
            self.sim._schedule(self, 0.0)
            return
        self._value = {
            e: e._value for e in self.events if e.processed
        }
        self.sim._schedule(self, 0.0)


class AllOf(Event):
    """Fires when all of the given events have fired."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self._value = {}
            sim._schedule(self, 0.0)
            return
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            # Fail fast: a failed constituent fails the combinator.
            self._exc = event._exc
            self._value = None
            self.sim._schedule(self, 0.0)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self._value = {e: e._value for e in self.events}
            self.sim._schedule(self, 0.0)


class Simulator:
    """The simulation environment: virtual clock plus event queue."""

    def __init__(self):
        self._now = 0.0
        self._queue: List = []
        self._sequence = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling / running
    # ------------------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        if event._scheduled:
            raise SimulationError("event scheduled twice")
        event._scheduled = True
        heappush(self._queue, (self._now + delay, self._sequence, event))
        self._sequence += 1

    def step(self) -> None:
        """Process the next event on the queue.

        Raises :class:`SimulationError` when the queue is empty — an
        explicit contract instead of a bare ``IndexError`` from the
        heap.
        """
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = heappop(self._queue)
        self._now = when
        event._fire()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if queue empty."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def run(
        self,
        until: Optional[float] = None,
        max_steps: Optional[int] = None,
    ) -> None:
        """Run until the queue drains or the clock passes ``until``.

        ``max_steps`` is a livelock guard: a bug that schedules
        zero-delay events in a cycle never drains the queue and never
        advances the clock, so neither stop condition can trigger.
        When set, the run aborts with :class:`SimulationError` after
        that many events.

        The loop body is the fast path: it inlines :meth:`step` and the
        callback dispatch of ``Event._fire`` (safe because ``_fire``
        cannot be overridden).  :meth:`run_reference` is the readable
        equivalent; both produce bit-identical schedules.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until!r}) is in the past (now={self._now!r})"
            )
        queue = self._queue
        if max_steps is not None:
            self._run_guarded(until, max_steps)
            return
        if until is None:
            while queue:
                when, _seq, event = heappop(queue)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    for callback in callbacks:
                        callback(event)
            return
        while queue:
            if queue[0][0] > until:
                self._now = until
                return
            when, _seq, event = heappop(queue)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                for callback in callbacks:
                    callback(event)
        self._now = until

    def _run_guarded(self, until: Optional[float], max_steps: int) -> None:
        """The ``max_steps``-counting variant of the run loop."""
        if max_steps < 1:
            raise SimulationError(f"max_steps must be >= 1: {max_steps}")
        queue = self._queue
        steps = 0
        while queue:
            if until is not None and queue[0][0] > until:
                self._now = until
                return
            if steps >= max_steps:
                raise SimulationError(
                    f"run() exceeded max_steps={max_steps} at t={self._now!r}"
                    " — livelock? (zero-delay event cycle keeps the queue"
                    " non-empty without advancing the clock)"
                )
            steps += 1
            when, _seq, event = heappop(queue)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                for callback in callbacks:
                    callback(event)
        if until is not None:
            self._now = until

    def run_reference(self, until: Optional[float] = None) -> None:
        """Reference event loop: the plain ``step()``-per-event version.

        Kept as the oracle for the fast path in :meth:`run` — the
        determinism suite asserts both produce identical trace digests.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until!r}) is in the past (now={self._now!r})"
            )
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until
