"""Discrete-event simulation kernel.

This module is the substrate for every other subsystem in the
reproduction.  It implements a small, deterministic, SimPy-style
process-based simulator:

* :class:`Simulator` owns the virtual clock and the event calendar.
* :class:`Event` is a one-shot occurrence that processes can wait on.
* :class:`Process` wraps a Python generator; the generator *yields*
  events (or other processes) and is resumed when they fire.
* :class:`Timeout` is an event that fires after a fixed delay.

All times are floats in **simulated seconds**.  The kernel is fully
deterministic: ties in the event calendar are broken by insertion
order, so two runs of the same program produce identical schedules.

Performance
-----------
The kernel is the hottest code in the repository (a single Figure 16
replication pumps ~2.5 million events through it), so the clock, the
calendar, and the dispatch loop live in :mod:`repro.sim.wheel` as a
closure nest built once per :class:`Simulator`:

* The calendar is a **bucketed calendar queue** — events sharing a
  deadline share one bucket, and a small heap orders buckets, so a
  same-tick batch of events costs one heap operation instead of one
  per event (see the :mod:`repro.sim.wheel` docstring for the layout,
  the insertion cache, and the adaptive far-list).
* The dominant create-fire-resume cycle recycles :class:`Timeout` and
  :class:`Event` instances through :class:`repro.sim.pool.KernelPools`,
  so a warmed-up run allocates nothing per event.
* ``Simulator.run`` dispatches callbacks inline (the fixed body of
  what ``Event._fire`` used to be).  This is only sound because the
  dispatch sequence is fixed; :class:`Event` therefore *forbids*
  subclasses from defining ``_fire`` (enforced in
  ``__init_subclass__``).

:meth:`Simulator.run_reference` keeps the naive ``step()``-per-event
loop alive as an oracle; ``tests/sim/`` asserts both loops produce
identical traces.  ``python -m repro bench --check`` guards the
throughput and the schedule digests.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker("a", 2.0))
>>> _ = sim.process(worker("b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional, Sequence

from .pool import KernelPools
from .wheel import build_kernel

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Simulator",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "no value yet" from a triggered None value.
_PENDING = object()

# Sentinel stored in an event's callback slot once its callbacks have
# run.  Doubles as the ``processed`` flag — see ``Event._cb`` below.
_PROCESSED = object()


class Event:
    """A one-shot occurrence that processes may wait on.

    An event starts *untriggered*.  Calling :meth:`succeed` (or
    :meth:`fail`) triggers it, schedules it on the simulator calendar,
    and eventually runs its callbacks — resuming any process that
    yielded it.

    Callback storage is a single adaptive slot (``_cb``) instead of an
    always-allocated list: ``None`` (no waiters), a lone callback or
    waiting :class:`Process`, a list of several, or the ``_PROCESSED``
    sentinel once the event has fired.  The common cases — zero or one
    waiter — allocate nothing.
    """

    __slots__ = ("sim", "_cb", "_value", "_exc", "_scheduled")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._cb: Any = None
        self._value: Any = _PENDING
        self._exc: Optional[BaseException] = None
        self._scheduled = False

    def __init_subclass__(cls, **kwargs):
        # Simulator.run() dispatches callbacks inline without a
        # per-event virtual call; an override would silently be skipped
        # on the fast path.
        if "_fire" in cls.__dict__:
            raise TypeError(
                f"{cls.__name__} must not override Event._fire: the "
                "simulator's fast path dispatches callbacks inline"
            )
        super().__init_subclass__(**kwargs)

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired yet)."""
        return self._value is not _PENDING or self._exc is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._cb is _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event with ``value`` at the current sim time."""
        if self._value is not _PENDING or self._exc is not None:
            raise SimulationError("event already triggered")
        self._value = value
        # An untriggered event is never on the calendar, so schedule
        # directly (the _schedule double-schedule guard cannot fire).
        self._scheduled = True
        self.sim._schedule_now(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on the event has ``exc`` raised at its yield
        point.
        """
        if self._value is not _PENDING or self._exc is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._exc = exc
        self._value = None
        self._scheduled = True
        self.sim._schedule_now(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event has already been processed the callback runs
        immediately.
        """
        cb = self._cb
        if cb is _PROCESSED:
            callback(self)
        elif cb is None:
            self._cb = callback
        elif type(cb) is list:
            cb.append(callback)
        else:
            self._cb = [cb, callback]


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation.

    Direct construction is the cold path; ``Simulator.timeout`` is the
    pooled kernel factory and bypasses ``__init__`` entirely.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        # Flattened Event.__init__: a fresh timeout cannot already be
        # queued, so it inserts straight into the calendar.
        self.sim = sim
        self._cb = None
        self._value = value
        self._exc = None
        self._scheduled = True
        self.delay = delay
        sim._insert(self, sim._now + delay)


class _Bootstrap(Event):
    """The kick-off event that starts a freshly created process.

    A distinct type so :meth:`Process.interrupt` can recognise it and
    leave the registration attached: interrupting a process before its
    first resume still *starts* the generator — the interrupt lands at
    its first yield point, where the process can catch it.
    """

    __slots__ = ()


class _Interruption(Event):
    """Wake-up event that carries an :class:`Interrupt` into a process.

    A distinct type because interrupt deliveries are exempt from the
    kernel's stale-resume guard: a process that moved to a new yield
    point between the interrupt call and its delivery must still
    receive the exception (and stacked interrupts must each arrive).
    """

    __slots__ = ()


class Process(Event):
    """A running simulation process.

    Wraps a generator that yields :class:`Event` instances.  The process
    itself is an event that fires with the generator's return value, so
    processes can wait for one another by yielding them.

    ``_waiting_on`` is the identity of the event whose firing should
    resume the process next; the kernel ignores any other (stale)
    registration, except pending :class:`_Interruption` deliveries.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_send", "_throw")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator)!r}"
            )
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._send = generator.send
        self._throw = generator.throw
        # Kick off the generator at the current time.
        bootstrap = _Bootstrap(sim)
        bootstrap._value = None
        bootstrap._scheduled = True
        bootstrap._cb = self
        self._waiting_on: Optional[Event] = bootstrap
        sim._schedule_now(bootstrap)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self.triggered:
            return
        sim = self.sim
        target = self._waiting_on
        if (
            target is not None
            and type(target) is not _Interruption
            and type(target) is not _Bootstrap
            and target._cb is not _PROCESSED
        ):
            # Detach from whatever the process was waiting on.  Pending
            # interruptions stay attached so stacked interrupts each
            # deliver; the bootstrap stays attached so the generator
            # still starts and sees the interrupt at its first yield.
            tcb = target._cb
            if tcb is self:
                target._cb = None
            elif type(tcb) is list:
                try:
                    tcb.remove(self)
                except ValueError:
                    pass
        wakeup = _Interruption(sim)
        wakeup._exc = Interrupt(cause)
        wakeup._value = None
        wakeup._scheduled = True
        wakeup._cb = self
        if type(target) is not _Bootstrap:
            # Pre-start interrupts leave ``_waiting_on`` on the
            # bootstrap: the generator must still start (throwing into
            # a never-started generator raises before any body code
            # runs).  The bootstrap was scheduled first, so it fires
            # first; the interruption queued behind it then reaches
            # the first yield point through the stale-resume
            # exemption, where the process can catch it.
            self._waiting_on = wakeup
        sim._schedule_now(wakeup)


class AnyOf(Event):
    """Fires when any of the given events fires.

    The value is a dict mapping each fired event to its value.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            self._value = {}
            sim._schedule(self, 0.0)
            return
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            # Fail fast: a failed constituent fails the combinator.
            self._exc = event._exc
            self._value = None
            self.sim._schedule(self, 0.0)
            return
        self._value = {
            e: e._value for e in self.events if e.processed
        }
        self.sim._schedule(self, 0.0)


class AllOf(Event):
    """Fires when all of the given events have fired."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self._value = {}
            sim._schedule(self, 0.0)
            return
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            # Fail fast: a failed constituent fails the combinator.
            self._exc = event._exc
            self._value = None
            self.sim._schedule(self, 0.0)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self._value = {e: e._value for e in self.events}
            self.sim._schedule(self, 0.0)


class Simulator:
    """The simulation environment: virtual clock plus event calendar.

    The calendar and dispatch loop are closures built by
    :func:`repro.sim.wheel.build_kernel`; the hottest entry points —
    ``timeout``, ``event``, ``step``, ``peek``, ``succeed_many``,
    ``timeout_chain`` — are bound directly as instance attributes so a
    call costs one attribute load plus the closure call, with no
    method-descriptor indirection.

    ``_now`` mirrors the kernel's clock cell (updated at every clock
    write) so ``sim.now`` stays a plain attribute read.
    """

    def __init__(self):
        self._now = 0.0
        self.pools = KernelPools()
        kernel = build_kernel(
            self,
            self.pools,
            event_t=Event,
            timeout_t=Timeout,
            process_t=Process,
            interruption_t=_Interruption,
            interrupt_exc=Interrupt,
            error_t=SimulationError,
            pending=_PENDING,
            processed=_PROCESSED,
        )
        self._kernel = kernel
        # Hot factories / calendar primitives (documented stubs below
        # are shadowed by these bindings).
        self.timeout = kernel.timeout
        self.event = kernel.event
        self.succeed_many = kernel.succeed_many
        self.timeout_chain = kernel.timeout_chain
        self.step = kernel.step
        self.peek = kernel.peek
        self._insert = kernel.insert
        self._schedule_now = kernel.schedule_now
        self._get_active = kernel.get_active

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._get_active()

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    #
    # ``event`` and ``timeout`` are rebound per-instance to the kernel's
    # pooled factories in ``__init__``; the defs below only provide the
    # class-level API surface (signatures, docstrings, introspection).

    def event(self) -> Event:
        """Create a fresh, untriggered event (pool-recycled)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def succeed_many(
        self, events: Iterable[Event], values: Optional[Sequence[Any]] = None
    ) -> List[Event]:
        """Trigger a batch of events now, in order (single calendar op).

        Equivalent to ``for ev in events: ev.succeed(value)`` — same
        schedule, same tie-break order — but the whole batch shares one
        calendar bucket.  ``values`` may be ``None`` (every event gets
        ``None``) or a sequence with one value per event.
        """
        return self._kernel.succeed_many(events, values)

    def timeout_chain(
        self, delays: Sequence[float], value: Any = None
    ) -> List[Timeout]:
        """Create a chain of timeouts at cumulative offsets of ``delays``.

        Deadlines are precomputed with a vectorised cumulative sum that
        accumulates in the same order as the scalar loop it replaces, so
        the schedule is bit-identical to sequential ``timeout`` calls
        made back-to-back.
        """
        return self._kernel.timeout_chain(delays, value)

    # ------------------------------------------------------------------
    # Scheduling / running
    # ------------------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        if event._scheduled:
            raise SimulationError("event scheduled twice")
        event._scheduled = True
        self._insert(event, self._now + delay)

    def step(self) -> None:
        """Process the next event on the calendar.

        Raises :class:`SimulationError` when the calendar is empty — an
        explicit contract instead of a bare ``IndexError``.

        (Rebound per-instance to the kernel's cursor-based step in
        ``__init__``; this def documents the API.)
        """
        self._kernel.step()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._kernel.peek()

    def run(
        self,
        until: Optional[float] = None,
        max_steps: Optional[int] = None,
    ) -> None:
        """Run until the calendar drains or the clock passes ``until``.

        ``max_steps`` is a livelock guard: a bug that schedules
        zero-delay events in a cycle never drains the calendar and never
        advances the clock, so neither stop condition can trigger.
        When set, the run aborts with :class:`SimulationError` after
        that many events.

        The unguarded path is the kernel's batch dispatch loop;
        :meth:`run_reference` is the readable equivalent — both produce
        bit-identical schedules.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until!r}) is in the past (now={self._now!r})"
            )
        self.pools.trim()
        if max_steps is not None:
            self._kernel.run_guarded(until, max_steps)
            return
        self._kernel.run(until)

    def run_reference(self, until: Optional[float] = None) -> None:
        """Reference event loop: the plain ``step()``-per-event version.

        Kept as the oracle for the fast path in :meth:`run` — the
        determinism suite asserts both produce identical trace digests.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until!r}) is in the past (now={self._now!r})"
            )
        self._kernel.run_reference(until)
