"""Shared-resource primitives built on the simulation kernel.

These mirror the concurrency primitives the real Olympian implementation
uses on the host side:

* :class:`Resource` — counted resource with FIFO queueing (models CPU
  cores and the bounded inter-op thread pool).
* :class:`Store` — unbounded FIFO of items with blocking ``get`` (models
  the GPU driver's kernel submission queue).
* :class:`ConditionVariable` — wait/notify for process gangs (models the
  pthread condition variables Olympian uses to suspend and resume the
  CPU thread gang of a DNN job).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from .core import Event, SimulationError, Simulator

__all__ = ["Request", "Resource", "Store", "ConditionVariable"]


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Yielded by a process; fires once the resource grants a slot.  Must be
    released via :meth:`Resource.release` when done.
    """

    __slots__ = ("resource",)

    def __init__(self, sim: Simulator, resource: "Resource"):
        super().__init__(sim)
        self.resource = resource


class Resource:
    """A counted resource with FIFO granting.

    >>> sim = Simulator()
    >>> cores = Resource(sim, capacity=2)
    >>> def use():
    ...     req = cores.request()
    ...     yield req
    ...     yield sim.timeout(1.0)
    ...     cores.release(req)
    """

    def __init__(self, sim: Simulator, capacity: int):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1: {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Request:
        """Claim one slot; the returned event fires when granted."""
        req = Request(self.sim, self)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed()
        else:
            self._waiters.append(req)
        return req

    def try_request(self) -> Optional[Request]:
        """Claim a slot only if one is free right now, else ``None``."""
        if self._in_use < self.capacity:
            self._in_use += 1
            req = Request(self.sim, self)
            req.succeed()
            return req
        return None

    def release(self, request: Request) -> None:
        """Return the slot held by ``request``."""
        if request.resource is not self:
            raise SimulationError("release of a request from another resource")
        if self._waiters:
            # Hand the slot straight to the next waiter; _in_use unchanged.
            nxt = self._waiters.popleft()
            nxt.succeed()
        else:
            self._in_use -= 1
            if self._in_use < 0:
                raise SimulationError("resource released more than acquired")

    def cancel(self, request: Request) -> None:
        """Withdraw a queued request that has not been granted yet."""
        if request.triggered:
            raise SimulationError("cannot cancel a granted request")
        try:
            self._waiters.remove(request)
        except ValueError:
            raise SimulationError("request not queued on this resource")


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that fires with the
    next item as soon as one is available.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[Any]:
        """Snapshot of queued items (oldest first)."""
        return list(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Pop the next item if present, else ``None`` (non-blocking)."""
        if self._items:
            return self._items.popleft()
        return None


class ConditionVariable:
    """Wait/notify primitive for suspending process gangs.

    Olympian parks every CPU thread of a de-scheduled DNN job on a
    condition variable and wakes the whole gang when the job regains the
    token.  The simulated analogue: processes yield :meth:`wait`; the
    scheduler calls :meth:`notify_all` with an optional wake latency that
    models the cost of the OS actually getting the threads running again.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._waiters: Deque[Event] = deque()

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def wait(self) -> Event:
        """Return an event that fires at the next notify."""
        event = Event(self.sim)
        self._waiters.append(event)
        return event

    def notify_all(self, wake_latency: float = 0.0) -> int:
        """Wake every waiter after ``wake_latency`` seconds.

        Returns the number of processes woken.
        """
        waiters, self._waiters = self._waiters, deque()
        if wake_latency > 0.0:
            def _wake(waiters=waiters):
                yield self.sim.timeout(wake_latency)
                for event in waiters:
                    event.succeed()
            self.sim.process(_wake(), name="cv-wake")
        else:
            for event in waiters:
                event.succeed()
        return len(waiters)

    def notify_one(self) -> bool:
        """Wake a single waiter (FIFO).  Returns True if one was woken."""
        if not self._waiters:
            return False
        self._waiters.popleft().succeed()
        return True
