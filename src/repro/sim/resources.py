"""Shared-resource primitives built on the simulation kernel.

These mirror the concurrency primitives the real Olympian implementation
uses on the host side:

* :class:`Resource` — counted resource with FIFO queueing (models CPU
  cores and the bounded inter-op thread pool).
* :class:`Store` — unbounded FIFO of items with blocking ``get`` (models
  the GPU driver's kernel submission queue).
* :class:`ConditionVariable` — wait/notify for process gangs (models the
  pthread condition variables Olympian uses to suspend and resume the
  CPU thread gang of a DNN job).

Hot-path notes: waiter events come from the simulator's object pool
(``sim.event()``), request cancellation is a lazy O(1) flag resolved at
hand-off time (a ``deque.remove`` scan used to make cancel O(queue)),
and :meth:`ConditionVariable.notify_all` wakes the whole gang through
``Simulator.succeed_many`` — one calendar operation for the batch
instead of one per waiter.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from .core import Event, SimulationError, Simulator

__all__ = ["Request", "Resource", "Store", "ConditionVariable"]


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Yielded by a process; fires once the resource grants a slot.  Must be
    released via :meth:`Resource.release` when done.

    ``cancelled`` marks a lazily withdrawn request: it stays in the
    resource's FIFO but is skipped (and forgotten) when its turn comes.
    """

    __slots__ = ("resource", "cancelled")

    def __init__(self, sim: Simulator, resource: "Resource"):
        super().__init__(sim)
        self.resource = resource
        self.cancelled = False


class Resource:
    """A counted resource with FIFO granting.

    >>> sim = Simulator()
    >>> cores = Resource(sim, capacity=2)
    >>> def use():
    ...     req = cores.request()
    ...     yield req
    ...     yield sim.timeout(1.0)
    ...     cores.release(req)
    """

    def __init__(self, sim: Simulator, capacity: int):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1: {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Request] = deque()
        self._cancelled = 0  # lazily cancelled requests still in _waiters

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters) - self._cancelled

    def request(self) -> Request:
        """Claim one slot; the returned event fires when granted."""
        req = Request(self.sim, self)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed()
        else:
            self._waiters.append(req)
        return req

    def try_request(self) -> Optional[Request]:
        """Claim a slot only if one is free right now, else ``None``."""
        if self._in_use < self.capacity:
            self._in_use += 1
            req = Request(self.sim, self)
            req.succeed()
            return req
        return None

    def release(self, request: Request) -> None:
        """Return the slot held by ``request``."""
        if request.resource is not self:
            raise SimulationError("release of a request from another resource")
        waiters = self._waiters
        while waiters:
            nxt = waiters.popleft()
            if nxt.cancelled:
                # Lazily withdrawn; drop it and keep looking.
                self._cancelled -= 1
                continue
            # Hand the slot straight to the next waiter; _in_use unchanged.
            nxt.succeed()
            return
        self._in_use -= 1
        if self._in_use < 0:
            raise SimulationError("resource released more than acquired")

    def cancel(self, request: Request) -> None:
        """Withdraw a queued request that has not been granted yet.

        O(1): the request is flagged and skipped when its turn comes,
        instead of scanned out of the FIFO at cancel time.
        """
        if request.triggered:
            raise SimulationError("cannot cancel a granted request")
        # An untriggered request of this resource is in the FIFO unless
        # it was already cancelled; no scan needed to validate.
        if request.resource is not self or request.cancelled:
            raise SimulationError("request not queued on this resource")
        request.cancelled = True
        self._cancelled += 1


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that fires with the
    next item as soon as one is available.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[Any]:
        """Snapshot of queued items (oldest first)."""
        return list(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Pop the next item if present, else ``None`` (non-blocking)."""
        if self._items:
            return self._items.popleft()
        return None


class ConditionVariable:
    """Wait/notify primitive for suspending process gangs.

    Olympian parks every CPU thread of a de-scheduled DNN job on a
    condition variable and wakes the whole gang when the job regains the
    token.  The simulated analogue: processes yield :meth:`wait`; the
    scheduler calls :meth:`notify_all` with an optional wake latency that
    models the cost of the OS actually getting the threads running again.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._waiters: Deque[Event] = deque()

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def wait(self) -> Event:
        """Return an event that fires at the next notify."""
        event = self.sim.event()
        self._waiters.append(event)
        return event

    def notify_all(self, wake_latency: float = 0.0) -> int:
        """Wake every waiter after ``wake_latency`` seconds.

        Returns the number of processes woken.  The whole gang is
        triggered through ``succeed_many`` — same wake order as
        sequential ``succeed`` calls, one calendar operation total.
        """
        waiters, self._waiters = self._waiters, deque()
        if wake_latency > 0.0:
            def _wake(waiters=waiters):
                yield self.sim.timeout(wake_latency)
                self.sim.succeed_many(waiters)
            self.sim.process(_wake(), name="cv-wake")
        else:
            self.sim.succeed_many(waiters)
        return len(waiters)

    def notify_one(self) -> bool:
        """Wake a single waiter (FIFO).  Returns True if one was woken."""
        if not self._waiters:
            return False
        self._waiters.popleft().succeed()
        return True
