"""Discrete-event simulation kernel: the substrate for the reproduction.

Public surface:

* :class:`Simulator`, :class:`Event`, :class:`Process`, :class:`Timeout`
* :class:`Resource`, :class:`Store`, :class:`ConditionVariable`
* :class:`RngRegistry` for seeded, named randomness
* :class:`IntervalTracer` and interval-union helpers (GPU-duration math)
"""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import ConditionVariable, Request, Resource, Store
from .rng import RngRegistry, derive_seed
from .trace import (
    Interval,
    IntervalTracer,
    busy_fraction,
    merge_intervals,
    union_duration,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "ConditionVariable",
    "Request",
    "Resource",
    "Store",
    "RngRegistry",
    "derive_seed",
    "Interval",
    "IntervalTracer",
    "busy_fraction",
    "merge_intervals",
    "union_duration",
]
