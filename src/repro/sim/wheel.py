"""The bucketed calendar-queue kernel behind :class:`repro.sim.core.Simulator`.

This module owns the event calendar and the dispatch loop.  It replaces
the flat per-event binary heap (``heapq`` over ``(time, seq, event)``
tuples) with a **bucketed calendar**: events that share a deadline live
in one list (*bucket*), and the heap orders buckets, not events.  The
dominant workload — many processes advancing on the same tick — then
pays one heap operation per *deadline* instead of one per *event*, and
a whole same-deadline batch advances with a single pop (the
"vectorised batch advancement" of homogeneous streams).

Layout
------
* ``times`` — a ``heapq`` of ``(t, seq, bucket)`` tuples.  ``seq`` is a
  monotonically increasing bucket-creation counter, so two buckets with
  equal ``t`` pop in creation order.
* insertion cache — the most recently touched ``(t, bucket)`` pair.
  Consecutive inserts at one deadline append straight to the cached
  bucket with no heap traffic.  The cache is invalidated when a bucket
  at the cached time is popped, so events scheduled *during* dispatch
  at the current time open a fresh bucket (which pops after every
  older same-time bucket — exactly the per-event heap's order).
* ``far`` — the adaptive overflow list.  When the near heap grows past
  a threshold, a horizon is chosen from the observed deadline spread;
  inserts beyond it are appended (unsorted, O(1)) to ``far`` and only
  merged into the heap when the clock approaches ``far_min``.  This
  keeps the near heap — and every ``heappush`` — small under bimodal
  near/far deadline mixes.
* pools — see :mod:`repro.sim.pool`.  The dispatch loop recycles exact
  ``Timeout``/``Event`` instances whose refcount proves the program
  holds no other reference.

Ordering guarantee
------------------
For any two events with equal deadline, bucket creation order equals
event insertion order: once a bucket at time ``t`` leaves the insertion
cache, no *older* bucket at ``t`` can re-enter it, so same-``t`` events
always land in creation-ordered buckets.  Ties therefore break by
insertion order globally — bit-identical to the per-event heap the
kernel replaced, which is what keeps every scheduler trace digest
unchanged.

The kernel is built as a closure nest (:func:`build_kernel`) rather
than a class: the hot state — clock, heap, cache, pools — lives in
closure cells, which CPython reads faster than instance attributes,
and the event classes arrive as parameters so this module never
imports :mod:`repro.sim.core` (no cycle, and ``LOAD_DEREF`` beats
``LOAD_GLOBAL`` in the loop).

This is the **only** module under ``src/repro`` allowed to import
``heapq`` (enforced by lint rule PERF002): every other queue must go
through the simulator so ordering and pooling stay centralised.
"""

from __future__ import annotations

from heapq import heappop, heappush  # lint: disable=PERF002
from sys import getrefcount
from typing import Any, Callable, Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["SimKernel", "build_kernel", "FAR_HEAP_LIMIT"]

_INF = float("inf")

# Near-heap size past which the far-list horizon activates.  Checked
# once per popped bucket (never per event).
FAR_HEAP_LIMIT = 2048

# Once the far list drains and the near heap is back below this, the
# horizon deactivates and the calendar runs pure-near again.
_FAR_REARM_LIMIT = FAR_HEAP_LIMIT // 2


class SimKernel:
    """Bundle of kernel entry points returned by :func:`build_kernel`.

    Every attribute is a closure over one shared calendar; the
    :class:`~repro.sim.core.Simulator` facade re-exports them.
    """

    __slots__ = (
        "timeout",
        "insert",
        "schedule_now",
        "event",
        "succeed_many",
        "timeout_chain",
        "run",
        "run_guarded",
        "run_reference",
        "step",
        "peek",
        "queue_empty",
        "get_now",
        "get_active",
        "stats",
    )


def build_kernel(
    sim: Any,
    pools: Any,
    *,
    event_t: type,
    timeout_t: type,
    process_t: type,
    interruption_t: type,
    interrupt_exc: type,
    error_t: type,
    pending: Any,
    processed: Any,
) -> SimKernel:
    """Construct the calendar + dispatch closures for one simulator.

    ``pending``/``processed`` are the core module's sentinels;
    ``processed`` doubles as the fired-event marker in each event's
    ``_cb`` slot (see ``Event.add_callback``).
    """
    now = 0.0
    seq = 0  # bucket creation counter: same-t buckets pop in creation order
    times: List = []  # heap of (t, seq, bucket)
    far: List = []  # overflow (t, seq, bucket) tuples beyond the horizon
    far_min = _INF
    horizon = _INF
    window = 0.0
    free: List[List] = []  # retired bucket lists, reused to avoid allocs
    cache_t = -1.0  # insertion cache: time of the last bucket touched
    cache_b: Optional[List] = None
    cursor_b: Optional[List] = None  # bucket partially consumed by step()
    cursor_i = 0
    active_proc = None
    t_pool = pools.timeouts
    e_pool = pools.events
    getref = getrefcount

    # ------------------------------------------------------------------
    # Calendar: insertion paths
    # ------------------------------------------------------------------

    def insert(ev: Any, t: float) -> None:
        nonlocal seq, cache_t, cache_b, far_min
        if t == cache_t:
            cache_b.append(ev)
            return
        # Truthiness check instead of try/pop: a raised IndexError costs
        # ~1us, and workloads that park events (resources) can keep the
        # freelist empty for long stretches.
        b = free.pop() if free else []
        b.append(ev)
        cache_t = t
        cache_b = b
        s = seq
        seq = s + 1
        if t < horizon:
            heappush(times, (t, s, b))
        else:
            far.append((t, s, b))
            if t < far_min:
                far_min = t

    def schedule_now(ev: Any) -> None:
        # insert(ev, now) with the body inlined: this is the succeed()/
        # fail() path, hot enough that the nested call shows up.
        nonlocal seq, cache_t, cache_b, far_min
        t = now
        if t == cache_t:
            cache_b.append(ev)
            return
        b = free.pop() if free else []
        b.append(ev)
        cache_t = t
        cache_b = b
        s = seq
        seq = s + 1
        if t < horizon:
            heappush(times, (t, s, b))
        else:
            far.append((t, s, b))
            if t < far_min:
                far_min = t

    # The keyword-only defaults freeze never-rebound cells as argument
    # locals: LOAD_FAST instead of LOAD_DEREF on the hottest call in
    # the simulator.  Callers never pass them.
    def timeout(
        delay: float,
        value: Any = None,
        *,
        _t_pool: Any = t_pool,
        _t_pop: Any = t_pool.pop,
    ) -> Any:
        nonlocal seq, cache_t, cache_b, far_min
        if delay < 0.0:
            raise error_t(f"negative timeout delay: {delay!r}")
        if _t_pool:
            ev = _t_pop()
            ev._value = value
        else:
            ev = timeout_t.__new__(timeout_t)
            ev.sim = sim
            ev._cb = None
            ev._value = value
            ev._exc = None
            ev._scheduled = True
            pools.timeout_allocs += 1
        ev.delay = delay
        t = now + delay
        if t == cache_t:
            cache_b.append(ev)
            return ev
        b = free.pop() if free else []
        b.append(ev)
        cache_t = t
        cache_b = b
        s = seq
        seq = s + 1
        if t < horizon:
            heappush(times, (t, s, b))
        else:
            far.append((t, s, b))
            if t < far_min:
                far_min = t
        return ev

    def event() -> Any:
        if e_pool:
            return e_pool.pop()
        pools.event_allocs += 1
        return event_t(sim)

    def succeed_many(
        events: Iterable[Any], values: Optional[Sequence[Any]] = None
    ) -> List[Any]:
        """Trigger a batch of events at the current time, in order.

        Equivalent to calling ``ev.succeed(value)`` on each event in
        sequence (same schedule, same tie-break order), but the whole
        gang lands in one calendar bucket with a single heap operation —
        the batch-advancement fast path for same-deadline wake-ups.
        """
        nonlocal seq, cache_t, cache_b, far_min
        evs = list(events)
        if not evs:
            return evs
        # The whole batch validates before anything mutates, so a
        # duplicate must be caught here by identity: it would pass the
        # already-triggered pre-check twice, land in the bucket twice,
        # and the second dispatch would crash on the processed
        # sentinel instead of raising the contract error.
        seen = set()
        for ev in evs:
            if (
                ev._value is not pending
                or ev._exc is not None
                or id(ev) in seen
            ):
                raise error_t("event already triggered")
            seen.add(id(ev))
        if values is None:
            for ev in evs:
                ev._value = None
                ev._scheduled = True
        else:
            if len(values) != len(evs):
                raise error_t(
                    f"succeed_many: {len(evs)} events but "
                    f"{len(values)} values"
                )
            for ev, value in zip(evs, values):
                ev._value = value
                ev._scheduled = True
        t = now
        if t == cache_t:
            cache_b.extend(evs)
            return evs
        b = free.pop() if free else []
        b.extend(evs)
        cache_t = t
        cache_b = b
        s = seq
        seq = s + 1
        if t < horizon:
            heappush(times, (t, s, b))
        else:
            far.append((t, s, b))
            if t < far_min:
                far_min = t
        return evs

    def timeout_chain(
        delays: Sequence[float], value: Any = None
    ) -> List[Any]:
        """Schedule a run of chained timeouts in one vectorised pass.

        Timeout ``i`` fires at ``now + delays[0] + ... + delays[i]``.
        Deadlines come from ``numpy.cumsum`` seeded with the current
        clock, which accumulates strictly left-to-right in float64 —
        bit-identical to the scalar loop ``t += d; timeout(...)`` it
        replaces, so chains can be precomputed without digest drift.
        """
        ds = list(delays)
        for d in ds:
            if d < 0.0:
                raise error_t(f"negative timeout delay: {d!r}")
        if not ds:
            return []
        acc = np.empty(len(ds) + 1, dtype=np.float64)
        acc[0] = now
        acc[1:] = ds
        deadlines = np.cumsum(acc)
        out = []
        for i, d in enumerate(ds):
            if t_pool:
                ev = t_pool.pop()
                ev._value = value
            else:
                ev = timeout_t.__new__(timeout_t)
                ev.sim = sim
                ev._cb = None
                ev._value = value
                ev._exc = None
                ev._scheduled = True
                pools.timeout_allocs += 1
            ev.delay = d
            insert(ev, float(deadlines[i + 1]))
            out.append(ev)
        return out

    # ------------------------------------------------------------------
    # Far-list horizon management
    # ------------------------------------------------------------------

    def _activate_far() -> None:
        # The near heap has grown large: pick a horizon from the
        # observed deadline spread (the raw heap array's midpoint is an
        # order-of-magnitude estimate of the median pending deadline —
        # exactness is irrelevant, any positive window is correct).
        nonlocal horizon, window
        w = (times[len(times) >> 1][0] - now) * 4.0
        if w > 0.0:
            window = w
            horizon = now + w

    def _flush_far() -> None:
        # Merge far entries below the advanced horizon into the near
        # heap.  Each entry carries its creation seq, so the merge
        # cannot perturb same-time ordering.  Entries at ``far_min``
        # itself always merge, even when float64 rounding absorbs the
        # window (``far_min + window == far_min`` for a tiny window
        # against a huge deadline): the strict ``< target`` test alone
        # would then merge nothing and the run loop would never
        # advance.  Taking the minimum guarantees forward progress —
        # every flush shrinks ``far`` by at least one entry.
        nonlocal far, far_min, horizon, window
        target = far_min + window if window > 0.0 else _INF
        fmin = far_min
        keep = []
        kmin = _INF
        for entry in far:
            t = entry[0]
            if t < target or t <= fmin:
                heappush(times, entry)
            else:
                keep.append(entry)
                if t < kmin:
                    kmin = t
        far = keep
        far_min = kmin
        horizon = target
        if not keep and len(times) <= _FAR_REARM_LIMIT:
            horizon = _INF
            window = 0.0

    # ------------------------------------------------------------------
    # Dispatch: process resume (cold, full-fidelity path)
    # ------------------------------------------------------------------

    def _resume_proc(proc: Any, ev: Any) -> None:
        # Out-of-line twin of the inline resume in run(): used for
        # step()/run_reference(), list-overflow waiters, and synchronous
        # requeue on already-processed targets.  Skips pooling (callers
        # own the event's lifetime) but is otherwise identical.
        nonlocal active_proc
        if proc._waiting_on is not ev:
            # Stale resume: the process moved on since this event was
            # scheduled.  The only stale event still delivered is a
            # pending interrupt wake-up — the Interrupt must reach the
            # process's *new* yield point (matching the reference
            # semantics where every scheduled interrupt lands).
            if type(ev) is not interruption_t:
                return
            if proc._value is not pending or proc._exc is not None:
                return
        active_proc = proc
        try:
            if ev._exc is None:
                target = proc._send(ev._value)
            else:
                target = proc._throw(ev._exc)
        except StopIteration as stop:
            proc._waiting_on = None
            proc._value = stop.value
            proc._scheduled = True
            insert(proc, now)
            return
        except interrupt_exc as exc:
            proc._waiting_on = None
            proc._exc = exc
            proc._value = None
            proc._scheduled = True
            insert(proc, now)
            return
        finally:
            active_proc = None
        try:
            tcb = target._cb
        except AttributeError:
            raise error_t(
                f"process {proc.name!r} yielded {target!r}; "
                "processes must yield Event instances"
            ) from None
        if target.sim is not sim:
            raise error_t("yielded event belongs to another simulator")
        if tcb is None:
            proc._waiting_on = target
            target._cb = proc
        elif tcb is processed:
            # Target already fired: resume again immediately with its
            # outcome (add_callback-after-processed semantics).
            proc._waiting_on = target
            _resume_proc(proc, target)
        elif type(tcb) is list:
            proc._waiting_on = target
            tcb.append(proc)
        else:
            proc._waiting_on = target
            target._cb = [tcb, proc]

    def _dispatch_one(ev: Any) -> None:
        # Single-event dispatch for step()/run_reference(): one event's
        # callbacks, nothing else.  The fast run() loop inlines this.
        nonlocal active_proc
        cb = ev._cb
        ev._cb = processed
        if cb is None:
            return
        if type(cb) is process_t:
            _resume_proc(cb, ev)
            return
        if type(cb) is list:
            active_proc = None
            for c in cb:
                if type(c) is process_t:
                    _resume_proc(c, ev)
                else:
                    c(ev)
            return
        active_proc = None
        cb(ev)

    # ------------------------------------------------------------------
    # Run loops
    # ------------------------------------------------------------------

    def run(until: Optional[float] = None) -> None:
        nonlocal now, cache_t, active_proc, cursor_b, cursor_i
        # Finish a bucket left half-consumed by step() before entering
        # the batch loop (its events are due at the current time, which
        # the caller has already checked is <= until).
        b = cursor_b
        if b is not None:
            while cursor_i < len(b):
                ev = b[cursor_i]
                cursor_i += 1
                _dispatch_one(ev)
            b.clear()
            free.append(b)
            cursor_b = None
        limit = _INF if until is None else until
        # Hot-loop locals: every name below is read per event (or per
        # bucket) and never rebound, so LOAD_FAST replaces LOAD_DEREF /
        # LOAD_GLOBAL for the duration of the run.  The mutable cells
        # (now, cache_t, far, horizon, active_proc) stay nonlocal.
        times_l = times
        free_l = free
        t_pool_l = t_pool
        e_pool_l = e_pool
        processed_l = processed
        pending_l = pending
        process_c = process_t
        timeout_c = timeout_t
        event_c = event_t
        interruption_c = interruption_t
        getref_l = getref
        pop = heappop
        sim_l = sim
        push = heappush
        try:
            while True:
                if not times_l:
                    if far:
                        _flush_far()
                        continue
                    break
                # Pop eagerly: the two early-exit cases below are rare
                # (once per flush, once per bounded run), so pushing
                # the bucket back then is cheaper than peeking the heap
                # top before every pop.
                tup = pop(times_l)
                t = tup[0]
                if far_min <= t:
                    push(times_l, tup)
                    _flush_far()
                    continue
                if t > limit:
                    push(times_l, tup)
                    now = until
                    sim_l._now = until
                    return
                if len(times_l) > FAR_HEAP_LIMIT and horizon == _INF:
                    _activate_far()
                b = tup[2]
                now = t
                sim_l._now = t
                if t == cache_t:
                    # Same-time events scheduled during dispatch must
                    # open a *fresh* bucket (pops after all older
                    # same-time buckets — the per-event heap's order).
                    cache_t = -1.0
                for ev in b:
                    cb = ev._cb
                    ev._cb = processed_l
                    if type(cb) is process_c:
                        # ----- inline process resume (dominant path) --
                        if cb._waiting_on is not ev:
                            if type(ev) is interruption_c:
                                _resume_proc(cb, ev)
                            continue
                        active_proc = cb
                        is_to = type(ev) is timeout_c
                        try:
                            if is_to:
                                target = cb._send(ev._value)
                            elif ev._exc is None:
                                target = cb._send(ev._value)
                            else:
                                target = cb._throw(ev._exc)
                        except StopIteration as stop:
                            cb._waiting_on = None
                            cb._value = stop.value
                            cb._scheduled = True
                            insert(cb, now)
                            if is_to:
                                if getref_l(ev) == 3:
                                    ev._cb = None
                                    t_pool_l.append(ev)
                            elif type(ev) is event_c and getref_l(ev) == 3:
                                ev._value = pending_l
                                ev._exc = None
                                ev._cb = None
                                ev._scheduled = False
                                e_pool_l.append(ev)
                            continue
                        except interrupt_exc as exc:
                            cb._waiting_on = None
                            cb._exc = exc
                            cb._value = None
                            cb._scheduled = True
                            insert(cb, now)
                            continue
                        try:
                            tcb = target._cb
                        except AttributeError:
                            raise error_t(
                                f"process {cb.name!r} yielded {target!r}; "
                                "processes must yield Event instances"
                            ) from None
                        if target.sim is not sim_l:
                            raise error_t(
                                "yielded event belongs to another simulator"
                            )
                        if tcb is None:
                            cb._waiting_on = target
                            target._cb = cb
                        elif tcb is processed_l:
                            cb._waiting_on = target
                            _resume_proc(cb, target)
                        elif type(tcb) is list:
                            cb._waiting_on = target
                            tcb.append(cb)
                        else:
                            cb._waiting_on = target
                            target._cb = [tcb, cb]
                        # Recycle when the only refs left are the bucket
                        # slot, the loop variable, and getref's argument.
                        if is_to:
                            if getref_l(ev) == 3:
                                ev._cb = None
                                t_pool_l.append(ev)
                        elif type(ev) is event_c and getref_l(ev) == 3:
                            ev._value = pending_l
                            ev._exc = None
                            ev._cb = None
                            ev._scheduled = False
                            e_pool_l.append(ev)
                        continue
                    if cb is None:
                        if type(ev) is timeout_c:
                            if getref_l(ev) == 3:
                                ev._cb = None
                                t_pool_l.append(ev)
                        elif type(ev) is event_c and getref_l(ev) == 3:
                            ev._value = pending_l
                            ev._exc = None
                            ev._cb = None
                            ev._scheduled = False
                            e_pool_l.append(ev)
                        continue
                    if type(cb) is list:
                        active_proc = None
                        for c in cb:
                            if type(c) is process_c:
                                _resume_proc(c, ev)
                            else:
                                c(ev)
                        continue
                    active_proc = None
                    cb(ev)
                active_proc = None
                b.clear()
                free_l.append(b)
            if until is not None:
                now = until
                sim._now = until
        finally:
            active_proc = None

    def queue_empty() -> bool:
        return cursor_b is None and not times and not far

    def step() -> None:
        nonlocal now, cache_t, cursor_b, cursor_i
        b = cursor_b
        if b is None:
            if far and (not times or far_min <= times[0][0]):
                _flush_far()
            if not times:
                raise error_t("step() on an empty event queue")
            tup = heappop(times)
            t = tup[0]
            now = t
            sim._now = t
            if t == cache_t:
                cache_t = -1.0
            b = tup[2]
            cursor_b = b
            cursor_i = 0
        ev = b[cursor_i]
        cursor_i += 1
        if cursor_i >= len(b):
            cursor_b = None
            b.clear()
            free.append(b)
        _dispatch_one(ev)

    def peek() -> float:
        if cursor_b is not None:
            # Remaining events in the open bucket fire at the current time.
            return now
        if times:
            t = times[0][0]
            return far_min if far_min < t else t
        return far_min if far else _INF

    def run_guarded(until: Optional[float], max_steps: int) -> None:
        nonlocal now
        if max_steps < 1:
            raise error_t(f"max_steps must be >= 1: {max_steps}")
        steps = 0
        while not queue_empty():
            if until is not None and peek() > until:
                now = until
                sim._now = until
                return
            if steps >= max_steps:
                raise error_t(
                    f"run() exceeded max_steps={max_steps} at t={now!r}"
                    " — livelock? (zero-delay event cycle keeps the queue"
                    " non-empty without advancing the clock)"
                )
            steps += 1
            step()
        if until is not None:
            now = until
            sim._now = until

    def run_reference(until: Optional[float] = None) -> None:
        nonlocal now
        while not queue_empty():
            if until is not None and peek() > until:
                now = until
                sim._now = until
                return
            step()
        if until is not None:
            now = until
            sim._now = until

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def get_now() -> float:
        return now

    def get_active() -> Any:
        return active_proc

    def stats() -> dict:
        snapshot = {
            "now": now,
            "near_buckets": len(times),
            "far_buckets": len(far),
            "horizon": horizon,
            "free_buckets": len(free),
            "cursor_open": cursor_b is not None,
        }
        snapshot.update(pools.stats())
        return snapshot

    kernel = SimKernel()
    kernel.timeout = timeout
    kernel.insert = insert
    kernel.schedule_now = schedule_now
    kernel.event = event
    kernel.succeed_many = succeed_many
    kernel.timeout_chain = timeout_chain
    kernel.run = run
    kernel.run_guarded = run_guarded
    kernel.run_reference = run_reference
    kernel.step = step
    kernel.peek = peek
    kernel.queue_empty = queue_empty
    kernel.get_now = get_now
    kernel.get_active = get_active
    kernel.stats = stats
    return kernel
