"""Interval tracing: the measurement backbone of the reproduction.

Olympian's core quantity is *GPU duration*: the total time during which
at least one node of a job runs on the GPU (paper Figure 5 — the union of
the busy intervals, ``t1 + t2 + t3`` in their example).  This module
provides:

* :class:`Interval` — a tagged ``[start, end)`` span.
* :class:`IntervalTracer` — records intervals as the simulation runs.
* :func:`union_duration` — length of the union of intervals (Figure 5).
* :func:`busy_fraction` — utilization over a window (the NVML analogue).

The tracer sits on the simulation's hot path (two records per executed
GPU kernel), so it stores raw ``(start, end, tag)`` tuples in flat
per-key lists and only materialises :class:`Interval` objects lazily,
when an analysis view (:meth:`IntervalTracer.intervals` /
:meth:`IntervalTracer.all_intervals`) asks for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Interval",
    "IntervalTracer",
    "union_duration",
    "merge_intervals",
    "busy_fraction",
]


@dataclass(frozen=True)
class Interval:
    """A half-open span ``[start, end)`` attributed to ``tag``."""

    start: float
    end: float
    tag: Any = None

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError(f"interval ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.end and other.start < self.end

    def clipped(self, lo: float, hi: float) -> Optional["Interval"]:
        """The part of this interval inside ``[lo, hi)``, or ``None``."""
        start = max(self.start, lo)
        end = min(self.end, hi)
        if end <= start:
            return None
        return Interval(start, end, self.tag)


def merge_intervals(spans: Iterable[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Merge overlapping/adjacent ``(start, end)`` spans into a union."""
    ordered = sorted(spans)
    merged: List[Tuple[float, float]] = []
    for start, end in ordered:
        if merged and start <= merged[-1][1]:
            prev_start, prev_end = merged[-1]
            merged[-1] = (prev_start, max(prev_end, end))
        else:
            merged.append((start, end))
    return merged


def union_duration(spans: Iterable[Tuple[float, float]]) -> float:
    """Length of the union of spans — the paper's GPU-duration metric."""
    return sum(end - start for start, end in merge_intervals(spans))


def busy_fraction(
    spans: Iterable[Tuple[float, float]], window_start: float, window_end: float
) -> float:
    """Fraction of ``[window_start, window_end)`` covered by the spans."""
    if window_end <= window_start:
        return 0.0
    clipped = []
    for start, end in spans:
        lo = max(start, window_start)
        hi = min(end, window_end)
        if hi > lo:
            clipped.append((lo, hi))
    return union_duration(clipped) / (window_end - window_start)


class IntervalTracer:
    """Records tagged intervals during a simulation run.

    Intervals are grouped by ``key`` (typically a job id) so that
    per-job GPU durations can be computed afterwards.  Internally each
    record is one appended ``(start, end, tag)`` tuple; the
    :class:`Interval` object views are built on demand.
    """

    def __init__(self):
        self._open: Dict[Any, float] = {}
        # key -> [(start, end, tag), ...] in record order.
        self._raw: Dict[Any, List[Tuple[float, float, Any]]] = {}
        # Global record order: (key, start, end, tag).
        self._all_raw: List[Tuple[Any, float, float, Any]] = []

    def begin(self, key: Any, now: float) -> None:
        """Open an interval for ``key`` at time ``now``."""
        if key in self._open:
            raise ValueError(f"interval for {key!r} already open")
        self._open[key] = now

    def end(self, key: Any, now: float, tag: Any = None) -> Interval:
        """Close the open interval for ``key`` and record it."""
        try:
            start = self._open.pop(key)
        except KeyError:
            raise ValueError(f"no open interval for {key!r}")
        self.record(key, start, now, tag)
        return Interval(start, now, tag)

    def record(self, key: Any, start: float, end: float, tag: Any = None) -> None:
        """Record a complete interval directly."""
        if end < start:
            raise ValueError(
                f"interval ends before it starts: [{start!r}, {end!r})"
            )
        rows = self._raw.get(key)
        if rows is None:
            rows = self._raw[key] = []
        rows.append((start, end, tag))
        self._all_raw.append((key, start, end, tag))

    def intervals(self, key: Any) -> List[Interval]:
        return [
            Interval(start, end, tag)
            for start, end, tag in self._raw.get(key, ())
        ]

    def keys(self) -> List[Any]:
        return list(self._raw.keys())

    def all_intervals(self) -> List[Interval]:
        return [
            Interval(start, end, tag)
            for _key, start, end, tag in self._all_raw
        ]

    def spans(self, key: Any) -> List[Tuple[float, float]]:
        return [(start, end) for start, end, _tag in self._raw.get(key, ())]

    def count(self, key: Any) -> int:
        """Number of intervals recorded for ``key``."""
        return len(self._raw.get(key, ()))

    def duration(self, key: Any) -> float:
        """Union duration of all intervals recorded for ``key``."""
        return union_duration(self.spans(key))

    def duration_between(self, key: Any, lo: float, hi: float) -> float:
        """Union duration for ``key`` restricted to ``[lo, hi)``."""
        clipped = []
        for start, end, _tag in self._raw.get(key, ()):
            s = start if start > lo else lo
            e = end if end < hi else hi
            if e > s:
                clipped.append((s, e))
        return union_duration(clipped)

    def clear(self) -> None:
        self._open.clear()
        self._raw.clear()
        self._all_raw.clear()
