"""Named, seeded random-number streams.

Every source of randomness in the reproduction draws from a named stream
derived from a single experiment seed.  This gives two properties the
experiments rely on:

* **Reproducibility** — the same seed replays an identical simulation.
* **Decoupling** — adding draws to one subsystem (say, the driver's
  submission jitter) does not perturb another subsystem's stream, so
  ablations change only what they claim to change.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(seed: int, name: str) -> int:
    """Derive a child seed from ``(seed, name)`` stably across runs.

    Uses SHA-256 rather than ``hash()`` because the latter is salted per
    interpreter process.
    """
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A family of independent :class:`random.Random` streams.

    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.stream("driver")
    >>> b = rngs.stream("threadpool")
    >>> a is rngs.stream("driver")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def reseed(self, seed: int) -> None:
        """Reset the registry to a new base seed, dropping all streams."""
        self.seed = seed
        self._streams.clear()

    def spawn(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        return RngRegistry(derive_seed(self.seed, f"spawn:{name}"))
