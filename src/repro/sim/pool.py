"""Slot-reuse object pools for the simulation kernel's dominant cycle.

The hot loop of the rewritten kernel (:mod:`repro.sim.wheel`) recycles
:class:`~repro.sim.core.Timeout` and :class:`~repro.sim.core.Event`
instances instead of allocating fresh ones, so the dominant
create-fire-resume cycle performs no object allocation at all once the
pools are warm.

Recycling is gated on ``sys.getrefcount``: an event is returned to its
pool only when the dispatch loop holds the *only* remaining references
(the bucket slot, the loop variable, and the ``getrefcount`` argument
itself).  Any event the user program still holds — stored in a local,
captured by a combinator, parked on a resource queue — keeps a higher
refcount and is simply dropped to the garbage collector instead.  That
makes pooling semantically invisible: a pooled object can never be
observed in its recycled state, because recycling only happens when
nobody can observe it.

Invariants (relied on by :func:`repro.sim.wheel.build_kernel`):

* Only *exact* ``Timeout`` / ``Event`` instances are pooled.  Subclasses
  (``Process``, ``Request``, combinators, ``_Interruption``) are never
  recycled — their extra state makes reset too easy to get wrong, and
  they are rare on the hot path.
* A recycled ``Timeout`` needs only ``_cb`` reset (its ``_exc`` is
  always ``None`` and ``_value``/``delay`` are overwritten on reuse).
* A recycled ``Event`` must have ``_value``/``_exc``/``_cb``/
  ``_scheduled`` all reset so it passes the double-schedule guard and
  reads as untriggered.
* The pool lists are plain ``list`` objects captured directly by the
  kernel closures; :class:`KernelPools` is the bookkeeping wrapper, not
  an indirection layer on the hot path.

Pool sizes are not capped per-recycle (that would put a length check on
the hot path); :meth:`KernelPools.trim` is called at cold points —
``Simulator.run`` entry — to bound retained memory after bursts.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["KernelPools", "DEFAULT_MAX_POOL"]

# Upper bound applied by trim(): generous enough that steady-state
# workloads never lose warm objects, small enough that a one-off burst
# of a million timeouts does not pin a million objects forever.
DEFAULT_MAX_POOL = 4096


class KernelPools:
    """Free lists for recycled kernel objects.

    Attributes
    ----------
    timeouts / events:
        The raw free lists.  The kernel closures capture these lists
        directly (``pop()`` on allocation, ``append()`` on recycle);
        treat them as owned by the kernel.
    timeout_allocs / event_allocs:
        Number of genuine allocations (pool misses).  Counted on the
        cold allocation branch only, so the hot recycled path pays
        nothing for the statistic.
    """

    __slots__ = (
        "timeouts",
        "events",
        "max_pool",
        "timeout_allocs",
        "event_allocs",
    )

    def __init__(self, max_pool: int = DEFAULT_MAX_POOL):
        self.timeouts: List = []
        self.events: List = []
        self.max_pool = max_pool
        self.timeout_allocs = 0
        self.event_allocs = 0

    def trim(self) -> None:
        """Drop pooled objects beyond ``max_pool`` per class (cold path)."""
        limit = self.max_pool
        if len(self.timeouts) > limit:
            del self.timeouts[limit:]
        if len(self.events) > limit:
            del self.events[limit:]

    def stats(self) -> Dict[str, int]:
        """Snapshot for diagnostics and the performance docs."""
        return {
            "pooled_timeouts": len(self.timeouts),
            "pooled_events": len(self.events),
            "timeout_allocs": self.timeout_allocs,
            "event_allocs": self.event_allocs,
            "max_pool": self.max_pool,
        }
