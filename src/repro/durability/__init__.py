"""Durable control plane: a sqlite job journal that survives restarts.

See :mod:`repro.durability.journal` for the store and
:mod:`repro.durability.resume` for crash-restart replay planning.
"""

from .journal import JOURNAL_KINDS, TERMINAL_KINDS, JobStore, JournalRecord
from .resume import ReplayJob, resume_digest_of, resume_plan

__all__ = [
    "JOURNAL_KINDS",
    "TERMINAL_KINDS",
    "JobStore",
    "JournalRecord",
    "ReplayJob",
    "resume_digest_of",
    "resume_plan",
]
