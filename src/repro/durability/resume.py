"""Crash-restart replay planning over a :class:`~repro.durability.journal.JobStore`.

A restarted server must honour every obligation its predecessor took
on: each ``admitted`` journal row with no terminal row is a job the
old incarnation accepted and then lost with its in-memory state.  The
:func:`resume_plan` function turns those rows into :class:`ReplayJob`
values — enough to rebuild the job (same id, model, batch size,
tenant, priority, deadline) and push it back through the admission /
recovery path of the new incarnation.

Keeping the original ``job_id`` is what makes the no-job-lost
invariant checkable: the soak harness unions the completion sets of
all incarnations and compares against the set of admitted ids, and a
re-admitted job completes under the same id it was first accepted
with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .journal import JobStore

__all__ = ["ReplayJob", "resume_plan", "resume_digest_of"]


@dataclass(frozen=True)
class ReplayJob:
    """One job owed by a dead incarnation, ready for re-admission."""

    job_id: str
    model: str
    batch_size: int
    tenant: str
    priority: int
    deadline: Optional[float]


def resume_plan(store: JobStore) -> List[ReplayJob]:
    """Jobs the next incarnation must re-admit, in admission order."""
    plan: List[ReplayJob] = []
    for record in store.unterminated():
        plan.append(
            ReplayJob(
                job_id=record.job_id or "",
                model=record.model or "",
                batch_size=int(record.batch or 1),
                tenant=record.tenant or "default",
                priority=int(record.priority or 0),
                deadline=record.deadline,
            )
        )
    return plan


def resume_digest_of(store: JobStore) -> str:
    """Convenience alias for :meth:`JobStore.resume_digest`."""
    return store.resume_digest()
