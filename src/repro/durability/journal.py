"""The sqlite-backed job journal.

A :class:`JobStore` is the serving stack's write-ahead log: every
admission, dispatch, completion, failure, and shed is appended as one
row with its **simulated** timestamp (stream time — monotone across
restarts, never wall clock) before the in-memory stack acts on it.
Because rows are committed per append, a process killed at *any*
instant leaves a journal that is exactly the prefix of events that
actually happened; a restarted server reads it back, re-admits
whatever never reached a terminal row, and continues.

Everything is deterministic: rows contain only sim-derived values, so
the :meth:`JobStore.resume_digest` — a SHA-256 over the canonical JSON
of all rows — is byte-stable for a given (config, seed, kill schedule)
regardless of when or where the run executes.  The soak harness and
the crash-restart property suite both pin this.

``sqlite3`` is stdlib; with ``path=":memory:"`` the store lives only
as long as the Python object (useful for tests that model a crash by
*keeping* the store while abandoning the simulator — our "process
kill" is the loss of all sim state, and the journal is precisely what
survives it).
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["JOURNAL_KINDS", "TERMINAL_KINDS", "JournalRecord", "JobStore"]

# Lifecycle row kinds.  ``admitted`` opens a job's ledger; exactly one
# of the TERMINAL_KINDS must eventually close it (the no-job-lost
# invariant).  ``rejected`` jobs were never admitted — they are
# accounting, not obligations.  ``restart`` marks an incarnation
# boundary; ``crash`` is written by the *next* incarnation when it
# finds obligations left open (the dead process, by definition, could
# not write its own epitaph).
JOURNAL_KINDS = (
    "admitted",
    "dispatched",
    "deferred",
    "completed",
    "failed",
    "shed",
    "rejected",
    "restart",
    "crash",
)

TERMINAL_KINDS = ("completed", "failed", "shed")


@dataclass(frozen=True)
class JournalRecord:
    """One journal row (already decoded)."""

    seq: int
    incarnation: int
    time: float
    kind: str
    job_id: Optional[str]
    model: Optional[str]
    batch: Optional[int]
    tenant: Optional[str]
    priority: Optional[int]
    deadline: Optional[float]
    reason: Optional[str]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "incarnation": self.incarnation,
            "time": self.time,
            "kind": self.kind,
            "job_id": self.job_id,
            "model": self.model,
            "batch": self.batch,
            "tenant": self.tenant,
            "priority": self.priority,
            "deadline": self.deadline,
            "reason": self.reason,
        }


_SCHEMA = """
CREATE TABLE IF NOT EXISTS journal (
    seq         INTEGER PRIMARY KEY AUTOINCREMENT,
    incarnation INTEGER NOT NULL,
    time        REAL    NOT NULL,
    kind        TEXT    NOT NULL,
    job_id      TEXT,
    model       TEXT,
    batch       INTEGER,
    tenant      TEXT,
    priority    INTEGER,
    deadline    REAL,
    reason      TEXT
);
CREATE INDEX IF NOT EXISTS journal_job ON journal (job_id, kind);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


class JobStore:
    """Append-only job journal over one sqlite database."""

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'incarnation'"
        ).fetchone()
        self.incarnation = int(row[0]) if row is not None else 0

    # ------------------------------------------------------------------
    # Incarnations
    # ------------------------------------------------------------------

    def begin_incarnation(self, time: float = 0.0) -> int:
        """Open a new server incarnation; returns its 1-based index.

        For every incarnation after the first, obligations left open by
        the previous one get a ``crash`` marker row (observability
        only — they stay un-terminated until the resume path closes
        them) and a ``restart`` row records the boundary.
        """
        self.incarnation += 1
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) "
            "VALUES ('incarnation', ?)",
            (str(self.incarnation),),
        )
        if self.incarnation > 1:
            self.record("crash", time=time,
                        reason=f"incarnation {self.incarnation - 1} died")
        self.record("restart", time=time)
        return self.incarnation

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def record(
        self,
        kind: str,
        time: float,
        job_id: Optional[str] = None,
        model: Optional[str] = None,
        batch: Optional[int] = None,
        tenant: Optional[str] = None,
        priority: Optional[int] = None,
        deadline: Optional[float] = None,
        reason: Optional[str] = None,
    ) -> int:
        """Append one row (committed immediately); returns its seq."""
        if kind not in JOURNAL_KINDS:
            raise ValueError(
                f"unknown journal kind {kind!r}; choose from {JOURNAL_KINDS}"
            )
        cursor = self._conn.execute(
            "INSERT INTO journal (incarnation, time, kind, job_id, model,"
            " batch, tenant, priority, deadline, reason)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                self.incarnation,
                time,
                kind,
                job_id,
                model,
                batch,
                tenant,
                priority,
                deadline,
                reason,
            ),
        )
        # Commit-per-append is the durability contract: the row is on
        # disk before the in-memory stack acts on the event, so a kill
        # can lose work but never the record of having accepted it.
        self._conn.commit()
        return int(cursor.lastrowid)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def records(self) -> Iterator[JournalRecord]:
        cursor = self._conn.execute(
            "SELECT seq, incarnation, time, kind, job_id, model, batch,"
            " tenant, priority, deadline, reason"
            " FROM journal ORDER BY seq"
        )
        for row in cursor:
            yield JournalRecord(*row)

    def counts(self) -> Dict[str, int]:
        """kind -> row count, in catalogue order (zero rows omitted)."""
        rows = dict(
            self._conn.execute(
                "SELECT kind, COUNT(*) FROM journal GROUP BY kind"
            ).fetchall()
        )
        return {kind: rows[kind] for kind in JOURNAL_KINDS if kind in rows}

    def terminal_ids(self) -> Dict[str, str]:
        """job_id -> terminal kind for every closed obligation."""
        cursor = self._conn.execute(
            "SELECT job_id, kind FROM journal"
            " WHERE kind IN (?, ?, ?) ORDER BY seq",
            TERMINAL_KINDS,
        )
        return {job_id: kind for job_id, kind in cursor if job_id}

    def admitted_ids(self) -> List[str]:
        cursor = self._conn.execute(
            "SELECT job_id FROM journal WHERE kind = 'admitted' ORDER BY seq"
        )
        return [row[0] for row in cursor]

    def unterminated(self) -> List[JournalRecord]:
        """Admitted rows with no terminal row — the restart's work list."""
        closed = self.terminal_ids()
        return [
            record
            for record in self.records()
            if record.kind == "admitted" and record.job_id not in closed
        ]

    def shed_reasons(self) -> Dict[str, int]:
        cursor = self._conn.execute(
            "SELECT reason, COUNT(*) FROM journal WHERE kind IN ('shed',"
            " 'rejected') GROUP BY reason ORDER BY reason"
        )
        return {reason or "": count for reason, count in cursor}

    # ------------------------------------------------------------------
    # Digest & lifecycle
    # ------------------------------------------------------------------

    def resume_digest(self) -> str:
        """SHA-256 over the canonical JSON of every row."""
        payload = json.dumps(
            [record.to_dict() for record in self.records()],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
